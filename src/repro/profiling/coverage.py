"""Live/dead/const code classification across multiple input data sets.

Implements the coverage methodology of the paper's Section IV-C:
blocks are *dead*, *const* or *live* according to how their execution
counts vary across input data sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.ir.module import Module
from repro.vm.profiler import BlockKey, ExecutionProfile


class BlockClass(str, Enum):
    """Coverage class of a basic block (paper, Section IV-C)."""

    DEAD = "dead"  # frequency == 0 in every run
    CONST = "const"  # frequency > 0 and identical across runs
    LIVE = "live"  # frequency differs between runs


@dataclass
class CoverageAnalysis:
    """Coverage classification of a module against a set of profiles."""

    classes: dict[BlockKey, BlockClass]
    static_sizes: dict[BlockKey, int]

    def blocks_of_class(self, cls: BlockClass) -> list[BlockKey]:
        return [k for k, c in self.classes.items() if c is cls]

    def _share(self, cls: BlockClass) -> float:
        total = sum(self.static_sizes.values())
        if total == 0:
            return 0.0
        size = sum(
            self.static_sizes[k] for k, c in self.classes.items() if c is cls
        )
        return 100.0 * size / total

    @property
    def live_pct(self) -> float:
        """Percent of static code (instructions) in live blocks."""
        return self._share(BlockClass.LIVE)

    @property
    def dead_pct(self) -> float:
        return self._share(BlockClass.DEAD)

    @property
    def const_pct(self) -> float:
        return self._share(BlockClass.CONST)


def classify_blocks(
    module: Module, profiles: list[ExecutionProfile]
) -> CoverageAnalysis:
    """Classify every block of *module* against >=2 profiled runs.

    Blocks never mentioned in any profile are dead. A block whose counts are
    equal (and nonzero) in all runs is const; otherwise live. With a single
    profile, every executed block is conservatively const.
    """
    if not profiles:
        raise ValueError("need at least one profile")
    static_sizes: dict[BlockKey, int] = {}
    for func in module.defined_functions():
        for block in func.blocks:
            static_sizes[(func.name, block.name)] = len(block.instructions)

    classes: dict[BlockKey, BlockClass] = {}
    for key in static_sizes:
        counts = [p.count_of(*key) for p in profiles]
        if all(c == 0 for c in counts):
            classes[key] = BlockClass.DEAD
        elif len(set(counts)) == 1:
            classes[key] = BlockClass.CONST
        else:
            classes[key] = BlockClass.LIVE
    return CoverageAnalysis(classes=classes, static_sizes=static_sizes)
