"""Profile analyses: code coverage classification and kernel size.

Implements Section IV-C of the paper: applications are executed with several
input data sets, per-block execution frequencies are compared across runs,
and each block is classified as *dead* (never executes), *const* (executes
the same number of times for every input) or *live* (frequency varies with
the input). The kernel is the smallest set of blocks covering >=90 % of
execution time.
"""

from repro.profiling.coverage import BlockClass, CoverageAnalysis, classify_blocks
from repro.profiling.kernel import KernelAnalysis, compute_kernel

__all__ = [
    "BlockClass",
    "CoverageAnalysis",
    "classify_blocks",
    "KernelAnalysis",
    "compute_kernel",
]
