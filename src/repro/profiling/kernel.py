"""Kernel analysis: the code responsible for >=90 % of execution time.

Paper, Section IV-C: "we sort the basic blocks by their total execution
time. Then we select as many basic blocks as required (in the order of
execution time) until the threshold of 90 % is reached. The size of the
kernel is measured as the total number of instructions contained in these
basic blocks."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.module import Module
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import BlockKey, ExecutionProfile, static_block_costs


@dataclass
class KernelAnalysis:
    """The kernel of an application under a given profile."""

    blocks: list[BlockKey]  # kernel blocks, hottest first
    kernel_instructions: int  # static instructions in kernel blocks
    total_instructions: int  # static instructions in the whole module
    time_share: float  # fraction of execution time covered (>= threshold)

    @property
    def size_pct(self) -> float:
        """Kernel size as percent of total static code ("size" in Table I)."""
        if self.total_instructions == 0:
            return 0.0
        return 100.0 * self.kernel_instructions / self.total_instructions

    @property
    def freq_pct(self) -> float:
        """Time share actually covered ("freq" in Table I)."""
        return 100.0 * self.time_share

    @property
    def block_set(self) -> frozenset[BlockKey]:
        return frozenset(self.blocks)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self.block_set


def compute_kernel(
    module: Module,
    profile: ExecutionProfile,
    threshold: float = 0.90,
    cost_model: CostModel = PPC405_COST_MODEL,
) -> KernelAnalysis:
    """Smallest hottest-first block set covering *threshold* of exec time."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    costs = static_block_costs(module, cost_model)
    times: dict[BlockKey, float] = {}
    for key, prof in profile.blocks.items():
        if prof.count and key in costs:
            times[key] = prof.count * costs[key]
    total_time = sum(times.values())

    static_sizes: dict[BlockKey, int] = {}
    for func in module.defined_functions():
        for block in func.blocks:
            static_sizes[(func.name, block.name)] = len(block.instructions)
    total_instructions = sum(static_sizes.values())

    if total_time <= 0:
        return KernelAnalysis([], 0, total_instructions, 0.0)

    ordered = sorted(times.items(), key=lambda item: (-item[1], item[0]))
    kernel: list[BlockKey] = []
    covered = 0.0
    for key, t in ordered:
        kernel.append(key)
        covered += t
        if covered / total_time >= threshold:
            break
    kernel_instructions = sum(static_sizes.get(k, 0) for k in kernel)
    return KernelAnalysis(
        blocks=kernel,
        kernel_instructions=kernel_instructions,
        total_instructions=total_instructions,
        time_share=covered / total_time,
    )
