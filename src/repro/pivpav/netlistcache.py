"""Netlist extraction and caching.

"PivPav extracts the netlist for the IP cores from its circuit database
... and is used to speedup the synthesis and the translation processes
during the FPGA CAD tool flow, that is, PivPav is used as a netlist cache."
(Section III)

The cache is content-addressed by core name; hit/miss statistics let tests
assert that repeated candidates never re-extract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.pivpav.database import CircuitDatabase, default_database
from repro.pivpav.netlist import Netlist


@dataclass
class NetlistCache:
    """Core-name-keyed netlist cache in front of the circuit database.

    Lookups are atomic under a lock: one :class:`repro.fpga.CadToolFlow`
    is shared by every candidate of an application, and the parallel
    specialization runner (``jobs > 1``) implements candidates from worker
    threads — without the lock two concurrent first extractions of the
    same core would double-count the miss.
    """

    database: CircuitDatabase | None = None
    _store: dict[str, Netlist] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.database is None:
            self.database = default_database()

    def get(self, core_name: str) -> Netlist:
        with self._lock:
            nl = self._store.get(core_name)
            if nl is not None:
                self.hits += 1
                return nl
            self.misses += 1
            nl = self.database.record(core_name).netlist
            self._store[core_name] = nl
            return nl

    def extract_all(self, core_names: list[str]) -> dict[str, Netlist]:
        """Extract netlists for every core of a candidate (Extract Netlists)."""
        return {name: self.get(name) for name in core_names}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
