"""PivPav: circuit library, estimation and datapath generation.

Reproduces the role of the authors' PivPav tool ([8]): a database of
pre-synthesized hardware IP cores with 90+ metrics each
(:mod:`repro.pivpav.database`), a software-vs-hardware performance estimator
used during candidate selection (:mod:`repro.pivpav.estimator`), a datapath
generator that emits structural VHDL for a candidate
(:mod:`repro.pivpav.vhdlgen`), and a netlist store that lets the CAD flow
skip re-synthesis of the IP cores (:mod:`repro.pivpav.netlistcache`).

The paper's netlist-generation phase (Figure 2) draws its cores,
estimates and netlists from this package.
"""

from repro.pivpav.metrics import CoreMetrics
from repro.pivpav.corelib import CORE_SPECS, CoreSpec, core_name_for
from repro.pivpav.database import CircuitDatabase, CoreRecord
from repro.pivpav.estimator import CandidateEstimate, PivPavEstimator
from repro.pivpav.vhdlgen import DatapathGenerator, GeneratedVhdl
from repro.pivpav.netlist import Netlist, NetlistPrimitive
from repro.pivpav.netlistcache import NetlistCache
from repro.pivpav.vhdlsim import VhdlDatapathSimulator, VhdlSimError

__all__ = [
    "CoreMetrics",
    "CORE_SPECS",
    "CoreSpec",
    "core_name_for",
    "CircuitDatabase",
    "CoreRecord",
    "CandidateEstimate",
    "PivPavEstimator",
    "DatapathGenerator",
    "GeneratedVhdl",
    "Netlist",
    "NetlistPrimitive",
    "NetlistCache",
    "VhdlDatapathSimulator",
    "VhdlSimError",
]
