"""IP-core metrics.

PivPav's database carries "more than 90 different metrics" per core. We
model the ones the tool flow consumes as first-class fields (timing, area,
power) and generate the long tail of secondary metrics (per-pin
capacitances, slice occupancy by type, configuration frame counts, ...)
deterministically so that the metric-count contract holds.

The metric count honours the paper's description of PivPav ([8]) as
carrying more than 90 metrics per circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class CoreMetrics:
    """Synthesis metrics of one IP core (Virtex-4 flavoured)."""

    # Timing
    latency_ns: float  # input-to-output combinational delay or pipeline latency
    pipeline_stages: int  # 0 = purely combinational
    max_freq_mhz: float

    # Area
    luts: int
    flipflops: int
    dsp48: int
    bram: int
    slices: int

    # Power
    dynamic_power_mw: float
    static_power_mw: float

    # Long tail (name -> value); generated, >= 80 entries
    extended: dict[str, float] = field(default_factory=dict)

    @property
    def metric_count(self) -> int:
        return 11 + len(self.extended)

    def as_dict(self) -> dict[str, float]:
        base = {
            "latency_ns": self.latency_ns,
            "pipeline_stages": float(self.pipeline_stages),
            "max_freq_mhz": self.max_freq_mhz,
            "luts": float(self.luts),
            "flipflops": float(self.flipflops),
            "dsp48": float(self.dsp48),
            "bram": float(self.bram),
            "slices": float(self.slices),
            "dynamic_power_mw": self.dynamic_power_mw,
            "static_power_mw": self.static_power_mw,
            "metric_count": float(self.metric_count),
        }
        base.update(self.extended)
        return base


_EXTENDED_METRIC_NAMES = [
    # IO / pin characteristics
    *(f"pin_capacitance_in{i}_pf" for i in range(8)),
    *(f"pin_setup_in{i}_ns" for i in range(8)),
    *(f"pin_hold_in{i}_ns" for i in range(8)),
    *(f"clock_to_out{i}_ns" for i in range(4)),
    *(f"input_slew_in{i}_ns" for i in range(8)),
    *(f"path_delay_p{i}_ns" for i in range(6)),
    # slice breakdown
    "slicem_count",
    "slicel_count",
    "carry_chains",
    "muxf5_count",
    "muxf6_count",
    "lut_as_route_through",
    "lut_as_shift_register",
    # routing / congestion
    "avg_fanout",
    "max_fanout",
    "net_count",
    "routed_wirelength_estimate",
    "congestion_index",
    # configuration
    "config_frames",
    "config_bits",
    "partial_region_columns",
    # timing corners
    "latency_ns_worst",
    "latency_ns_best",
    "latency_ns_typ",
    "clock_skew_ns",
    "jitter_margin_ns",
    # power detail
    "leakage_mw_85c",
    "leakage_mw_25c",
    "clock_tree_power_mw",
    "io_power_mw",
    "signal_power_mw",
    "logic_power_mw",
    # verification metadata
    "testbench_vectors",
    "coverage_pct",
    "equivalence_checked",
    # misc physical
    "bounding_box_width",
    "bounding_box_height",
    "aspect_ratio",
    "utilization_pct",
    "timing_score",
    "placement_seed_sensitivity",
    "retiming_slack_ns",
    "min_period_ns",
    "max_fanin",
    "logic_levels",
]

assert len(_EXTENDED_METRIC_NAMES) + 11 >= 90


def generate_extended_metrics(
    core_name: str, base_latency_ns: float, luts: int
) -> dict[str, float]:
    """Deterministic plausible values for the long-tail metrics of a core."""
    rng = DeterministicRng(f"pivpav/metrics/{core_name}")
    extended: dict[str, float] = {}
    for name in _EXTENDED_METRIC_NAMES:
        if name.endswith("_ns"):
            value = max(0.01, base_latency_ns * rng.uniform(0.05, 0.4))
        elif name.endswith("_pf"):
            value = rng.uniform(0.5, 4.0)
        elif name.endswith("_mw"):
            value = rng.uniform(0.1, 8.0)
        elif name.endswith("_pct"):
            value = rng.uniform(55.0, 100.0)
        elif "count" in name or name in (
            "carry_chains",
            "net_count",
            "testbench_vectors",
            "config_frames",
            "config_bits",
            "partial_region_columns",
            "max_fanout",
            "max_fanin",
            "logic_levels",
        ):
            scale = max(4, luts)
            value = float(int(rng.uniform(1, scale + 1)))
        else:
            value = round(float(rng.uniform(0.1, 50.0)), 3)
        extended[name] = round(float(value), 4)
    return extended
