"""Functional simulation of generated VHDL datapaths.

The verification backstop for the whole hardware-generation path: parse the
structural VHDL a candidate produced, rebuild the datapath from its
component instances alone (no access to the original candidate), and
evaluate it on concrete inputs. Tests drive it against the binary patcher's
evaluator — if the VHDL dropped a predicate, a constant, an operand or a
wire, the two disagree.

Component semantics are derived from the IP-core names (the same names the
circuit database uses), with the constant-folding evaluators providing the
arithmetic so VHDL simulation, interpreter and patcher share one source of
scalar truth.

Backstops the VHDL that the paper's netlist-generation phase (Figure 2)
emits for each candidate.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.fpga.syntax import VhdlDesign, VhdlSyntaxChecker
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.passes.constfold import (
    fold_binary,
    fold_cast,
    fold_fcmp,
    fold_icmp,
)
from repro.ir.types import F32, F64, Type, type_from_name, wrap_int


class VhdlSimError(Exception):
    """Raised when a design cannot be simulated."""


_BINOP_NAMES = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "mul": Opcode.MUL,
    "sdiv": Opcode.SDIV,
    "udiv": Opcode.UDIV,
    "srem": Opcode.SREM,
    "urem": Opcode.UREM,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "shl": Opcode.SHL,
    "lshr": Opcode.LSHR,
    "ashr": Opcode.ASHR,
    "fadd": Opcode.FADD,
    "fsub": Opcode.FSUB,
    "fmul": Opcode.FMUL,
    "fdiv": Opcode.FDIV,
    "frem": Opcode.FREM,
}


def _tc_type(tc: str) -> Type:
    return type_from_name(tc)


def _int_type(bits: int) -> Type:
    return type_from_name(f"i{bits}") if bits != 64 else type_from_name("i64")


@dataclass(frozen=True)
class _CoreModel:
    """Semantic model of one component: port types + evaluator."""

    input_types: tuple[Type, ...]
    output_type: Type
    fn: object  # callable(*values) -> value


def core_model(name: str) -> _CoreModel:
    """Build the semantic model for an IP-core name."""
    parts = name.split("_")
    head = parts[0]

    if head in _BINOP_NAMES and len(parts) == 2:
        ty = _tc_type(parts[1])
        op = _BINOP_NAMES[head]
        return _CoreModel(
            (ty, ty), ty, lambda a, b, _op=op, _ty=ty: fold_binary(_op, _ty, a, b)
        )
    if head == "icmp" and len(parts) == 3:
        pred = ICmpPred(parts[1])
        ty = _tc_type(parts[2])
        from repro.ir.types import I1

        return _CoreModel(
            (ty, ty), I1, lambda a, b, _p=pred, _t=ty: fold_icmp(_p, _t, a, b)
        )
    if head == "fcmp" and len(parts) == 3:
        pred = FCmpPred(parts[1])
        ty = _tc_type(parts[2])
        from repro.ir.types import I1

        return _CoreModel((ty, ty), I1, lambda a, b, _p=pred: fold_fcmp(_p, a, b))
    if head == "sel" and len(parts) == 2:
        ty = _tc_type(parts[1])
        from repro.ir.types import I1

        return _CoreModel((I1, ty, ty), ty, lambda c, a, b: a if c else b)
    if head == "fneg" and len(parts) == 2:
        ty = _tc_type(parts[1])
        return _CoreModel((ty,), ty, lambda a: -a)
    if head in ("zext", "sext", "trunc", "bitcast") and len(parts) == 3:
        src = _int_type(int(parts[1]))
        dst = _int_type(int(parts[2]))
        op = Opcode(head)
        return _CoreModel(
            (src,), dst, lambda a, _o=op, _s=src, _d=dst: fold_cast(_o, _s, _d, a)
        )
    if head == "fptosi" and len(parts) == 3:
        src = _tc_type(parts[1])
        dst = _int_type(int(parts[2]))
        return _CoreModel(
            (src,), dst, lambda a, _s=src, _d=dst: fold_cast(Opcode.FPTOSI, _s, _d, a)
        )
    if head == "sitofp" and len(parts) == 3:
        dst = _tc_type(parts[1])
        src = _int_type(int(parts[2]))
        return _CoreModel(
            (src,), dst, lambda a, _s=src, _d=dst: fold_cast(Opcode.SITOFP, _s, _d, a)
        )
    if name == "fpext":
        return _CoreModel((F32,), F64, lambda a: fold_cast(Opcode.FPEXT, F32, F64, a))
    if name == "fptrunc":
        return _CoreModel(
            (F64,), F32, lambda a: fold_cast(Opcode.FPTRUNC, F64, F32, a)
        )
    if head == "gep" and len(parts) == 2:
        from repro.ir.types import I64, PTR

        idx_ty = _int_type(int(parts[1][1:])) if parts[1].startswith("w") else I64
        return _CoreModel(
            (PTR, idx_ty, I64), PTR, lambda p, i, s: int(p) + int(i) * int(s)
        )
    raise VhdlSimError(f"no semantic model for component {name!r}")


def _decode_literal(literal: str, ty: Type):
    """Decode a VHDL initialiser literal under a semantic type."""
    if literal.startswith('x"'):
        bits = int(literal[2:-1], 16)
        width = (len(literal) - 3) * 4
    elif literal.startswith("'"):
        bits = int(literal[1])
        width = 1
    elif literal.startswith('"'):
        bits = int(literal[1:-1], 2)
        width = len(literal) - 2
    else:
        raise VhdlSimError(f"bad literal {literal!r}")
    if ty.is_float:
        fmt = "<d" if ty.bits == 64 else "<f"
        return struct.unpack(fmt, bits.to_bytes(ty.bits // 8, "little"))[0]
    if ty.is_ptr:
        return bits
    return wrap_int(bits, ty) if ty.bits > 1 else (bits & 1)


class VhdlDatapathSimulator:
    """Evaluates a generated structural VHDL datapath functionally."""

    def __init__(self, source: str) -> None:
        self.design: VhdlDesign = VhdlSyntaxChecker().check(source)
        self._models = {
            name: core_model(name) for name in self.design.components
        }
        # signal -> semantic type, derived from the driving/consuming pins
        self._signal_types = self._infer_signal_types()
        self._const_literals = self._collect_const_literals(source)

    # -- type inference ------------------------------------------------------
    def _infer_signal_types(self) -> dict[str, Type]:
        types: dict[str, Type] = {}
        for inst in self.design.instances:
            model = self._models[inst.component]
            formals = [p for p in self.design.components[inst.component] if p.name != "clk"]
            for formal, actual in inst.port_map.items():
                if formal == "clk":
                    continue
                pin_index = next(
                    i for i, p in enumerate(formals) if p.name == formal
                )
                if formal == "q":
                    types[actual] = model.output_type
                else:
                    types.setdefault(actual, model.input_types[pin_index])
        # propagate through continuous assignments (out0 <= sN)
        for target, source in self.design.assignments:
            if source in types:
                types[target] = types[source]
        return types

    def _collect_const_literals(self, source: str) -> dict[str, str]:
        import re

        literals: dict[str, str] = {}
        for match in re.finditer(
            r"signal\s+(\w+)\s*:\s*[^;]*:=\s*(x\"[0-9a-fA-F]+\"|\"[01]+\"|'[01]')",
            source,
        ):
            literals[match.group(1)] = match.group(2)
        return literals

    # -- evaluation ------------------------------------------------------------
    @property
    def input_ports(self) -> list[str]:
        return [
            p.name
            for p in self.design.ports
            if p.direction == "in" and p.name not in ("clk", "rst")
        ]

    @property
    def output_ports(self) -> list[str]:
        return [p.name for p in self.design.ports if p.direction == "out"]

    def input_type(self, port: str) -> Type:
        ty = self._signal_types.get(port)
        if ty is None:
            raise VhdlSimError(f"cannot infer type of input {port!r}")
        return ty

    def evaluate(self, inputs: dict[str, object]) -> dict[str, object]:
        """Evaluate the datapath for concrete input-port values."""
        values: dict[str, object] = {}
        for name, literal in self._const_literals.items():
            ty = self._signal_types.get(name)
            if ty is None:
                continue  # unconsumed constant
            values[name] = _decode_literal(literal, ty)
        for port in self.input_ports:
            if port not in inputs:
                raise VhdlSimError(f"missing value for input {port!r}")
            values[port] = inputs[port]

        pending = list(self.design.instances)
        progress = True
        while pending and progress:
            progress = False
            remaining = []
            for inst in pending:
                model = self._models[inst.component]
                formals = [
                    p
                    for p in self.design.components[inst.component]
                    if p.name not in ("clk", "q")
                ]
                actuals = [inst.port_map[p.name] for p in formals]
                if all(a in values for a in actuals):
                    args = [values[a] for a in actuals]
                    values[inst.port_map["q"]] = model.fn(*args)
                    progress = True
                else:
                    remaining.append(inst)
            pending = remaining
        if pending:
            names = [i.label for i in pending]
            raise VhdlSimError(f"combinational deadlock at instances {names}")

        outputs: dict[str, object] = {}
        for target, source in self.design.assignments:
            if target in self.output_ports:
                outputs[target] = values[source]
        return outputs
