"""Candidate performance estimation (software vs. hardware).

PivPav's estimation data "represent the performance difference for every
candidate when executed in software or in hardware" (paper, Section III).

- Software cost: sum of the PPC-405 cycle costs of the candidate's
  instructions (what the CPU currently spends per block execution).
- Hardware cost: the candidate datapath's critical-path latency through the
  IP cores, converted to CPU cycles, plus the Fabric Co-processor Bus (FCB)
  transfer overhead: the APU interface moves two operands per transfer
  cycle into the fabric and one result back per cycle, plus fixed decode
  overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.pivpav.database import CircuitDatabase, default_database
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL

if TYPE_CHECKING:  # pragma: no cover - break the pivpav <-> ise import cycle
    from repro.ise.candidate import Candidate

# FCB transfer characteristics come from the Woolcano APU model (the
# authoritative definition lives in repro.woolcano.apu; duplicated here as
# module constants would drift).
def _fcb():
    from repro.woolcano.apu import DEFAULT_FCB

    return DEFAULT_FCB


@dataclass(frozen=True)
class CandidateEstimate:
    """Estimated costs of one candidate (per block execution)."""

    candidate: "Candidate"
    sw_cycles: float
    hw_cycles: float
    hw_latency_ns: float
    luts: int
    flipflops: int
    dsp48: int
    bram: int

    @property
    def cycles_saved(self) -> float:
        return self.sw_cycles - self.hw_cycles

    @property
    def local_speedup(self) -> float:
        return self.sw_cycles / self.hw_cycles if self.hw_cycles > 0 else 1.0

    @property
    def profitable(self) -> bool:
        return self.cycles_saved > 0


@dataclass
class PivPavEstimator:
    """Estimates candidates against a CPU cost model and the circuit DB."""

    cost_model: CostModel = PPC405_COST_MODEL
    database: CircuitDatabase | None = None

    def __post_init__(self) -> None:
        if self.database is None:
            self.database = default_database()

    def estimate(self, candidate: "Candidate") -> CandidateEstimate:
        db = self.database
        assert db is not None
        sw_cycles = sum(self.cost_model.cycles_for(n) for n in candidate.nodes)

        latency_ns = candidate.dfg.critical_path_length(
            set(candidate.nodes), lambda instr: db.latency_ns(instr)
        )
        cycle_ns = 1e9 / self.cost_model.clock_hz
        exec_cycles = math.ceil(latency_ns / cycle_ns) if latency_ns > 0 else 1

        n_in = len(candidate.inputs)
        n_out = len(candidate.outputs)
        transfer_cycles = _fcb().transfer_cycles(n_in, n_out)

        luts = ffs = dsp = bram = 0
        for node in candidate.nodes:
            spec = db.record_for(node).spec
            luts += spec.luts
            ffs += spec.flipflops
            dsp += spec.dsp48
            bram += spec.bram

        return CandidateEstimate(
            candidate=candidate,
            sw_cycles=float(sw_cycles),
            hw_cycles=float(exec_cycles + transfer_cycles),
            hw_latency_ns=latency_ns,
            luts=luts,
            flipflops=ffs,
            dsp48=dsp,
            bram=bram,
        )
