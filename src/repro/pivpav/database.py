"""The PivPav circuit database.

Maps IP core names to :class:`CoreRecord` objects bundling the core's
specification, its 90+ synthesis metrics and its pre-synthesized netlist.
Everything is generated deterministically at construction, standing in for
the authors' database of actually synthesized cores.

Stands in for the database behind the paper's PivPav tool ([8]), the
source of pre-synthesized cores for the netlist-generation phase of
Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.ir.instructions import Instruction
from repro.pivpav.corelib import CORE_SPECS, CoreSpec, core_name_for
from repro.pivpav.metrics import CoreMetrics, generate_extended_metrics
from repro.pivpav.netlist import Netlist, generate_core_netlist


@dataclass(frozen=True)
class CoreRecord:
    """One database row: spec + metrics + netlist."""

    spec: CoreSpec
    metrics: CoreMetrics
    netlist: Netlist


class CircuitDatabase:
    """In-memory PivPav database with lazily built records."""

    def __init__(self) -> None:
        self._records: dict[str, CoreRecord] = {}

    def record(self, core_name: str) -> CoreRecord:
        rec = self._records.get(core_name)
        if rec is None:
            spec = CORE_SPECS.get(core_name)
            if spec is None:
                raise KeyError(f"unknown IP core {core_name!r}")
            metrics = _build_metrics(spec)
            netlist = generate_core_netlist(
                spec.name, spec.luts, spec.flipflops, spec.dsp48, spec.bram
            )
            rec = CoreRecord(spec=spec, metrics=metrics, netlist=netlist)
            self._records[core_name] = rec
        return rec

    def record_for(self, instr: Instruction) -> CoreRecord:
        return self.record(core_name_for(instr))

    def latency_ns(self, instr: Instruction) -> float:
        return self.record_for(instr).spec.latency_ns

    @property
    def core_names(self) -> list[str]:
        return sorted(CORE_SPECS)

    def __len__(self) -> int:
        return len(CORE_SPECS)


def _build_metrics(spec: CoreSpec) -> CoreMetrics:
    slices = max(1, (spec.luts + spec.flipflops) // 2)
    max_freq = 1000.0 / spec.latency_ns if spec.pipeline_stages == 0 else min(
        450.0, 1000.0 * spec.pipeline_stages / spec.latency_ns
    )
    dynamic_power = 0.02 * spec.luts + 0.015 * spec.flipflops + 2.2 * spec.dsp48
    return CoreMetrics(
        latency_ns=spec.latency_ns,
        pipeline_stages=spec.pipeline_stages,
        max_freq_mhz=round(max_freq, 1),
        luts=spec.luts,
        flipflops=spec.flipflops,
        dsp48=spec.dsp48,
        bram=spec.bram,
        slices=slices,
        dynamic_power_mw=round(dynamic_power, 2),
        static_power_mw=round(0.004 * slices + 0.5, 2),
        extended=generate_extended_metrics(spec.name, spec.latency_ns, spec.luts),
    )


@lru_cache(maxsize=1)
def default_database() -> CircuitDatabase:
    """Process-wide shared database instance (records are immutable)."""
    return CircuitDatabase()
