"""Netlist representation.

A netlist is a bag of FPGA primitives (LUT4, FDRE flip-flops, DSP48, RAMB16)
plus named nets connecting primitive pins. PivPav stores one pre-synthesized
netlist per IP core; the CAD flow's *translate* step merges the per-core
netlists of a candidate with the synthesized top-level into one flat design
that mapping and place-and-route then operate on.

Netlists are generated at model scale: primitive counts are the core's
LUT/FF/DSP figures divided by ``NETLIST_SCALE``, so the CAD algorithms do
real work with realistic relative sizes while staying fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import DeterministicRng

NETLIST_SCALE = 16


@dataclass
class NetlistPrimitive:
    """One mapped FPGA primitive."""

    name: str
    kind: str  # "LUT4" | "FDRE" | "DSP48" | "RAMB16" | "IOBUF"
    pins: list[str] = field(default_factory=list)  # net names, in pin order


@dataclass
class Netlist:
    """A flat netlist of primitives and nets."""

    name: str
    primitives: list[NetlistPrimitive] = field(default_factory=list)
    # net name -> list of (primitive index, pin index); index -1 = port
    nets: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    ports: list[str] = field(default_factory=list)

    # -- construction ------------------------------------------------------
    def add_primitive(self, kind: str, name: str = "") -> int:
        index = len(self.primitives)
        if not name:
            name = f"{self.name}/{kind.lower()}_{index}"
        self.primitives.append(NetlistPrimitive(name, kind))
        return index

    def connect(self, net: str, prim_index: int, pin_index: int) -> None:
        self.nets.setdefault(net, []).append((prim_index, pin_index))
        prim = self.primitives[prim_index]
        while len(prim.pins) <= pin_index:
            prim.pins.append("")
        prim.pins[pin_index] = net

    def add_port(self, net: str) -> None:
        if net not in self.ports:
            self.ports.append(net)
        self.nets.setdefault(net, []).append((-1, 0))

    # -- queries -----------------------------------------------------------
    def count(self, kind: str) -> int:
        return sum(1 for p in self.primitives if p.kind == kind)

    @property
    def stats(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for prim in self.primitives:
            out[prim.kind] = out.get(prim.kind, 0) + 1
        out["nets"] = len(self.nets)
        out["ports"] = len(self.ports)
        return out

    def merged_with(self, other: "Netlist", prefix: str) -> "Netlist":
        """Return a new netlist containing this one plus *other* (renamed)."""
        merged = Netlist(self.name)
        merged.primitives = [
            NetlistPrimitive(p.name, p.kind, list(p.pins)) for p in self.primitives
        ]
        merged.nets = {n: list(conns) for n, conns in self.nets.items()}
        merged.ports = list(self.ports)
        offset = len(merged.primitives)
        for prim in other.primitives:
            merged.primitives.append(
                NetlistPrimitive(
                    f"{prefix}/{prim.name}",
                    prim.kind,
                    [f"{prefix}/{n}" if n else "" for n in prim.pins],
                )
            )
        for net, conns in other.nets.items():
            target = f"{prefix}/{net}"
            merged.nets[target] = [
                (idx + offset if idx >= 0 else -1, pin) for idx, pin in conns
            ]
        return merged


def generate_core_netlist(
    core_name: str, luts: int, flipflops: int, dsp48: int, bram: int
) -> Netlist:
    """Deterministically generate a model-scale netlist for an IP core.

    The structure is a plausible random DAG-ish wiring: each primitive's
    input pins connect to nets driven by earlier primitives or ports, which
    gives the placer realistic locality structure to optimize.
    """
    rng = DeterministicRng(f"pivpav/netlist/{core_name}")
    nl = Netlist(core_name)
    counts = {
        "LUT4": max(1, luts // NETLIST_SCALE),
        "FDRE": flipflops // NETLIST_SCALE,
        "DSP48": dsp48,  # DSPs are few and precious: not scaled
        "RAMB16": bram,
    }
    # I/O ports
    n_ports = int(rng.integers(4, 12))
    for i in range(n_ports):
        nl.add_port(f"io{i}")

    produced_nets: list[str] = [f"io{i}" for i in range(n_ports)]
    for kind, count in counts.items():
        for _ in range(count):
            idx = nl.add_primitive(kind)
            n_inputs = {"LUT4": 4, "FDRE": 2, "DSP48": 6, "RAMB16": 4}[kind]
            for pin in range(n_inputs):
                src = produced_nets[int(rng.integers(0, len(produced_nets)))]
                nl.connect(src, idx, pin)
            out_net = f"n{idx}"
            nl.connect(out_net, idx, n_inputs)
            produced_nets.append(out_net)
    return nl
