"""IP core specifications: one circuit family per (opcode, operand type).

The base timing/area figures are representative Virtex-4 (90 nm, -10 speed
grade) numbers: LUT-based integer adders ~2.5 ns for 32 bits, DSP48
multipliers ~4.5 ns, floating-point cores in the 10-30 ns latency range.
The essential *relationship* for the reproduction is that a hardware FP
operation costs tens of nanoseconds while the FPU-less PowerPC-405 needs
hundreds (soft-float), whereas integer ops are 1 cycle on the CPU already —
this is what shapes which candidates are worth offloading.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.types import Type


@dataclass(frozen=True)
class CoreSpec:
    """Static specification of one IP core family."""

    name: str
    opcode: Opcode
    type_class: str  # "i32" | "i64" | "f32" | "f64" | "i1"
    latency_ns: float
    luts: int
    flipflops: int
    dsp48: int = 0
    bram: int = 0
    pipeline_stages: int = 0


def _spec(name, op, tc, lat, luts, ffs, dsp=0, bram=0, stages=0):
    return CoreSpec(name, op, tc, lat, luts, ffs, dsp, bram, stages)


# fmt: off
_RAW_SPECS = [
    # 32-bit integer
    _spec("add_i32",  Opcode.ADD,  "i32", 2.5,  32,  0),
    _spec("sub_i32",  Opcode.SUB,  "i32", 2.5,  32,  0),
    _spec("mul_i32",  Opcode.MUL,  "i32", 4.6,  12,  0, dsp=3),
    _spec("sdiv_i32", Opcode.SDIV, "i32", 28.0, 460, 380, stages=8),
    _spec("udiv_i32", Opcode.UDIV, "i32", 26.0, 420, 360, stages=8),
    _spec("srem_i32", Opcode.SREM, "i32", 28.0, 470, 380, stages=8),
    _spec("urem_i32", Opcode.UREM, "i32", 26.0, 430, 360, stages=8),
    _spec("and_i32",  Opcode.AND,  "i32", 0.9,  16,  0),
    _spec("or_i32",   Opcode.OR,   "i32", 0.9,  16,  0),
    _spec("xor_i32",  Opcode.XOR,  "i32", 0.9,  16,  0),
    _spec("shl_i32",  Opcode.SHL,  "i32", 1.8,  96,  0),
    _spec("lshr_i32", Opcode.LSHR, "i32", 1.8,  96,  0),
    _spec("ashr_i32", Opcode.ASHR, "i32", 1.9,  98,  0),
    _spec("icmp_i32", Opcode.ICMP, "i32", 1.6,  22,  0),
    _spec("sel_i32",  Opcode.SELECT, "i32", 1.2, 32, 0),
    # 64-bit integer (roughly 2x area, longer carry chains)
    _spec("add_i64",  Opcode.ADD,  "i64", 3.8,  64,  0),
    _spec("sub_i64",  Opcode.SUB,  "i64", 3.8,  64,  0),
    _spec("mul_i64",  Opcode.MUL,  "i64", 7.9,  40,  0, dsp=12),
    _spec("sdiv_i64", Opcode.SDIV, "i64", 52.0, 980, 800, stages=16),
    _spec("udiv_i64", Opcode.UDIV, "i64", 48.0, 900, 760, stages=16),
    _spec("srem_i64", Opcode.SREM, "i64", 52.0, 990, 800, stages=16),
    _spec("urem_i64", Opcode.UREM, "i64", 48.0, 910, 760, stages=16),
    _spec("and_i64",  Opcode.AND,  "i64", 1.0,  32,  0),
    _spec("or_i64",   Opcode.OR,   "i64", 1.0,  32,  0),
    _spec("xor_i64",  Opcode.XOR,  "i64", 1.0,  32,  0),
    _spec("shl_i64",  Opcode.SHL,  "i64", 2.4, 210,  0),
    _spec("lshr_i64", Opcode.LSHR, "i64", 2.4, 210,  0),
    _spec("ashr_i64", Opcode.ASHR, "i64", 2.5, 214,  0),
    _spec("icmp_i64", Opcode.ICMP, "i64", 2.1,  40,  0),
    _spec("sel_i64",  Opcode.SELECT, "i64", 1.3, 64, 0),
    # single-precision floating point
    _spec("fadd_f32", Opcode.FADD, "f32", 11.0, 420, 320, stages=4),
    _spec("fsub_f32", Opcode.FSUB, "f32", 11.0, 430, 320, stages=4),
    _spec("fmul_f32", Opcode.FMUL, "f32", 9.5,  140, 180, dsp=4, stages=4),
    _spec("fdiv_f32", Opcode.FDIV, "f32", 26.0, 760, 640, stages=12),
    _spec("frem_f32", Opcode.FREM, "f32", 40.0, 1100, 860, stages=16),
    _spec("fneg_f32", Opcode.FNEG, "f32", 0.6,  1,   0),
    _spec("fcmp_f32", Opcode.FCMP, "f32", 3.5,  90,  0),
    _spec("sel_f32",  Opcode.SELECT, "f32", 1.2, 32, 0),
    # double-precision floating point
    _spec("fadd_f64", Opcode.FADD, "f64", 14.5, 800, 640, stages=5),
    _spec("fsub_f64", Opcode.FSUB, "f64", 14.5, 810, 640, stages=5),
    _spec("fmul_f64", Opcode.FMUL, "f64", 13.0, 360, 420, dsp=9, stages=5),
    _spec("fdiv_f64", Opcode.FDIV, "f64", 38.0, 1650, 1280, stages=20),
    _spec("frem_f64", Opcode.FREM, "f64", 60.0, 2300, 1700, stages=24),
    _spec("fneg_f64", Opcode.FNEG, "f64", 0.6,  1,   0),
    _spec("fcmp_f64", Opcode.FCMP, "f64", 4.2,  170, 0),
    _spec("sel_f64",  Opcode.SELECT, "f64", 1.4, 64, 0),
    # casts / width changes
    _spec("zext",     Opcode.ZEXT,   "i64", 0.4,  0,  0),
    _spec("sext",     Opcode.SEXT,   "i64", 0.6,  2,  0),
    _spec("trunc",    Opcode.TRUNC,  "i32", 0.3,  0,  0),
    _spec("bitcast",  Opcode.BITCAST, "i64", 0.2, 0,  0),
    _spec("fptosi_f32", Opcode.FPTOSI, "f32", 9.0, 300, 240, stages=4),
    _spec("fptosi_f64", Opcode.FPTOSI, "f64", 11.0, 480, 380, stages=5),
    _spec("sitofp_f32", Opcode.SITOFP, "f32", 9.0, 310, 240, stages=4),
    _spec("sitofp_f64", Opcode.SITOFP, "f64", 11.0, 500, 380, stages=5),
    _spec("fpext",    Opcode.FPEXT,   "f64", 2.8, 110, 0),
    _spec("fptrunc",  Opcode.FPTRUNC, "f32", 3.6, 150, 0),
    # address arithmetic (gep = shift-add)
    _spec("gep_i64",  Opcode.GEP,   "i64", 3.0,  70,  0),
    # small-width compare/select glue
    _spec("icmp_i1",  Opcode.ICMP,  "i1",  0.5,  2,   0),
    _spec("sel_i1",   Opcode.SELECT, "i1", 0.5,  2,   0),
    _spec("and_i1",   Opcode.AND,   "i1",  0.3,  1,   0),
    _spec("or_i1",    Opcode.OR,    "i1",  0.3,  1,   0),
    _spec("xor_i1",   Opcode.XOR,   "i1",  0.3,  1,   0),
]
# fmt: on

CORE_SPECS: dict[str, CoreSpec] = {s.name: s for s in _RAW_SPECS}

# Comparison cores are predicate-specific: an `slt` comparator is different
# hardware from an `eq` comparator, and the generated VHDL must preserve
# which one a candidate uses (the datapath simulator verifies this).
from repro.ir.opcodes import FCmpPred, ICmpPred  # noqa: E402


def _derive(base_name: str, new_name: str) -> None:
    base = CORE_SPECS[base_name]
    CORE_SPECS[new_name] = CoreSpec(
        new_name,
        base.opcode,
        base.type_class,
        base.latency_ns,
        base.luts,
        base.flipflops,
        base.dsp48,
        base.bram,
        base.pipeline_stages,
    )


for _pred in ICmpPred:
    for _tc in ("i1", "i32", "i64"):
        _base = f"icmp_{_tc}" if f"icmp_{_tc}" in CORE_SPECS else "icmp_i32"
        _derive(_base, f"icmp_{_pred.value}_{_tc}")
for _pred in FCmpPred:
    for _tc in ("f32", "f64"):
        _derive(f"fcmp_{_tc}", f"fcmp_{_pred.value}_{_tc}")

# Width-change cores are (source, destination)-width specific: a 1->32 zero
# extender is different hardware (and a different VHDL component interface)
# from a 32->64 one.
_INT_WIDTHS = (1, 8, 16, 32, 64)
for _s in _INT_WIDTHS:
    for _d in _INT_WIDTHS:
        if _d > _s:
            _derive("zext", f"zext_{_s}_{_d}")
            _derive("sext", f"sext_{_s}_{_d}")
        elif _d < _s:
            _derive("trunc", f"trunc_{_s}_{_d}")
for _bits in (8, 16, 32, 64):
    _derive("bitcast", f"bitcast_{_bits}_{_bits}")
for _ftc in ("f32", "f64"):
    for _ibits in _INT_WIDTHS:
        _derive(f"fptosi_{_ftc}", f"fptosi_{_ftc}_{_ibits}")
        _derive(f"sitofp_{_ftc}", f"sitofp_{_ftc}_{_ibits}")
# GEP index ports come in the integer widths the frontend produces.
for _ibits in (8, 16, 32, 64):
    _derive("gep_i64", f"gep_w{_ibits}")


def _type_class(ty: Type) -> str:
    if ty.is_ptr:
        return "i64"
    if ty.is_int:
        if ty.bits == 1:
            return "i1"
        return "i64" if ty.bits > 32 else "i32"
    return "f64" if ty.bits > 32 else "f32"


_BY_KEY: dict[tuple[Opcode, str], CoreSpec] = {}
for _s in _RAW_SPECS:
    _BY_KEY.setdefault((_s.opcode, _s.type_class), _s)


def core_name_for(instr: Instruction) -> str:
    """Resolve the IP core implementing *instr*.

    Raises ``KeyError`` for instructions with no hardware implementation
    (memory, control flow) — callers must feasibility-filter first.
    """
    op = instr.opcode
    # Type class from the result where meaningful, else the first operand.
    if op in (Opcode.ICMP, Opcode.FCMP):
        tc = _type_class(instr.operands[0].type)
        name = f"{op.value}_{instr.pred.value}_{tc}"
        if name in CORE_SPECS:
            return name
        raise KeyError(f"no core for {op} {instr.pred} {tc}")
    if op in (Opcode.ZEXT, Opcode.SEXT, Opcode.TRUNC, Opcode.BITCAST):
        src_bits = max(1, instr.operands[0].type.bits)
        dst_bits = max(1, instr.type.bits)
        name = f"{op.value}_{src_bits}_{dst_bits}"
        if name not in CORE_SPECS:
            raise KeyError(f"no IP core for {op} {src_bits}->{dst_bits}")
        return name
    if op in (Opcode.FPTOSI, Opcode.SITOFP):
        src = instr.operands[0].type
        dst = instr.type
        fty = src if src.is_float else dst
        ity = dst if src.is_float else src
        tc = _type_class(fty)
        return f"{op.value}_{tc}_{ity.bits}"
    if op is Opcode.FPEXT:
        return "fpext"
    if op is Opcode.FPTRUNC:
        return "fptrunc"
    if op is Opcode.GEP:
        return f"gep_w{instr.operands[1].type.bits}"
    tc = _type_class(instr.type)
    spec = _BY_KEY.get((op, tc))
    if spec is None:
        # Fall back to the wider integer variant for odd widths.
        spec = _BY_KEY.get((op, "i32")) or _BY_KEY.get((op, "i64"))
    if spec is None:
        raise KeyError(f"no IP core for opcode {op} of type {instr.type}")
    return spec.name
