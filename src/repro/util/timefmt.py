"""Time formatting helpers matching the paper's table conventions.

Table II of the paper reports runtimes in three formats: milliseconds
(candidate search), ``m:s`` (tool-flow overheads) and ``d:h:m:s`` (break-even
times). These helpers render virtual-seconds values in the same formats so
that regenerated tables are directly comparable with the paper.
"""

from __future__ import annotations


def format_ms(seconds: float) -> str:
    """Render a duration as milliseconds with two decimals, e.g. ``1.44``."""
    return f"{seconds * 1000.0:.2f}"


def format_seconds(seconds: float) -> str:
    """Render a duration as seconds with two decimals, e.g. ``151.00``."""
    return f"{seconds:.2f}"


def format_hms(seconds: float) -> str:
    """Render as ``m:ss`` (minutes may exceed 59, as in the paper)."""
    import math

    if not math.isfinite(seconds):
        return "inf"
    total = int(round(seconds))
    minutes, secs = divmod(total, 60)
    return f"{minutes}:{secs:02d}"


def format_dhms(seconds: float) -> str:
    """Render as ``d:hh:mm:ss`` as used for break-even times."""
    import math

    if not math.isfinite(seconds):
        return "inf"
    total = int(round(seconds))
    days, rem = divmod(total, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{days}:{hours:02d}:{minutes:02d}:{secs:02d}"


def format_hhmmss(seconds: float) -> str:
    """Render as ``hh:mm:ss`` as used in Table IV."""
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def parse_hms(text: str) -> float:
    """Parse ``m:ss`` / ``h:mm:ss`` / ``d:hh:mm:ss`` into seconds.

    Used by tests and the fidelity harness to compare against the paper's
    published table cells. Every component must be a plain non-negative
    decimal integer: negative, empty, or non-digit parts (``"1:-5"``,
    ``"1::5"``, ``"inf"``) raise ``ValueError`` instead of mis-parsing.
    """
    parts = text.strip().split(":")
    if not 1 <= len(parts) <= 4:
        raise ValueError(f"unparseable duration: {text!r}")
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"unparseable duration: {text!r}")
    weights = [1, 60, 3600, 86400]
    return float(sum(int(p) * w for p, w in zip(reversed(parts), weights)))
