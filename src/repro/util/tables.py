"""Minimal ASCII table renderer for experiment output.

The experiment drivers (`repro.experiments`) print tables whose rows and
columns mirror the paper's Tables I-IV. This renderer right-aligns numeric
columns and supports a footer section for the AVG/RATIO rows the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """An ASCII table with named columns and optional footer rows."""

    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    footer: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, values: Iterable[object]) -> None:
        row = [str(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def add_footer(self, values: Iterable[object]) -> None:
        row = [str(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"footer row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.footer.append(row)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows + self.footer:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        widths = self._widths()

        def fmt(row: Sequence[str]) -> str:
            cells = []
            for i, cell in enumerate(row):
                if i == 0:
                    cells.append(cell.ljust(widths[i]))
                else:
                    cells.append(cell.rjust(widths[i]))
            return "  ".join(cells)

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt(list(self.columns)))
        lines.append(sep)
        lines.extend(fmt(r) for r in self.rows)
        if self.footer:
            lines.append(sep)
            lines.extend(fmt(r) for r in self.footer)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
