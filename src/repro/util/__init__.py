"""Shared utilities: deterministic RNG, time formatting, ASCII tables."""

from repro.util.rng import DeterministicRng, stable_hash
from repro.util.timefmt import (
    format_dhms,
    format_hms,
    format_ms,
    format_seconds,
    parse_hms,
)
from repro.util.tables import Table

__all__ = [
    "DeterministicRng",
    "stable_hash",
    "format_dhms",
    "format_hms",
    "format_ms",
    "format_seconds",
    "parse_hms",
    "Table",
]
