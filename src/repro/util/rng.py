"""Deterministic random number generation and stable hashing.

Every stochastic element of the reproduction (dataset generation, placement
annealing, cache population) draws from a :class:`DeterministicRng` seeded
from a stable string key, so that all experiments are bit-reproducible across
runs and machines.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*parts: object) -> int:
    """Return a stable 64-bit hash of the string representations of *parts*.

    ``hash()`` is salted per-process for strings, so it cannot be used for
    reproducible seeding; this uses BLAKE2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


class DeterministicRng:
    """A seeded RNG namespaced by a string key.

    Thin wrapper over :class:`numpy.random.Generator` that derives its seed
    from a stable hash of ``(namespace, seed)``.
    """

    def __init__(self, namespace: str, seed: int = 0) -> None:
        self.namespace = namespace
        self.seed = seed
        self._gen = np.random.default_rng(stable_hash(namespace, seed))

    def child(self, sub_namespace: str) -> "DeterministicRng":
        """Derive an independent RNG for a sub-component."""
        return DeterministicRng(f"{self.namespace}/{sub_namespace}", self.seed)

    # -- convenience proxies -------------------------------------------------
    def integers(self, low: int, high: int | None = None, size=None):
        return self._gen.integers(low, high, size=size)

    def random(self, size=None):
        return self._gen.random(size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._gen.normal(loc, scale, size)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._gen.uniform(low, high, size)

    def choice(self, seq, size=None, replace: bool = True):
        return self._gen.choice(seq, size=size, replace=replace)

    def shuffle(self, seq) -> None:
        self._gen.shuffle(seq)

    @property
    def generator(self) -> np.random.Generator:
        return self._gen
