"""The benchmark application suite.

Fourteen MiniC applications mirroring the paper's benchmark selection:

- **scientific** (SPEC2000/2006 stand-ins): 164.gzip, 179.art, 183.equake,
  188.ammp, 429.mcf, 433.milc, 444.namd, 458.sjeng, 470.lbm, 473.astar;
- **embedded** (MiBench/SciMark2 stand-ins): adpcm, fft, sor, whetstone.

Each implements the characteristic computational kernel of its namesake at
laptop scale (see DESIGN.md, substitution table). Applications read their
problem size and data seed through the ``dataset_size()`` /
``dataset_seed()`` intrinsics so one compiled module can be profiled under
several data sets (required by the coverage methodology of Section IV-C).
"""

from repro.apps.base import AppSpec, DatasetSpec, CompiledApp, compile_app
from repro.apps.registry import (
    ALL_APPS,
    EMBEDDED_APPS,
    SCIENTIFIC_APPS,
    get_app,
)

__all__ = [
    "AppSpec",
    "DatasetSpec",
    "CompiledApp",
    "compile_app",
    "ALL_APPS",
    "EMBEDDED_APPS",
    "SCIENTIFIC_APPS",
    "get_app",
]
