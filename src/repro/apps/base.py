"""Application and dataset specifications.

An :class:`AppSpec` bundles a benchmark's MiniC sources with several input
data sets, as required by the multi-data-set coverage methodology of the
paper's Section IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.frontend.compiler import CompilationResult, compile_files
from repro.obs import get_tracer
from repro.vm.interpreter import ExecutionResult, Interpreter


@dataclass(frozen=True)
class DatasetSpec:
    """One input data set: a size parameter plus a data seed.

    ``size`` reaches the program via the ``dataset_size()`` intrinsic; what
    it means (elements, iterations, grid points) is up to the application.
    The paper profiles each application under several data sets to classify
    code as live/const/dead; ``train`` plays the role of the SPEC train set
    used for the runtime measurements.
    """

    name: str
    size: int
    seed: int = 1


@dataclass(frozen=True)
class AppSpec:
    """A benchmark application."""

    name: str
    domain: str  # "scientific" | "embedded"
    description: str
    sources: tuple  # tuple[(filename, source), ...]
    datasets: tuple  # tuple[DatasetSpec, ...]; first entry is "train"
    entry: str = "main"

    @property
    def train(self) -> DatasetSpec:
        return self.datasets[0]

    def dataset(self, name: str) -> DatasetSpec:
        for ds in self.datasets:
            if ds.name == name:
                return ds
        raise KeyError(f"app {self.name} has no dataset {name!r}")


@dataclass
class CompiledApp:
    """A compiled application ready for execution."""

    spec: AppSpec
    compilation: CompilationResult
    # Cached superinstruction fusion plan (built at most once per
    # CompiledApp; the per-run cost of fusion is just binding sites to the
    # fresh interpreter). Keyed implicitly by this app's module identity.
    _fusion_plan: object = field(default=None, repr=False, compare=False)

    @property
    def module(self):
        return self.compilation.module

    def run(
        self,
        dataset: DatasetSpec | str | None = None,
        max_steps: int = 200_000_000,
        sampler=None,
        fusion=None,
    ) -> ExecutionResult:
        if dataset is None:
            dataset = self.spec.train
        elif isinstance(dataset, str):
            dataset = self.spec.dataset(dataset)
        interp = Interpreter(
            self.module,
            dataset_size=dataset.size,
            dataset_seed=dataset.seed,
            max_steps=max_steps,
            sampler=sampler,
            fusion=fusion,
        )
        return interp.run(self.spec.entry)

    def fusion_plan(
        self,
        top: int | None = None,
        dataset: DatasetSpec | str | None = None,
        profile=None,
    ):
        """Mine this app's top-*top* superinstruction sequences and build
        (and cache) the :class:`~repro.vm.fusion.FusionPlan` for them.

        Without *profile*, one plain profiling run on *dataset* (train by
        default) supplies the dynamic counts — the JIT-ISE loop of the
        paper, aimed at the VM itself. Mining ranks on counts alone, so no
        dispatch-cost calibration is needed here.
        """
        from repro.obs.vmprof import mine_superinsns
        from repro.vm.fusion import DEFAULT_FUSE_TOP, plan_from_candidates

        if self._fusion_plan is None:
            if top is None:
                top = DEFAULT_FUSE_TOP
            if profile is None:
                profile = self.run(dataset).profile
            candidates = mine_superinsns(
                self.module, profile, dispatch_overhead_seconds=0.0, top=top
            )
            self._fusion_plan = plan_from_candidates(
                self.module, candidates, top
            )
        return self._fusion_plan


def compile_app(spec: AppSpec, opt_level: int = 2) -> CompiledApp:
    """Compile an application (no caching: callers may patch the module)."""
    with get_tracer().span(
        "pipeline.compile", app=spec.name, opt_level=opt_level
    ) as sp:
        result = compile_files(list(spec.sources), spec.name, opt_level)
        sp.set_attrs(
            files=result.files,
            instructions=result.instructions,
            virtual_seconds=result.compile_seconds,
        )
    return CompiledApp(spec=spec, compilation=result)
