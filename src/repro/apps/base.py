"""Application and dataset specifications.

An :class:`AppSpec` bundles a benchmark's MiniC sources with several input
data sets, as required by the multi-data-set coverage methodology of the
paper's Section IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.frontend.compiler import CompilationResult, compile_files
from repro.obs import get_tracer
from repro.vm.interpreter import ExecutionResult, Interpreter


@dataclass(frozen=True)
class DatasetSpec:
    """One input data set: a size parameter plus a data seed.

    ``size`` reaches the program via the ``dataset_size()`` intrinsic; what
    it means (elements, iterations, grid points) is up to the application.
    The paper profiles each application under several data sets to classify
    code as live/const/dead; ``train`` plays the role of the SPEC train set
    used for the runtime measurements.
    """

    name: str
    size: int
    seed: int = 1


@dataclass(frozen=True)
class AppSpec:
    """A benchmark application."""

    name: str
    domain: str  # "scientific" | "embedded"
    description: str
    sources: tuple  # tuple[(filename, source), ...]
    datasets: tuple  # tuple[DatasetSpec, ...]; first entry is "train"
    entry: str = "main"

    @property
    def train(self) -> DatasetSpec:
        return self.datasets[0]

    def dataset(self, name: str) -> DatasetSpec:
        for ds in self.datasets:
            if ds.name == name:
                return ds
        raise KeyError(f"app {self.name} has no dataset {name!r}")


@dataclass
class CompiledApp:
    """A compiled application ready for execution."""

    spec: AppSpec
    compilation: CompilationResult

    @property
    def module(self):
        return self.compilation.module

    def run(
        self,
        dataset: DatasetSpec | str | None = None,
        max_steps: int = 200_000_000,
        sampler=None,
    ) -> ExecutionResult:
        if dataset is None:
            dataset = self.spec.train
        elif isinstance(dataset, str):
            dataset = self.spec.dataset(dataset)
        interp = Interpreter(
            self.module,
            dataset_size=dataset.size,
            dataset_seed=dataset.seed,
            max_steps=max_steps,
            sampler=sampler,
        )
        return interp.run(self.spec.entry)


def compile_app(spec: AppSpec, opt_level: int = 2) -> CompiledApp:
    """Compile an application (no caching: callers may patch the module)."""
    with get_tracer().span(
        "pipeline.compile", app=spec.name, opt_level=opt_level
    ) as sp:
        result = compile_files(list(spec.sources), spec.name, opt_level)
        sp.set_attrs(
            files=result.files,
            instructions=result.instructions,
            virtual_seconds=result.compile_seconds,
        )
    return CompiledApp(spec=spec, compilation=result)
