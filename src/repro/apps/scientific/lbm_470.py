"""470.lbm — lattice Boltzmann method (SPEC2006 stand-in).

D2Q9 stream-and-collide over a 2-D channel with an obstacle. The collide
step is one enormous straight-line FP block per cell (equilibrium
distribution for nine directions) — the paper's largest scientific basic
blocks and its second-best scientific ASIP ratio (2.61x), but also the most
candidates (179) because the block is wide rather than deep.
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_LBM = """\
// 9 distributions on a grid of up to 40x24 cells, double buffered
double f0[1920]; double f1[1920]; double f2[1920];
double f3[1920]; double f4[1920]; double f5[1920];
double f6[1920]; double f7[1920]; double f8[1920];
double g0[1920]; double g1[1920]; double g2[1920];
double g3[1920]; double g4[1920]; double g5[1920];
double g6[1920]; double g7[1920]; double g8[1920];
int obstacle[1920];
int NX = 0;
int NY = 0;

int cell(int x, int y) { return y * NX + x; }

void init_channel(int nx, int ny, int seed) {
    srand(seed);
    NX = nx; NY = ny;
    for (int y = 0; y < ny; y++) {
        for (int x = 0; x < nx; x++) {
            int c = cell(x, y);
            obstacle[c] = 0;
            // cylinder-ish obstacle
            int dx = x - nx / 4;
            int dy = y - ny / 2;
            if (dx * dx + dy * dy < 9) obstacle[c] = 1;
            double r = 0.0001 * (double)(rand() % 100);
            f0[c] = 0.444444 + r;
            f1[c] = 0.111111; f2[c] = 0.111111; f3[c] = 0.111111; f4[c] = 0.111111;
            f5[c] = 0.027778; f6[c] = 0.027778; f7[c] = 0.027778; f8[c] = 0.027778;
        }
    }
}

// Collide: BGK relaxation toward equilibrium, one huge FP block per cell.
void collide(double omega) {
    int n = NX * NY;
    for (int c = 0; c < n; c++) {
        if (obstacle[c] == 1) continue;
        double rho = f0[c] + f1[c] + f2[c] + f3[c] + f4[c]
                   + f5[c] + f6[c] + f7[c] + f8[c];
        double inv_rho = 1.0 / rho;
        double ux = (f1[c] - f3[c] + f5[c] - f6[c] - f7[c] + f8[c]) * inv_rho + 0.00001;
        double uy = (f2[c] - f4[c] + f5[c] + f6[c] - f7[c] - f8[c]) * inv_rho;
        double u2 = ux * ux + uy * uy;
        double c1 = 1.0 - 1.5 * u2;
        double w0 = 0.444444 * rho;
        double w1 = 0.111111 * rho;
        double w2 = 0.027778 * rho;
        double e0 = w0 * c1;
        double e1 = w1 * (c1 + 3.0 * ux + 4.5 * ux * ux);
        double e2 = w1 * (c1 + 3.0 * uy + 4.5 * uy * uy);
        double e3 = w1 * (c1 - 3.0 * ux + 4.5 * ux * ux);
        double e4 = w1 * (c1 - 3.0 * uy + 4.5 * uy * uy);
        double p5 = ux + uy;
        double p6 = uy - ux;
        double e5 = w2 * (c1 + 3.0 * p5 + 4.5 * p5 * p5);
        double e6 = w2 * (c1 + 3.0 * p6 + 4.5 * p6 * p6);
        double e7 = w2 * (c1 - 3.0 * p5 + 4.5 * p5 * p5);
        double e8 = w2 * (c1 - 3.0 * p6 + 4.5 * p6 * p6);
        f0[c] += omega * (e0 - f0[c]);
        f1[c] += omega * (e1 - f1[c]);
        f2[c] += omega * (e2 - f2[c]);
        f3[c] += omega * (e3 - f3[c]);
        f4[c] += omega * (e4 - f4[c]);
        f5[c] += omega * (e5 - f5[c]);
        f6[c] += omega * (e6 - f6[c]);
        f7[c] += omega * (e7 - f7[c]);
        f8[c] += omega * (e8 - f8[c]);
    }
}

// Stream: move distributions to neighbours (periodic boundaries).
void stream() {
    for (int y = 0; y < NY; y++) {
        int yn = y + 1; if (yn == NY) yn = 0;
        int ys = y - 1; if (ys < 0) ys = NY - 1;
        for (int x = 0; x < NX; x++) {
            int xe = x + 1; if (xe == NX) xe = 0;
            int xw = x - 1; if (xw < 0) xw = NX - 1;
            int c = cell(x, y);
            g0[c] = f0[c];
            g1[cell(xe, y)] = f1[c];
            g2[cell(x, yn)] = f2[c];
            g3[cell(xw, y)] = f3[c];
            g4[cell(x, ys)] = f4[c];
            g5[cell(xe, yn)] = f5[c];
            g6[cell(xw, yn)] = f6[c];
            g7[cell(xw, ys)] = f7[c];
            g8[cell(xe, ys)] = f8[c];
        }
    }
    int n = NX * NY;
    for (int c = 0; c < n; c++) {
        if (obstacle[c] == 1) {
            // bounce-back
            double t1 = g1[c]; double t2 = g2[c]; double t5 = g5[c]; double t6 = g6[c];
            f1[c] = g3[c]; f3[c] = t1;
            f2[c] = g4[c]; f4[c] = t2;
            f5[c] = g7[c]; f7[c] = t5;
            f6[c] = g8[c]; f8[c] = t6;
            f0[c] = g0[c];
        } else {
            f0[c] = g0[c]; f1[c] = g1[c]; f2[c] = g2[c]; f3[c] = g3[c];
            f4[c] = g4[c]; f5[c] = g5[c]; f6[c] = g6[c]; f7[c] = g7[c];
            f8[c] = g8[c];
        }
    }
}
"""

_MAIN = """\
// Dead: VTK-style field dump, disabled in benchmark mode.
void dump_velocity_field() {
    int n = NX * NY;
    for (int c = 0; c < n && c < 8; c++) print_f64(f0[c]);
}

int main() {
    int s = dataset_size();
    if (s < 8) s = 8;
    if (s > 24) s = 24;
    int nx = s + s / 2;
    int ny = s;
    init_channel(nx, ny, dataset_seed());
    configure_boundaries(0.05);
    int steps = 30;
    for (int t = 0; t < steps; t++) {
        collide(1.7);
        stream();
    }
    if (s < 0) {
        dump_velocity_field();
        apply_inflow();
        print_f64(obstacle_drag());
    }
    double mass = 0.0;
    double mom = 0.0;
    int n = nx * ny;
    for (int c = 0; c < n; c++) {
        double rho = f0[c] + f1[c] + f2[c] + f3[c] + f4[c]
                   + f5[c] + f6[c] + f7[c] + f8[c];
        mass += rho;
        mom += f1[c] - f3[c];
    }
    print_f64(mass);
    print_f64(mom);
    return 0;
}
"""

APP = AppSpec(
    name="470.lbm",
    domain="scientific",
    description="Lattice Boltzmann D2Q9 stream/collide (SPEC2006 lbm)",
    sources=(
        ("lbm.c", _LBM),
        ("boundary.c", EXTRAS.LBM_BOUNDARY),
        ("main.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=12, seed=127),
        DatasetSpec("small", size=8, seed=131),
        DatasetSpec("large", size=16, seed=137),
    ),
)
