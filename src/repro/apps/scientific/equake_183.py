"""183.equake — seismic wave propagation (SPEC2000 stand-in).

Finite-element earthquake simulation reduced to its computational heart:
a sparse matrix-vector product (CSR stiffness matrix) inside an explicit
time-integration loop. The paper measures a 2.08x upper-bound ASIP ratio —
the integration update is a clean FP block, while the matvec is
load-dominated.
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_SPARSE = """\
// CSR sparse matrix, up to 1024 nodes x ~8 nonzeros
int row_start[1025];
int col_index[8192];
double values[8192];
int n_nodes = 0;
int n_nonzeros = 0;

void build_mesh(int n, int seed) {
    srand(seed);
    n_nodes = n;
    n_nonzeros = 0;
    for (int i = 0; i < n; i++) {
        row_start[i] = n_nonzeros;
        // diagonal
        col_index[n_nonzeros] = i;
        values[n_nonzeros] = 4.0 + 0.001 * (double)(rand() % 1000);
        n_nonzeros++;
        // neighbours (1-D chain + random long-range coupling)
        if (i > 0) {
            col_index[n_nonzeros] = i - 1;
            values[n_nonzeros] = -1.0 - 0.0005 * (double)(rand() % 1000);
            n_nonzeros++;
        }
        if (i < n - 1) {
            col_index[n_nonzeros] = i + 1;
            values[n_nonzeros] = -1.0 - 0.0005 * (double)(rand() % 1000);
            n_nonzeros++;
        }
        int far = rand() % n;
        if (far != i) {
            col_index[n_nonzeros] = far;
            values[n_nonzeros] = -0.1;
            n_nonzeros++;
        }
    }
    row_start[n] = n_nonzeros;
}

void spmv(double* x, double* y) {
    for (int i = 0; i < n_nodes; i++) {
        double sum = 0.0;
        int end = row_start[i + 1];
        for (int k = row_start[i]; k < end; k++) {
            sum += values[k] * x[col_index[k]];
        }
        y[i] = sum;
    }
}
"""

_SIM = """\
double disp[1024];     // displacement
double vel[1024];      // velocity
double acc[1024];      // acceleration
double force[1024];

void apply_source(int step, int n) {
    // Ricker-like wavelet at the mesh centre
    double t = (double)step * 0.01 - 1.0;
    double a = t * t * 14.0;
    double amp = (1.0 - 2.0 * a) * exp(-a);
    force[n / 2] = amp * 50.0;
}

// The explicit Newmark-style update: a clean FP block per node.
void time_step(int n, double dt) {
    spmv(disp, acc);
    double damp = 0.995;
    double half_dt2 = 0.5 * dt * dt;
    for (int i = 0; i < n; i++) {
        double a = force[i] - acc[i] - 0.12 * vel[i];
        vel[i] = (vel[i] + a * dt) * damp;
        disp[i] = disp[i] + vel[i] * dt + a * half_dt2;
        force[i] = 0.0;
    }
}

// Dead: full energy audit, disabled in production runs.
double total_energy(int n) {
    double e = 0.0;
    spmv(disp, acc);
    for (int i = 0; i < n; i++) {
        e += 0.5 * vel[i] * vel[i] + 0.5 * disp[i] * acc[i];
    }
    return e;
}

int main() {
    int n = dataset_size();
    if (n < 32) n = 32;
    if (n > 1024) n = 1024;
    build_mesh(n, dataset_seed());
    compute_mesh_stats();
    for (int i = 0; i < n; i++) { disp[i] = 0.0; vel[i] = 0.0; force[i] = 0.0; }
    int steps = 160;
    for (int s = 0; s < steps; s++) {
        apply_source(s, n);
        time_step(n, 0.01);
    }
    if (n < 0) {
        print_f64(total_energy(n));
        print_i32(write_checkpoint(0));
        print_i32(read_checkpoint());
        print_f64(estimate_damping(0.1, 0.2));
    }
    double peak = 0.0;
    double sum = 0.0;
    for (int i = 0; i < n; i++) {
        double d = fabs(disp[i]);
        if (d > peak) peak = d;
        sum += d;
    }
    print_f64(peak);
    print_f64(sum);
    return 0;
}
"""

APP = AppSpec(
    name="183.equake",
    domain="scientific",
    description="FEM seismic wave propagation: CSR matvec + explicit integration",
    sources=(
        ("sparse.c", _SPARSE),
        ("mesh_io.c", EXTRAS.EQUAKE_MESHIO),
        ("sim.c", _SIM),
    ),
    datasets=(
        DatasetSpec("train", size=150, seed=29),
        DatasetSpec("small", size=60, seed=31),
        DatasetSpec("large", size=240, seed=37),
    ),
)
