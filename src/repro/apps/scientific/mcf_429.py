"""429.mcf — minimum-cost flow (SPEC2006 stand-in).

Vehicle-scheduling network optimization reduced to its dominant kernel:
repeated shortest-path label correction (Bellman-Ford style arc relaxation)
over an adjacency-array network, plus a flow augmentation pass. Almost pure
integer pointer-chasing: the paper's lowest upper-bound ASIP ratio (1.08x).
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_NETWORK = """\
int arc_from[8192];
int arc_to[8192];
int arc_cost[8192];
int arc_cap[8192];
int arc_flow[8192];
int n_arcs = 0;
int n_nodes = 0;

int dist[2048];
int pred_arc[2048];
int INF = 1000000000;

void build_network(int n, int seed) {
    srand(seed);
    n_nodes = n;
    n_arcs = 0;
    // layered network: chain + random shortcuts
    for (int i = 0; i < n - 1; i++) {
        arc_from[n_arcs] = i;
        arc_to[n_arcs] = i + 1;
        arc_cost[n_arcs] = 1 + rand() % 10;
        arc_cap[n_arcs] = 4 + rand() % 8;
        arc_flow[n_arcs] = 0;
        n_arcs++;
    }
    int shortcuts = n * 3;
    for (int k = 0; k < shortcuts; k++) {
        int a = rand() % n;
        int b = rand() % n;
        if (a == b) continue;
        if (a > b) { int t = a; a = b; b = t; }
        arc_from[n_arcs] = a;
        arc_to[n_arcs] = b;
        arc_cost[n_arcs] = 2 + rand() % 20;
        arc_cap[n_arcs] = 1 + rand() % 6;
        arc_flow[n_arcs] = 0;
        n_arcs++;
    }
}

// Bellman-Ford label correction over residual arcs (the hot kernel).
int shortest_path(int src) {
    for (int i = 0; i < n_nodes; i++) { dist[i] = INF; pred_arc[i] = -1; }
    dist[src] = 0;
    int changed = 1;
    int rounds = 0;
    while (changed == 1 && rounds < n_nodes) {
        changed = 0;
        for (int a = 0; a < n_arcs; a++) {
            if (arc_flow[a] < arc_cap[a]) {
                int u = arc_from[a];
                int v = arc_to[a];
                int du = dist[u];
                if (du < INF) {
                    int nd = du + arc_cost[a];
                    if (nd < dist[v]) {
                        dist[v] = nd;
                        pred_arc[v] = a;
                        changed = 1;
                    }
                }
            }
        }
        rounds++;
    }
    return rounds;
}

int augment(int sink) {
    // find bottleneck along predecessor arcs
    int bottleneck = INF;
    int v = sink;
    while (pred_arc[v] >= 0) {
        int a = pred_arc[v];
        int r = arc_cap[a] - arc_flow[a];
        if (r < bottleneck) bottleneck = r;
        v = arc_from[a];
    }
    if (bottleneck == INF || bottleneck <= 0) return 0;
    v = sink;
    while (pred_arc[v] >= 0) {
        int a = pred_arc[v];
        arc_flow[a] += bottleneck;
        v = arc_from[a];
    }
    return bottleneck;
}
"""

_MAIN = """\
// Dead: exact network validation pass (debug only).
int validate_network() {
    int bad = 0;
    for (int a = 0; a < n_arcs; a++) {
        if (arc_flow[a] > arc_cap[a]) bad++;
        if (arc_from[a] >= arc_to[a]) bad++;
    }
    return bad;
}

int main() {
    int n = dataset_size();
    if (n < 32) n = 32;
    if (n > 2048) n = 2048;
    build_network(n, dataset_seed());
    build_spanning_basis();
    long total_cost = 0;
    int total_flow = 0;
    int iterations = 12;
    for (int it = 0; it < iterations; it++) {
        shortest_path(0);
        if (dist[n - 1] >= INF) break;
        int f = augment(n - 1);
        if (f == 0) break;
        total_flow += f;
        total_cost += (long)f * (long)dist[n - 1];
    }
    if (n < 0) {
        print_i32(validate_network());
        int entering[1];
        print_i32(price_arcs(entering));
        print_i32(ratio_test(entering[0]));
    }
    print_i32(total_flow);
    print_i64(total_cost);
    return 0;
}
"""

APP = AppSpec(
    name="429.mcf",
    domain="scientific",
    description="Min-cost flow: Bellman-Ford relaxation + augmentation",
    sources=(
        ("network.c", _NETWORK),
        ("simplex.c", EXTRAS.MCF_SIMPLEX),
        ("main.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=220, seed=67),
        DatasetSpec("small", size=80, seed=71),
        DatasetSpec("large", size=360, seed=73),
    ),
)
