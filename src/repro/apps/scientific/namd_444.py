"""444.namd — biomolecular simulation force kernels (SPEC2006 stand-in).

NAMD's inner loops: non-bonded pair interactions evaluated through a
switching polynomial, computed over a pair list that is rebuilt
periodically. More structured than 188.ammp (separate pair-list and force
phases); paper upper bound 1.61x.
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_PAIRLIST = """\
double posx[200]; double posy[200]; double posz[200];
double velx[200]; double vely[200]; double velz[200];
double frcx[200]; double frcy[200]; double frcz[200];
int pair_i[12000];
int pair_j[12000];
int n_pairs = 0;
int n_atoms2 = 0;

void build_pairs(double cutoff2) {
    n_pairs = 0;
    for (int i = 0; i < n_atoms2; i++) {
        for (int j = i + 1; j < n_atoms2; j++) {
            double dx = posx[i] - posx[j];
            double dy = posy[i] - posy[j];
            double dz = posz[i] - posz[j];
            double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutoff2 * 1.44 && n_pairs < 12000) {
                pair_i[n_pairs] = i;
                pair_j[n_pairs] = j;
                n_pairs++;
            }
        }
    }
}
"""

_FORCES = """\
double switching(double r2, double cutoff2) {
    // C1-continuous switching polynomial
    double x = r2 / cutoff2;
    double y = 1.0 - x * x;
    return y * y * (1.0 + 2.0 * x * x);
}

void pair_forces(double cutoff2) {
    for (int p = 0; p < n_pairs; p++) {
        int i = pair_i[p];
        int j = pair_j[p];
        double dx = posx[i] - posx[j];
        double dy = posy[i] - posy[j];
        double dz = posz[i] - posz[j];
        double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutoff2) {
            double inv_r2 = 1.0 / (r2 + 0.0001);
            double inv_r6 = inv_r2 * inv_r2 * inv_r2;
            double sw = switching(r2, cutoff2);
            double e = inv_r6 * (inv_r6 - 1.0) * sw;
            double g = (12.0 * inv_r6 * inv_r6 - 6.0 * inv_r6) * inv_r2 * sw;
            frcx[i] += g * dx; frcy[i] += g * dy; frcz[i] += g * dz;
            frcx[j] -= g * dx; frcy[j] -= g * dy; frcz[j] -= g * dz;
        }
    }
}

void advance(double dt) {
    for (int i = 0; i < n_atoms2; i++) {
        velx[i] += frcx[i] * dt;
        vely[i] += frcy[i] * dt;
        velz[i] += frcz[i] * dt;
        posx[i] += velx[i] * dt;
        posy[i] += vely[i] * dt;
        posz[i] += velz[i] * dt;
        frcx[i] = 0.0; frcy[i] = 0.0; frcz[i] = 0.0;
    }
}
"""

_MAIN = """\
void setup(int n, int seed) {
    srand(seed);
    n_atoms2 = n;
    for (int i = 0; i < n; i++) {
        posx[i] = 0.01 * (double)(rand() % 1000);
        posy[i] = 0.01 * (double)(rand() % 1000);
        posz[i] = 0.01 * (double)(rand() % 1000);
        velx[i] = 0.0; vely[i] = 0.0; velz[i] = 0.0;
        frcx[i] = 0.0; frcy[i] = 0.0; frcz[i] = 0.0;
    }
}

// Dead: PME long-range electrostatics (not configured at these sizes).
double pme_longrange() {
    double acc = 0.0;
    for (int i = 0; i < n_atoms2; i++) acc += posx[i] * 0.001;
    return acc;
}

int main() {
    int n = dataset_size();
    if (n < 24) n = 24;
    if (n > 200) n = 200;
    setup(n, dataset_seed());
    build_exclusions();
    double cutoff2 = 9.0;
    int steps = 24;
    for (int s = 0; s < steps; s++) {
        if (s % 8 == 0) build_pairs(cutoff2);
        pair_forces(cutoff2);
        advance(0.002);
    }
    if (n < 0) {
        print_f64(pme_longrange());
        print_i32(minimize(10, 0.001));
        print_i32(is_excluded(0, 1));
    }
    double ke = 0.0;
    for (int i = 0; i < n; i++) {
        ke += velx[i] * velx[i] + vely[i] * vely[i] + velz[i] * velz[i];
    }
    print_f64(ke);
    print_i32(n_pairs);
    return 0;
}
"""

APP = AppSpec(
    name="444.namd",
    domain="scientific",
    description="Non-bonded force kernels with pair lists (SPEC2006 namd)",
    sources=(
        ("pairlist.c", _PAIRLIST),
        ("exclusions.c", EXTRAS.NAMD_EXCLUSIONS),
        ("forces.c", _FORCES),
        ("main.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=100, seed=97),
        DatasetSpec("small", size=40, seed=101),
        DatasetSpec("large", size=140, seed=103),
    ),
)
