"""458.sjeng — game-tree search (SPEC2006 stand-in).

Alpha-beta minimax with a transposition-table-style hash, a bit-twiddling
evaluation function, and deterministic synthetic move generation. Control
heavy and integer-only; the paper's kernel covers 46 % of the code but the
ASIP ratio is just 1.13x — branchy code does not map to datapaths.
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_EVAL = """\
int board[64];
long zobrist[1024];   // 64 squares x 16 piece kinds
long position_hash = 0;

void init_zobrist(int seed) {
    srand(seed);
    for (int i = 0; i < 1024; i++) {
        long hi = (long)rand();
        long lo = (long)rand();
        zobrist[i] = (hi << 31) ^ lo;
    }
}

void init_board(int seed) {
    srand(seed + 7);
    position_hash = 0;
    for (int sq = 0; sq < 64; sq++) {
        board[sq] = rand() % 16;
        position_hash = position_hash ^ zobrist[sq * 16 + board[sq]];
    }
}

// Bit-mixing evaluation: material + mobility-ish popcount terms.
int evaluate() {
    long h = position_hash;
    int score = 0;
    for (int sq = 0; sq < 64; sq += 8) {
        int a = board[sq] - board[sq + 1];
        int b = board[sq + 2] & board[sq + 3];
        int c = board[sq + 4] | board[sq + 5];
        int d = board[sq + 6] ^ board[sq + 7];
        score += a * 3 + b * 2 - c + (d << 1);
    }
    // fold hash bits into a small positional term
    long m = h ^ (h >> 29);
    m = m * 1099511627;
    m = m ^ (m >> 32);
    score += (int)(m & 31) - 16;
    return score;
}

void make_move(int move) {
    int sq = move % 64;
    int old = board[sq];
    int piece = (move / 64) % 16;
    position_hash = position_hash ^ zobrist[sq * 16 + old];
    board[sq] = piece;
    position_hash = position_hash ^ zobrist[sq * 16 + piece];
}

void unmake_move(int move, int old_piece) {
    int sq = move % 64;
    position_hash = position_hash ^ zobrist[sq * 16 + board[sq]];
    board[sq] = old_piece;
    position_hash = position_hash ^ zobrist[sq * 16 + old_piece];
}
"""

_SEARCH = """\
int nodes_visited = 0;
int tt_key[2048];
int tt_score[2048];

int gen_move(int ply, int k) {
    // deterministic pseudo-move from the position hash
    long h = position_hash ^ (long)(ply * 2654435761) ^ (long)(k * 40503);
    h = h ^ (h >> 17);
    if (h < 0) h = -h;
    return (int)(h % 1024);
}

int alpha_beta(int depth, int alpha, int beta, int side) {
    nodes_visited++;
    int slot = (int)(position_hash & 2047);
    if (slot < 0) slot = -slot;
    if (tt_key[slot] == (int)(position_hash & 65535) && depth <= 1) {
        return tt_score[slot];
    }
    if (depth == 0) {
        int e = evaluate() * side;
        tt_key[slot] = (int)(position_hash & 65535);
        tt_score[slot] = e;
        return e;
    }
    int best = -1000000;
    int moves = 6;
    for (int k = 0; k < moves; k++) {
        int move = gen_move(depth, k);
        int sq = move % 64;
        int old = board[sq];
        make_move(move);
        int score = -alpha_beta(depth - 1, -beta, -alpha, -side);
        unmake_move(move, old);
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;  // beta cutoff
    }
    return best;
}

// Dead: perft-style move counting used only in self-tests.
long perft(int depth) {
    if (depth == 0) return 1;
    long total = 0;
    for (int k = 0; k < 6; k++) {
        int move = gen_move(depth, k);
        int sq = move % 64;
        int old = board[sq];
        make_move(move);
        total += perft(depth - 1);
        unmake_move(move, old);
    }
    return total;
}

int main() {
    int n = dataset_size();
    if (n < 2) n = 2;
    if (n > 40) n = 40;
    init_zobrist(dataset_seed());
    build_book(dataset_seed());
    probe_book();
    for (int i = 0; i < 2048; i++) { tt_key[i] = -1; tt_score[i] = 0; }
    int total = 0;
    for (int game = 0; game < n; game++) {
        init_board(dataset_seed() + game);
        int score = alpha_beta(5, -1000000, 1000000, 1);
        total += score;
    }
    if (n < 0) {
        print_i64(perft(3));
        print_i32(probe_endgame(4));
        print_i32(see(12, 1));
    }
    print_i32(total);
    print_i32(nodes_visited);
    return 0;
}
"""

APP = AppSpec(
    name="458.sjeng",
    domain="scientific",
    description="Alpha-beta game-tree search with Zobrist hashing",
    sources=(
        ("eval.c", _EVAL),
        ("book.c", EXTRAS.SJENG_BOOK),
        ("search.c", _SEARCH),
    ),
    datasets=(
        DatasetSpec("train", size=14, seed=107),
        DatasetSpec("small", size=5, seed=109),
        DatasetSpec("large", size=30, seed=113),
    ),
)
