"""Cold-path modules for the scientific applications.

Real SPEC applications are far larger than their hot kernels: option
parsing, validation passes, alternative algorithms, output writers. This
module provides each scientific stand-in with that realistic "long tail" —
code that is *const* (runs once per execution regardless of input size) or
*dead* (alternative/diagnostic paths never enabled in benchmark runs).

It exists for fidelity of the paper's structural statistics: source size
(Table I files/LOC/blk/ins, paper ratio 24x scientific/embedded), dead-code
share (paper: 34 % scientific vs 15 % embedded), and the observation that
large programs offer the ISE algorithms mostly-cold code.

Each constant is a MiniC source string appended to the owning application;
`main` additions are wired in the app files themselves (a one-call
"housekeeping" entry executed once, plus a disabled diagnostic guard).
"""

GZIP_HUFFMAN = """\
// Static Huffman code construction over the literal histogram (cold: runs
// once per execution) and a canonical-code validator (dead: debug only).
int code_length[256];
int length_count[16];
int next_code[16];

int huffman_assign_lengths() {
    // approximate length assignment: log2 of inverse frequency, clamped
    int total = 0;
    for (int i = 0; i < 256; i++) total += lit_count[i];
    if (total == 0) total = 1;
    for (int i = 0; i < 256; i++) {
        int f = lit_count[i];
        if (f == 0) { code_length[i] = 0; continue; }
        int len = 1;
        int share = total / f;
        while (share > 1 && len < 15) { share = share >> 1; len++; }
        code_length[i] = len;
    }
    for (int l = 0; l < 16; l++) length_count[l] = 0;
    for (int i = 0; i < 256; i++) length_count[code_length[i]]++;
    int code = 0;
    next_code[0] = 0;
    for (int l = 1; l < 16; l++) {
        code = (code + length_count[l - 1]) << 1;
        next_code[l] = code;
    }
    long weighted = 0;
    for (int i = 0; i < 256; i++) weighted += (long)(lit_count[i] * code_length[i]);
    return (int)(weighted & 2147483647);
}

// Dead: verifies the Kraft inequality of the generated code.
int huffman_validate() {
    long kraft = 0;
    for (int i = 0; i < 256; i++) {
        if (code_length[i] > 0) {
            kraft += (long)(1 << (15 - code_length[i]));
        }
    }
    if (kraft > (long)(1 << 15)) return 0;
    return 1;
}

// Dead: canonical decode table for a round-trip check.
int decode_first_symbol(int bits) {
    int code = 0;
    int len = 0;
    while (len < 15) {
        code = (code << 1) | (bits & 1);
        bits = bits >> 1;
        len++;
        int base = next_code[len];
        if (code - base < length_count[len]) {
            return code - base;
        }
    }
    return -1;
}
"""

ART_TRAINING = """\
// Offline training mode (dead in recognition runs) plus a pattern
// statistics pass (cold: once per run).
double train_rate_schedule[8] = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2};
double pattern_mean = 0.0;
double pattern_var = 0.0;

int compute_pattern_stats() {
    double sum = 0.0;
    for (int i = 0; i < 64; i++) sum += input_img[i];
    pattern_mean = sum / 64.0;
    double acc = 0.0;
    for (int i = 0; i < 64; i++) {
        double d = input_img[i] - pattern_mean;
        acc += d * d;
    }
    pattern_var = acc / 64.0;
    if (pattern_var < 0.0) return -1;
    return 0;
}

// Dead: supervised training epoch over labelled patterns.
int train_epoch(int epoch) {
    double rate = train_rate_schedule[epoch & 7];
    int updates = 0;
    for (int k = 0; k < 16; k++) {
        make_pattern(k, 1234 + epoch);
        normalize_input();
        compute_activations();
        int winner = find_winner();
        adapt(winner, rate);
        updates++;
    }
    return updates;
}

// Dead: weight decay regularization between epochs.
void decay_weights(double lambda) {
    for (int j = 0; j < 64; j++) {
        for (int i = 0; i < 64; i++) {
            bu_weights[j * 64 + i] *= (1.0 - lambda);
            td_weights[j * 64 + i] *= (1.0 - lambda);
        }
    }
}
"""

EQUAKE_MESHIO = """\
// Mesh statistics (cold) and checkpoint/restart support (dead).
double mesh_min_coupling = 0.0;
double mesh_max_coupling = 0.0;
int mesh_bandwidth = 0;
double checkpoint_buf[1024];

int compute_mesh_stats() {
    mesh_min_coupling = 1000000.0;
    mesh_max_coupling = -1000000.0;
    mesh_bandwidth = 0;
    for (int i = 0; i < n_nodes; i++) {
        for (int k = row_start[i]; k < row_start[i + 1]; k++) {
            double v = values[k];
            if (v < mesh_min_coupling) mesh_min_coupling = v;
            if (v > mesh_max_coupling) mesh_max_coupling = v;
            int span = col_index[k] - i;
            if (span < 0) span = -span;
            if (span > mesh_bandwidth) mesh_bandwidth = span;
        }
    }
    return mesh_bandwidth;
}

// Dead: checkpoint of the displacement field.
int write_checkpoint(int step) {
    for (int i = 0; i < n_nodes && i < 1024; i++) {
        checkpoint_buf[i] = disp[i];
    }
    return step;
}

// Dead: restart from the last checkpoint.
int read_checkpoint() {
    int restored = 0;
    for (int i = 0; i < n_nodes && i < 1024; i++) {
        disp[i] = checkpoint_buf[i];
        restored++;
    }
    return restored;
}

// Dead: Rayleigh damping re-estimation (alternative integrator option).
double estimate_damping(double alpha, double beta) {
    double acc = 0.0;
    for (int i = 0; i < n_nodes; i++) {
        acc += alpha * vel[i] * vel[i] + beta * disp[i] * disp[i];
    }
    return acc;
}
"""

AMMP_BONDS = """\
// Bonded interactions (cold phase: executes once after setup) and a
// trajectory writer (dead).
int bond_a[512];
int bond_b[512];
double bond_length[512];
int n_bonds = 0;

void build_bonds() {
    // connect lattice neighbours (i, i+1) as a synthetic bond topology
    n_bonds = 0;
    for (int i = 0; i + 1 < n_atoms && n_bonds < 512; i++) {
        bond_a[n_bonds] = i;
        bond_b[n_bonds] = i + 1;
        bond_length[n_bonds] = 1.2;
        n_bonds++;
    }
}

double bond_energy() {
    double e = 0.0;
    for (int k = 0; k < n_bonds; k++) {
        int i = bond_a[k];
        int j = bond_b[k];
        double dx = px[i] - px[j];
        double dy = py[i] - py[j];
        double dz = pz[i] - pz[j];
        double r = sqrt(dx * dx + dy * dy + dz * dz);
        double d = r - bond_length[k];
        e += 50.0 * d * d;
    }
    return e;
}

// Dead: SHAKE-style constraint iteration (rigid-bond option disabled).
int shake_constraints(double tol) {
    int iterations = 0;
    int converged = 0;
    while (converged == 0 && iterations < 50) {
        converged = 1;
        for (int k = 0; k < n_bonds; k++) {
            int i = bond_a[k];
            int j = bond_b[k];
            double dx = px[i] - px[j];
            double dy = py[i] - py[j];
            double dz = pz[i] - pz[j];
            double r2 = dx * dx + dy * dy + dz * dz;
            double target = bond_length[k] * bond_length[k];
            double diff = r2 - target;
            if (fabs(diff) > tol) {
                double g = diff / (4.0 * r2 + 0.0001);
                px[i] -= g * dx; px[j] += g * dx;
                py[i] -= g * dy; py[j] += g * dy;
                pz[i] -= g * dz; pz[j] += g * dz;
                converged = 0;
            }
        }
        iterations++;
    }
    return iterations;
}
"""

MCF_SIMPLEX = """\
// Network-simplex scaffolding: the alternative optimizer the real mcf
// uses. Dead here (the benchmark run uses label-correcting augmentation),
// plus a basis-statistics pass (cold).
int basis_parent[2048];
int basis_depth[2048];
int arcs_in_basis = 0;

int build_spanning_basis() {
    // trivial chain basis over the network nodes
    arcs_in_basis = 0;
    basis_parent[0] = -1;
    basis_depth[0] = 0;
    for (int i = 1; i < n_nodes; i++) {
        basis_parent[i] = i - 1;
        basis_depth[i] = basis_depth[i - 1] + 1;
        arcs_in_basis++;
    }
    return arcs_in_basis;
}

// Dead: reduced-cost pricing pass of the simplex method.
int price_arcs(int* entering_out) {
    int best_arc = -1;
    int best_violation = 0;
    for (int a = 0; a < n_arcs; a++) {
        int u = arc_from[a];
        int v = arc_to[a];
        int reduced = arc_cost[a] + basis_depth[u] - basis_depth[v];
        if (arc_flow[a] < arc_cap[a] && reduced < -best_violation) {
            best_violation = -reduced;
            best_arc = a;
        }
    }
    entering_out[0] = best_arc;
    return best_violation;
}

// Dead: leave-arc selection by ratio test along the basis cycle.
int ratio_test(int entering) {
    int u = arc_from[entering];
    int v = arc_to[entering];
    int theta = arc_cap[entering] - arc_flow[entering];
    while (u != v) {
        if (basis_depth[u] > basis_depth[v]) {
            u = basis_parent[u];
        } else {
            v = basis_parent[v];
        }
        theta--;
        if (theta <= 0) return 0;
    }
    return theta;
}
"""

MILC_GAUGE = """\
// Gauge-fixing iteration (dead: not part of the measured sweep) and a
// plaquette statistics pass (cold: once per run).
double plaquette_history[64];
int history_len = 0;

double average_plaquette() {
    double acc = 0.0;
    int count = 0;
    for (int s = 0; s < n_sites - 1; s++) {
        su3_mat_mul(link_re, link_im, s * 9,
                    link_re, link_im, (s + 1) * 9,
                    res_re, res_im, s * 9);
        acc += site_trace(res_re, s * 9) / 3.0;
        count++;
    }
    double avg = acc / (double)(count + 1);
    if (history_len < 64) {
        plaquette_history[history_len] = avg;
        history_len++;
    }
    return avg;
}

// Dead: Coulomb gauge fixing by over-relaxation.
int gauge_fix(double tolerance, int max_iter) {
    int iter = 0;
    double delta = 1.0;
    while (delta > tolerance && iter < max_iter) {
        delta = 0.0;
        for (int s = 0; s < n_sites; s++) {
            int o = s * 9;
            double tr = link_re[o] + link_re[o + 4] + link_re[o + 8];
            double target = 3.0;
            double adj = (target - tr) * 0.1;
            link_re[o] += adj;
            link_re[o + 4] += adj;
            link_re[o + 8] += adj;
            if (fabs(adj) > delta) delta = fabs(adj);
        }
        iter++;
    }
    return iter;
}

// Dead: antihermitian projection of a site matrix.
void make_antihermitian(int site) {
    int o = site * 9;
    for (int i = 0; i < 3; i++) {
        for (int j = i; j < 3; j++) {
            double re_avg = 0.5 * (link_re[o + i * 3 + j] - link_re[o + j * 3 + i]);
            double im_avg = 0.5 * (link_im[o + i * 3 + j] + link_im[o + j * 3 + i]);
            link_re[o + i * 3 + j] = re_avg;
            link_re[o + j * 3 + i] = -re_avg;
            link_im[o + i * 3 + j] = im_avg;
            link_im[o + j * 3 + i] = im_avg;
        }
    }
}
"""

NAMD_EXCLUSIONS = """\
// Exclusion-list builder (cold: once per run) and a conjugate-gradient
// energy minimizer (dead: dynamics runs skip minimization).
int excl_from[1024];
int excl_to[1024];
int n_exclusions = 0;

int build_exclusions() {
    // exclude nearest neighbours (bonded pairs) from non-bonded forces
    n_exclusions = 0;
    for (int i = 0; i + 1 < n_atoms2 && n_exclusions < 1024; i++) {
        excl_from[n_exclusions] = i;
        excl_to[n_exclusions] = i + 1;
        n_exclusions++;
    }
    return n_exclusions;
}

int is_excluded(int i, int j) {
    for (int k = 0; k < n_exclusions; k++) {
        if (excl_from[k] == i && excl_to[k] == j) return 1;
        if (excl_from[k] == j && excl_to[k] == i) return 1;
    }
    return 0;
}

// Dead: steepest-descent minimization before dynamics.
int minimize(int max_steps, double step_size) {
    int steps_done = 0;
    for (int s = 0; s < max_steps; s++) {
        build_pairs(9.0);
        pair_forces(9.0);
        double max_force = 0.0;
        for (int i = 0; i < n_atoms2; i++) {
            double f2 = frcx[i] * frcx[i] + frcy[i] * frcy[i] + frcz[i] * frcz[i];
            if (f2 > max_force) max_force = f2;
            posx[i] += step_size * frcx[i];
            posy[i] += step_size * frcy[i];
            posz[i] += step_size * frcz[i];
            frcx[i] = 0.0; frcy[i] = 0.0; frcz[i] = 0.0;
        }
        steps_done++;
        if (max_force < 0.0001) break;
    }
    return steps_done;
}
"""

SJENG_BOOK = """\
// Opening-book probing (cold: once per game) and endgame tablebase
// scaffolding (dead).
long book_keys[64];
int book_moves[64];
int book_size = 0;

void build_book(int seed) {
    srand(seed + 99);
    book_size = 32;
    for (int i = 0; i < book_size; i++) {
        long hi = (long)rand();
        long lo = (long)rand();
        book_keys[i] = (hi << 30) ^ lo;
        book_moves[i] = rand() % 1024;
    }
}

int probe_book() {
    for (int i = 0; i < book_size; i++) {
        if (book_keys[i] == position_hash) return book_moves[i];
    }
    return -1;
}

// Dead: endgame distance-to-mate probe (no tablebase in benchmark runs).
int probe_endgame(int material) {
    if (material > 6) return -1;
    long h = position_hash;
    int dtm = 0;
    for (int i = 0; i < material; i++) {
        h = h ^ (h >> 13);
        h = h * 31;
        dtm += (int)(h & 7);
    }
    return dtm;
}

// Dead: static exchange evaluation used only by the quiescence extension.
int see(int square, int side) {
    int gain[8];
    int depth = 0;
    gain[0] = board[square & 63];
    while (depth < 7) {
        depth++;
        gain[depth] = (board[(square + depth) & 63]) - gain[depth - 1];
        if (gain[depth] < 0 && gain[depth - 1] < 0) break;
    }
    while (depth > 0) {
        depth--;
        int neg = -gain[depth + 1];
        if (neg < gain[depth]) gain[depth] = neg;
    }
    return gain[0] * side;
}
"""

LBM_BOUNDARY = """\
// Inflow/outflow boundary handling (cold: configured once) and VTK-style
// output (dead).
double inflow_velocity = 0.0;
int boundary_cells = 0;

int configure_boundaries(double u_in) {
    inflow_velocity = u_in;
    boundary_cells = 0;
    for (int y = 0; y < NY; y++) {
        // west column is inflow, east column outflow
        int w = cell(0, y);
        int e = cell(NX - 1, y);
        if (obstacle[w] == 0) boundary_cells++;
        if (obstacle[e] == 0) boundary_cells++;
    }
    return boundary_cells;
}

// Dead: Zou-He velocity boundary at the inlet (periodic used instead).
void apply_inflow() {
    for (int y = 0; y < NY; y++) {
        int c = cell(0, y);
        if (obstacle[c] == 1) continue;
        double rho = (f0[c] + f2[c] + f4[c]
                   + 2.0 * (f3[c] + f6[c] + f7[c])) / (1.0 - inflow_velocity);
        f1[c] = f3[c] + 0.666667 * rho * inflow_velocity;
        f5[c] = f7[c] + 0.166667 * rho * inflow_velocity;
        f8[c] = f6[c] + 0.166667 * rho * inflow_velocity;
    }
}

// Dead: drag/lift on the obstacle via momentum exchange.
double obstacle_drag() {
    double fx_acc = 0.0;
    int n = NX * NY;
    for (int c = 0; c < n; c++) {
        if (obstacle[c] == 1) {
            fx_acc += 2.0 * (f1[c] - f3[c] + f5[c] - f6[c] - f7[c] + f8[c]);
        }
    }
    return fx_acc;
}
"""

ASTAR_ANALYSIS = """\
// Terrain statistics (cold: once per query batch) and path smoothing
// (dead: only used by the interactive viewer).
int terrain_walkable = 0;
int terrain_rough = 0;
double terrain_open_ratio = 0.0;

int analyze_terrain() {
    terrain_walkable = 0;
    terrain_rough = 0;
    int n = GW * GH;
    for (int i = 0; i < n; i++) {
        if (terrain[i] > 0) terrain_walkable++;
        if (terrain[i] > 10) terrain_rough++;
    }
    terrain_open_ratio = (double)terrain_walkable / (double)n;
    return terrain_walkable;
}

// Dead: string-pulling smoothing of a reconstructed path.
int smooth_path(int goal, int* out_len) {
    int waypoints = 0;
    int cur = goal;
    int last_dir = -9;
    while (cur >= 0 && waypoints < GW * GH) {
        int parent = came_from[cur];
        if (parent < 0) break;
        int dir = cur - parent;
        if (dir != last_dir) {
            waypoints++;
            last_dir = dir;
        }
        cur = parent;
    }
    out_len[0] = waypoints;
    return waypoints;
}

// Dead: weighted-A* re-run for comparison studies.
int weighted_astar(int start, int goal, int weight) {
    int n = GW * GH;
    for (int i = 0; i < n; i++) { g_score[i] = INF2; status[i] = 0; }
    heap_clear();
    g_score[start] = 0;
    heap_push(start, weight * heuristic(start, goal));
    while (heap_size > 0) {
        int cur = heap_pop();
        if (cur == goal) return g_score[cur];
        if (status[cur] == 2) continue;
        status[cur] = 2;
        int cx = cur % GW;
        int cy = cur / GW;
        for (int k = 0; k < 8; k++) {
            int nx = cx + neighbor_dx[k];
            int ny = cy + neighbor_dy[k];
            if (nx < 0 || ny < 0 || nx >= GW || ny >= GH) continue;
            int nb = ny * GW + nx;
            if (terrain[nb] == 0 || status[nb] == 2) continue;
            int tentative = g_score[cur] + terrain[nb];
            if (tentative < g_score[nb]) {
                g_score[nb] = tentative;
                heap_push(nb, tentative + weight * heuristic(nb, goal));
                status[nb] = 1;
            }
        }
    }
    return -1;
}
"""
