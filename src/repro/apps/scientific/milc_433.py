"""433.milc — lattice QCD SU(3) algebra (SPEC2006 stand-in).

The dominant kernel of MILC: complex 3x3 matrix multiplication
(su3_mat_mul) and matrix-vector products over a 4-D lattice, with
real/imaginary parts in separate arrays. Long FP multiply-add chains
interrupted by many loads (1.26x upper bound in the paper).
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_SU3 = """\
// lattice of up to 256 sites, each with a 3x3 complex link matrix
double link_re[2304];   // 256 * 9
double link_im[2304];
double res_re[2304];
double res_im[2304];
double vec_re[768];     // 256 * 3
double vec_im[768];
int n_sites = 0;

// c = a * b for 3x3 complex matrices at the given base offsets.
void su3_mat_mul(double* a_re, double* a_im, int ao,
                 double* b_re, double* b_im, int bo,
                 double* c_re, double* c_im, int co) {
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) {
            double sr = 0.0;
            double si = 0.0;
            for (int k = 0; k < 3; k++) {
                double ar = a_re[ao + i * 3 + k];
                double ai = a_im[ao + i * 3 + k];
                double br = b_re[bo + k * 3 + j];
                double bi = b_im[bo + k * 3 + j];
                sr += ar * br - ai * bi;
                si += ar * bi + ai * br;
            }
            c_re[co + i * 3 + j] = sr;
            c_im[co + i * 3 + j] = si;
        }
    }
}

// w = M * v (3x3 complex times 3-vector) accumulated over sites.
void su3_mat_vec(int site) {
    int mo = site * 9;
    int vo = site * 3;
    for (int i = 0; i < 3; i++) {
        double sr = 0.0;
        double si = 0.0;
        for (int k = 0; k < 3; k++) {
            double mr = link_re[mo + i * 3 + k];
            double mi = link_im[mo + i * 3 + k];
            double vr = vec_re[vo + k];
            double vi = vec_im[vo + k];
            sr += mr * vr - mi * vi;
            si += mr * vi + mi * vr;
        }
        res_re[vo + i] = sr;
        res_im[vo + i] = si;
    }
}

double site_trace(double* m_re, int offset) {
    return m_re[offset] + m_re[offset + 4] + m_re[offset + 8];
}
"""

_MAIN = """\
void init_lattice(int n, int seed) {
    srand(seed);
    n_sites = n;
    for (int s = 0; s < n; s++) {
        for (int e = 0; e < 9; e++) {
            link_re[s * 9 + e] = 0.001 * (double)(rand() % 2000 - 1000);
            link_im[s * 9 + e] = 0.001 * (double)(rand() % 2000 - 1000);
        }
        for (int e = 0; e < 3; e++) {
            vec_re[s * 3 + e] = 0.001 * (double)(rand() % 2000 - 1000);
            vec_im[s * 3 + e] = 0.001 * (double)(rand() % 2000 - 1000);
        }
    }
}

// Dead: unitarity re-projection, disabled for this integrator.
void reunitarize(int site) {
    int o = site * 9;
    double norm = 0.000001;
    for (int e = 0; e < 3; e++) {
        norm += link_re[o + e] * link_re[o + e] + link_im[o + e] * link_im[o + e];
    }
    norm = 1.0 / sqrt(norm);
    for (int e = 0; e < 9; e++) { link_re[o + e] *= norm; link_im[o + e] *= norm; }
}

int main() {
    int n = dataset_size();
    if (n < 16) n = 16;
    if (n > 256) n = 256;
    init_lattice(n, dataset_seed());
    double action = 0.0;
    int sweeps = 6;
    for (int sw = 0; sw < sweeps; sw++) {
        // plaquette-like pass: multiply neighbouring links
        for (int s = 0; s < n - 1; s++) {
            su3_mat_mul(link_re, link_im, s * 9,
                        link_re, link_im, (s + 1) * 9,
                        res_re, res_im, s * 9);
            action += site_trace(res_re, s * 9);
        }
        // fermion-like pass: matrix-vector at every site
        for (int s = 0; s < n; s++) {
            su3_mat_vec(s);
        }
        if (sw < -1) reunitarize(sw);
    }
    print_f64(action);
    print_f64(average_plaquette());
    if (n < 0) {
        print_i32(gauge_fix(0.001, 20));
        make_antihermitian(0);
    }
    double vnorm = 0.0;
    for (int e = 0; e < n * 3; e++) {
        vnorm += res_re[e] * res_re[e] + res_im[e] * res_im[e];
    }
    print_f64(vnorm);
    return 0;
}
"""

APP = AppSpec(
    name="433.milc",
    domain="scientific",
    description="Lattice QCD SU(3) complex matrix algebra (SPEC2006 milc)",
    sources=(
        ("su3.c", _SU3),
        ("gauge.c", EXTRAS.MILC_GAUGE),
        ("lattice.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=130, seed=79),
        DatasetSpec("small", size=40, seed=83),
        DatasetSpec("large", size=200, seed=89),
    ),
)
