"""Scientific benchmark applications (SPEC2000/2006 stand-ins).

The paper's scientific domain: ten SPEC2000/2006 stand-ins analysed
alongside the embedded suite in Tables I and II.
"""

from repro.apps.scientific.gzip_164 import APP as GZIP
from repro.apps.scientific.art_179 import APP as ART
from repro.apps.scientific.equake_183 import APP as EQUAKE
from repro.apps.scientific.ammp_188 import APP as AMMP
from repro.apps.scientific.mcf_429 import APP as MCF
from repro.apps.scientific.milc_433 import APP as MILC
from repro.apps.scientific.namd_444 import APP as NAMD
from repro.apps.scientific.sjeng_458 import APP as SJENG
from repro.apps.scientific.lbm_470 import APP as LBM
from repro.apps.scientific.astar_473 import APP as ASTAR

SCIENTIFIC = [GZIP, ART, EQUAKE, AMMP, MCF, MILC, NAMD, SJENG, LBM, ASTAR]

__all__ = [
    "GZIP",
    "ART",
    "EQUAKE",
    "AMMP",
    "MCF",
    "MILC",
    "NAMD",
    "SJENG",
    "LBM",
    "ASTAR",
    "SCIENTIFIC",
]
