"""164.gzip — LZ77 compression with hash chains (SPEC2000 stand-in).

The deflate-style match finder: a rolling 3-byte hash indexes chains of
previous positions; the inner loop walks chains comparing candidate
matches. Dominated by integer compares and memory accesses, so custom
instructions find little contiguous arithmetic (paper: 1.17x upper bound).
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_DEFLATE = """\
int window[16384];     // input buffer (one byte per int)
int head[4096];        // hash -> most recent position
int prev[16384];       // chained previous positions
int lit_count[256];    // literal frequency (for the entropy estimate)

int MIN_MATCH = 3;
int MAX_MATCH = 64;
int MAX_CHAIN = 32;

int hash3(int pos) {
    int h = window[pos] * 2654435761 + window[pos + 1] * 40503 + window[pos + 2];
    return (h >> 8) & 4095;
}

int match_length(int a, int b, int limit) {
    int len = 0;
    while (len < MAX_MATCH && a + len < limit && window[a + len] == window[b + len]) {
        len++;
    }
    return len;
}

int find_match(int pos, int limit, int* best_out) {
    int h = hash3(pos);
    int cand = head[h];
    int best_len = 0;
    int best_pos = -1;
    int chain = 0;
    while (cand >= 0 && chain < MAX_CHAIN) {
        int len = match_length(pos, cand, limit);
        if (len > best_len) {
            best_len = len;
            best_pos = cand;
            if (len >= MAX_MATCH) break;
        }
        cand = prev[cand];
        chain++;
    }
    // insert current position into the chain
    prev[pos] = head[h];
    head[h] = pos;
    best_out[0] = best_len;
    best_out[1] = best_pos;
    return best_len;
}

void reset_tables() {
    for (int i = 0; i < 4096; i++) head[i] = -1;
    for (int i = 0; i < 16384; i++) prev[i] = -1;
    for (int i = 0; i < 256; i++) lit_count[i] = 0;
}
"""

_MAIN = """\
long emitted_bits = 0;
int n_literals = 0;
int n_matches = 0;

// Cheap log2 approximation for the entropy estimate (integer).
int ilog2(int v) {
    int r = 0;
    while (v > 1) { v = v >> 1; r++; }
    return r;
}

void emit_literal(int c) {
    lit_count[c & 255]++;
    n_literals++;
    emitted_bits += 8;
}

void emit_match(int len, int dist) {
    n_matches++;
    emitted_bits += (long)(ilog2(len) + ilog2(dist) + 7);
}

void make_input(int n, int seed) {
    srand(seed);
    // compressible text: repeated phrases + noise
    int phrase_len = 17;
    for (int i = 0; i < n; i++) {
        int r = rand() % 100;
        if (r < 70 && i >= phrase_len) {
            window[i] = window[i - phrase_len];
        } else {
            window[i] = 32 + rand() % 96;
        }
    }
}

// Dead: would verify a round-trip decode in debug builds.
int verify_decode(int n) {
    long check = 0;
    for (int i = 0; i < n; i++) check += (long)window[i];
    return (int)(check & 65535);
}

int deflate_buffer(int n) {
    int best[2];
    int pos = 0;
    while (pos < n - MIN_MATCH) {
        int len = find_match(pos, n, best);
        if (len >= MIN_MATCH) {
            emit_match(len, pos - best[1]);
            // insert skipped positions into the hash chains
            int stop = pos + len;
            pos++;
            while (pos < stop && pos < n - MIN_MATCH) {
                int h = hash3(pos);
                prev[pos] = head[h];
                head[h] = pos;
                pos++;
            }
            pos = stop;
        } else {
            emit_literal(window[pos]);
            pos++;
        }
    }
    while (pos < n) { emit_literal(window[pos]); pos++; }
    return n_matches;
}

int main() {
    int n = dataset_size();
    int seed = dataset_seed();
    if (n < 256) n = 256;
    if (n > 16384) n = 16384;
    reset_tables();
    make_input(n, seed);
    deflate_buffer(n);
    huffman_assign_lengths();
    if (n < 0) {
        print_i32(verify_decode(n));
        print_i32(huffman_validate());
        print_i32(decode_first_symbol(n));
    }
    long in_bits = (long)n * 8;
    print_i64(emitted_bits);
    print_i32(n_literals);
    print_i32(n_matches);
    print_i64(in_bits * 100 / emitted_bits);  // compression ratio x100
    return 0;
}
"""

APP = AppSpec(
    name="164.gzip",
    domain="scientific",
    description="LZ77/deflate match finder with hash chains (SPEC2000 gzip)",
    sources=(
        ("deflate.c", _DEFLATE),
        ("huffman.c", EXTRAS.GZIP_HUFFMAN),
        ("main.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=6000, seed=41),
        DatasetSpec("small", size=2500, seed=43),
        DatasetSpec("large", size=9000, seed=47),
    ),
)
