"""473.astar — A* pathfinding (SPEC2006 stand-in).

Grid pathfinding with an array-backed binary heap for the open list and an
octile-distance heuristic. Integer, branchy, memory-bound — the second
application where the paper's VM beat native (0.98), with a 1.21x ASIP
upper bound.
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_GRID = """\
int terrain[16384];    // up to 128x128, cost per cell (0 = wall)
int g_score[16384];
int status[16384];     // 0 unknown, 1 open, 2 closed
int came_from[16384];
int GW = 0;
int GH = 0;
int INF2 = 1000000000;

void make_terrain(int w, int h, int seed) {
    srand(seed);
    GW = w; GH = h;
    for (int i = 0; i < w * h; i++) {
        int r = rand() % 100;
        int cost = 10;
        if (r < 18) cost = 0;          // wall
        else if (r < 40) cost = 24;    // rough
        terrain[i] = cost;
    }
    terrain[0] = 10;
    terrain[w * h - 1] = 10;
}

int heuristic(int a, int b) {
    int ax = a % GW; int ay = a / GW;
    int bx = b % GW; int by = b / GW;
    int dx = ax - bx; if (dx < 0) dx = -dx;
    int dy = ay - by; if (dy < 0) dy = -dy;
    int lo = dx; if (dy < dx) lo = dy;
    return 10 * (dx + dy) - 6 * lo;   // octile-ish
}
"""

_HEAP = """\
int heap_node[16384];
int heap_key[16384];
int heap_size = 0;

void heap_clear() { heap_size = 0; }

void heap_push(int node, int key) {
    int i = heap_size;
    heap_size++;
    heap_node[i] = node;
    heap_key[i] = key;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (heap_key[parent] <= heap_key[i]) break;
        int tn = heap_node[i]; heap_node[i] = heap_node[parent]; heap_node[parent] = tn;
        int tk = heap_key[i]; heap_key[i] = heap_key[parent]; heap_key[parent] = tk;
        i = parent;
    }
}

int heap_pop() {
    int top = heap_node[0];
    heap_size--;
    heap_node[0] = heap_node[heap_size];
    heap_key[0] = heap_key[heap_size];
    int i = 0;
    while (1) {
        int l = 2 * i + 1;
        int r = 2 * i + 2;
        int smallest = i;
        if (l < heap_size && heap_key[l] < heap_key[smallest]) smallest = l;
        if (r < heap_size && heap_key[r] < heap_key[smallest]) smallest = r;
        if (smallest == i) break;
        int tn = heap_node[i]; heap_node[i] = heap_node[smallest]; heap_node[smallest] = tn;
        int tk = heap_key[i]; heap_key[i] = heap_key[smallest]; heap_key[smallest] = tk;
        i = smallest;
    }
    return top;
}
"""

_SEARCH = """\
int neighbor_dx[8] = {1, -1, 0, 0, 1, 1, -1, -1};
int neighbor_dy[8] = {0, 0, 1, -1, 1, -1, 1, -1};
int expanded = 0;

int astar(int start, int goal) {
    int n = GW * GH;
    for (int i = 0; i < n; i++) { g_score[i] = INF2; status[i] = 0; came_from[i] = -1; }
    heap_clear();
    g_score[start] = 0;
    heap_push(start, heuristic(start, goal));
    status[start] = 1;
    while (heap_size > 0) {
        int cur = heap_pop();
        if (status[cur] == 2) continue;
        status[cur] = 2;
        expanded++;
        if (cur == goal) return g_score[cur];
        int cx = cur % GW;
        int cy = cur / GW;
        for (int k = 0; k < 8; k++) {
            int nx = cx + neighbor_dx[k];
            int ny = cy + neighbor_dy[k];
            if (nx < 0 || ny < 0 || nx >= GW || ny >= GH) continue;
            int nb = ny * GW + nx;
            if (terrain[nb] == 0 || status[nb] == 2) continue;
            int step_cost = terrain[nb];
            if (k >= 4) step_cost = step_cost * 14 / 10;  // diagonal
            int tentative = g_score[cur] + step_cost;
            if (tentative < g_score[nb]) {
                g_score[nb] = tentative;
                came_from[nb] = cur;
                heap_push(nb, tentative + heuristic(nb, goal));
                status[nb] = 1;
            }
        }
    }
    return -1;
}

// Dead: path reconstruction printout (only used interactively).
int print_path(int goal) {
    int length = 0;
    int cur = goal;
    while (cur >= 0 && length < GW * GH) {
        length++;
        cur = came_from[cur];
    }
    print_i32(length);
    return length;
}

int main() {
    int s = dataset_size();
    if (s < 16) s = 16;
    if (s > 128) s = 128;
    int n_queries = 6;
    long total = 0;
    int found = 0;
    for (int q = 0; q < n_queries; q++) {
        make_terrain(s, s, dataset_seed() + q);
        analyze_terrain();
        int cost = astar(0, s * s - 1);
        if (cost >= 0) { total += (long)cost; found++; }
        if (cost < -1) {
            print_path(s * s - 1);
            int wp[1];
            print_i32(smooth_path(s * s - 1, wp));
            print_i32(weighted_astar(0, s * s - 1, 2));
        }
    }
    print_i32(found);
    print_i64(total);
    print_i32(expanded);
    return 0;
}
"""

APP = AppSpec(
    name="473.astar",
    domain="scientific",
    description="A* grid pathfinding with a binary-heap open list",
    sources=(
        ("grid.c", _GRID),
        ("heap.c", _HEAP),
        ("analysis.c", EXTRAS.ASTAR_ANALYSIS),
        ("search.c", _SEARCH),
    ),
    datasets=(
        DatasetSpec("train", size=32, seed=139),
        DatasetSpec("small", size=20, seed=149),
        DatasetSpec("large", size=56, seed=151),
    ),
)
