"""179.art — Adaptive Resonance Theory 2 neural network (SPEC2000 stand-in).

Image recognition by neural resonance: an F1 feature layer feeds an F2
category layer through bottom-up weights; a winner-take-all search and a
vigilance test drive weight adaptation. FP-heavy with a concentrated match
loop — one of the two SPEC applications the paper's VM ran *faster* than
native (ratio 0.94), with a 1.46x upper-bound ASIP ratio.
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_NETWORK = """\
double f1_act[64];        // F1 layer activations (feature vector)
double bu_weights[4096];  // bottom-up weights: 64 categories x 64 features
double td_weights[4096];  // top-down weights
double category_act[64];
int committed[64];

int N_FEATURES = 64;
int N_CATEGORIES = 64;

void init_weights(int seed) {
    srand(seed);
    for (int j = 0; j < N_CATEGORIES; j++) {
        committed[j] = 0;
        for (int i = 0; i < N_FEATURES; i++) {
            bu_weights[j * N_FEATURES + i] = 1.0 / (1.0 + (double)N_FEATURES);
            td_weights[j * N_FEATURES + i] = 1.0;
        }
    }
}

// Bottom-up activation of every category (the hot loop).
void compute_activations() {
    for (int j = 0; j < N_CATEGORIES; j++) {
        double sum = 0.0;
        int base = j * N_FEATURES;
        for (int i = 0; i < N_FEATURES; i++) {
            sum += bu_weights[base + i] * f1_act[i];
        }
        category_act[j] = sum;
    }
}

int find_winner() {
    int best = 0;
    double best_act = category_act[0];
    for (int j = 1; j < N_CATEGORIES; j++) {
        if (category_act[j] > best_act) {
            best_act = category_act[j];
            best = j;
        }
    }
    return best;
}

double vigilance_match(int winner) {
    double num = 0.0;
    double den = 0.000001;
    int base = winner * N_FEATURES;
    for (int i = 0; i < N_FEATURES; i++) {
        double m = td_weights[base + i] * f1_act[i];
        double lo = m;
        if (f1_act[i] < m) lo = f1_act[i];
        num += lo;
        den += f1_act[i];
    }
    return num / den;
}

void adapt(int winner, double rate) {
    int base = winner * N_FEATURES;
    for (int i = 0; i < N_FEATURES; i++) {
        double m = td_weights[base + i] * f1_act[i];
        double lo = m;
        if (f1_act[i] < m) lo = f1_act[i];
        td_weights[base + i] = rate * lo + (1.0 - rate) * td_weights[base + i];
        bu_weights[base + i] = td_weights[base + i]
            / (0.5 + td_weights[base + i] * (double)N_FEATURES * 0.01);
    }
    committed[winner] = 1;
}
"""

_MAIN = """\
double input_img[64];

void make_pattern(int k, int seed) {
    srand(seed * 1000 + k * 31);
    int kind = k % 5;
    for (int i = 0; i < 64; i++) {
        double base = 0.0;
        if ((i / 8 + i % 8) % 5 == kind) base = 0.9;
        input_img[i] = base + 0.02 * (double)(rand() % 100) * 0.01;
    }
}

void normalize_input() {
    double norm = 0.000001;
    for (int i = 0; i < 64; i++) norm += input_img[i] * input_img[i];
    norm = sqrt(norm);
    for (int i = 0; i < 64; i++) f1_act[i] = input_img[i] / norm;
}

// Dead: weight matrix dump for debugging.
void dump_weights() {
    for (int j = 0; j < 8; j++) print_f64(bu_weights[j]);
}

int scan_image(int n_patterns, double vigilance) {
    int recognized = 0;
    for (int k = 0; k < n_patterns; k++) {
        make_pattern(k, dataset_seed());
        normalize_input();
        compute_activations();
        // search with reset: try winners until vigilance passes
        int tries = 0;
        while (tries < 8) {
            int winner = find_winner();
            double match = vigilance_match(winner);
            if (match >= vigilance) {
                adapt(winner, 0.6);
                if (committed[winner] == 1) recognized++;
                break;
            }
            category_act[winner] = -1.0;  // reset this category
            tries++;
        }
    }
    return recognized;
}

int main() {
    int n = dataset_size();
    if (n < 8) n = 8;
    if (n > 400) n = 400;
    init_weights(dataset_seed());
    int hits = scan_image(n, 0.7);
    make_pattern(0, dataset_seed());
    compute_pattern_stats();
    if (n < 0) {
        dump_weights();
        print_i32(train_epoch(0));
        decay_weights(0.01);
    }
    print_i32(hits);
    double checksum = 0.0;
    for (int j = 0; j < 64; j++) checksum += category_act[j];
    print_f64(checksum);
    return 0;
}
"""

APP = AppSpec(
    name="179.art",
    domain="scientific",
    description="ART-2 neural network image recognition (SPEC2000 art)",
    sources=(
        ("network.c", _NETWORK),
        ("training.c", EXTRAS.ART_TRAINING),
        ("scan.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=24, seed=17),
        DatasetSpec("small", size=10, seed=19),
        DatasetSpec("large", size=40, seed=23),
    ),
)
