"""188.ammp — molecular dynamics (SPEC2000 stand-in).

Lennard-Jones + Coulomb pair forces with a cutoff inside an O(N^2) loop,
plus velocity-Verlet integration. The non-bonded force expression is a
large FP dataflow tree, giving the best upper-bound ASIP ratio among the
paper's scientific applications (3.44x).
"""

from repro.apps.base import AppSpec, DatasetSpec
from repro.apps.scientific import extras as EXTRAS

_FORCES = """\
double px[256]; double py[256]; double pz[256];
double vx[256]; double vy[256]; double vz[256];
double fx[256]; double fy[256]; double fz[256];
double charge[256];
int n_atoms = 0;
double potential = 0.0;

void clear_forces() {
    for (int i = 0; i < n_atoms; i++) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
}

// Non-bonded pair forces (LJ 6-12 + Coulomb) with cutoff.
void nonbond_forces(double cutoff2) {
    potential = 0.0;
    for (int i = 0; i < n_atoms; i++) {
        for (int j = i + 1; j < n_atoms; j++) {
            double dx = px[i] - px[j];
            double dy = py[i] - py[j];
            double dz = pz[i] - pz[j];
            double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutoff2) {
                double inv_r2 = 1.0 / (r2 + 0.0001);
                double inv_r6 = inv_r2 * inv_r2 * inv_r2;
                double lj = inv_r6 * (inv_r6 - 0.5);
                double qq = charge[i] * charge[j] * sqrt(inv_r2);
                double s = (12.0 * lj + qq) * inv_r2;
                double sx = s * dx;
                double sy = s * dy;
                double sz = s * dz;
                fx[i] += sx; fy[i] += sy; fz[i] += sz;
                fx[j] -= sx; fy[j] -= sy; fz[j] -= sz;
                potential += lj + qq;
            }
        }
    }
}

void integrate(double dt) {
    for (int i = 0; i < n_atoms; i++) {
        vx[i] = (vx[i] + fx[i] * dt) * 0.999;
        vy[i] = (vy[i] + fy[i] * dt) * 0.999;
        vz[i] = (vz[i] + fz[i] * dt) * 0.999;
        px[i] += vx[i] * dt;
        py[i] += vy[i] * dt;
        pz[i] += vz[i] * dt;
    }
}

double kinetic_energy() {
    double ke = 0.0;
    for (int i = 0; i < n_atoms; i++) {
        ke += vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
    }
    return 0.5 * ke;
}
"""

_SETUP = """\
void init_atoms(int n, int seed) {
    srand(seed);
    n_atoms = n;
    int side = 1;
    while (side * side * side < n) side++;
    for (int i = 0; i < n; i++) {
        int gx = i % side;
        int gy = (i / side) % side;
        int gz = i / (side * side);
        px[i] = (double)gx * 1.2 + 0.001 * (double)(rand() % 100);
        py[i] = (double)gy * 1.2 + 0.001 * (double)(rand() % 100);
        pz[i] = (double)gz * 1.2 + 0.001 * (double)(rand() % 100);
        vx[i] = 0.0; vy[i] = 0.0; vz[i] = 0.0;
        charge[i] = 0.1;
        if (i % 2 == 0) charge[i] = -0.1;
    }
}

// Dead: trajectory output (file I/O disabled in the benchmark harness).
void write_frame(int step) {
    print_i32(step);
    for (int i = 0; i < 4; i++) print_f64(px[i]);
}

// Dead: alternative O(N) cell-list path, not selected for these sizes.
void cell_list_forces(double cutoff2) {
    // falls back to the quadratic kernel on tiny systems
    nonbond_forces(cutoff2);
}

int main() {
    int n = dataset_size();
    if (n < 16) n = 16;
    if (n > 256) n = 256;
    init_atoms(n, dataset_seed());
    build_bonds();
    int steps = 18;
    double dt = 0.004;
    double sum_pe = 0.0;
    for (int s = 0; s < steps; s++) {
        clear_forces();
        nonbond_forces(6.25);
        integrate(dt);
        sum_pe += potential;
        if (s < -1) write_frame(s);
    }
    print_f64(sum_pe / (double)steps + bond_energy());
    print_f64(kinetic_energy());
    if (n < 0) print_i32(shake_constraints(0.001));
    return 0;
}
"""

APP = AppSpec(
    name="188.ammp",
    domain="scientific",
    description="Molecular dynamics: LJ+Coulomb pair forces, velocity Verlet",
    sources=(
        ("forces.c", _FORCES),
        ("bonds.c", EXTRAS.AMMP_BONDS),
        ("setup.c", _SETUP),
    ),
    datasets=(
        DatasetSpec("train", size=64, seed=53),
        DatasetSpec("small", size=32, seed=59),
        DatasetSpec("large", size=96, seed=61),
    ),
)
