"""Application registry: the paper's benchmark table, in order."""

from __future__ import annotations

from repro.apps.base import AppSpec


def _load_scientific() -> list[AppSpec]:
    from repro.apps.scientific import SCIENTIFIC

    return list(SCIENTIFIC)


def _load_embedded() -> list[AppSpec]:
    from repro.apps.embedded import EMBEDDED

    return list(EMBEDDED)


SCIENTIFIC_APPS: list[AppSpec] = _load_scientific()
EMBEDDED_APPS: list[AppSpec] = _load_embedded()
ALL_APPS: list[AppSpec] = SCIENTIFIC_APPS + EMBEDDED_APPS

_BY_NAME = {app.name: app for app in ALL_APPS}


def get_app(name: str) -> AppSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
