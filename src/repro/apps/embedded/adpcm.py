"""adpcm — IMA ADPCM speech codec (MiBench rawcaudio/rawdaudio stand-in).

Integer-only encode/decode of a synthetic speech-like waveform. The codec
inner loop interleaves table lookups (hardware-infeasible loads) with short
arithmetic clusters, which keeps custom-instruction candidates small — the
paper reports only a 1.21x ASIP ratio for adpcm.
"""

from repro.apps.base import AppSpec, DatasetSpec

_CODEC = """\
// IMA ADPCM step tables
int step_table[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
};
int index_table[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8
};

int enc_predicted = 0;
int enc_index = 0;
int dec_predicted = 0;
int dec_index = 0;

int clamp(int v, int lo, int hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

int adpcm_encode_sample(int sample) {
    int step = step_table[enc_index];
    int diff = sample - enc_predicted;
    int code = 0;
    if (diff < 0) { code = 8; diff = -diff; }
    // 3-bit magnitude quantization against step, step/2, step/4
    int delta = step >> 3;
    if (diff >= step) { code = code | 4; diff = diff - step; delta = delta + step; }
    step = step >> 1;
    if (diff >= step) { code = code | 2; diff = diff - step; delta = delta + step; }
    step = step >> 1;
    if (diff >= step) { code = code | 1; delta = delta + step; }
    if ((code & 8) != 0) enc_predicted = enc_predicted - delta;
    else enc_predicted = enc_predicted + delta;
    enc_predicted = clamp(enc_predicted, -32768, 32767);
    enc_index = clamp(enc_index + index_table[code], 0, 88);
    return code;
}

int adpcm_decode_sample(int code) {
    int step = step_table[dec_index];
    int delta = step >> 3;
    if ((code & 4) != 0) delta = delta + step;
    if ((code & 2) != 0) delta = delta + (step >> 1);
    if ((code & 1) != 0) delta = delta + (step >> 2);
    if ((code & 8) != 0) dec_predicted = dec_predicted - delta;
    else dec_predicted = dec_predicted + delta;
    dec_predicted = clamp(dec_predicted, -32768, 32767);
    dec_index = clamp(dec_index + index_table[code], 0, 88);
    return dec_predicted;
}

void codec_reset() {
    enc_predicted = 0; enc_index = 0;
    dec_predicted = 0; dec_index = 0;
}
"""

_MAIN = """\
int waveform_state = 0;

// Synthetic speech-ish signal: sum of slow and fast sawtooth + noise.
int next_sample(int t) {
    int slow = (t % 400) * 100 - 20000;
    int fast = (t % 23) * 900 - 10000;
    int noise = (rand() % 1201) - 600;
    int s = slow / 2 + fast / 3 + noise;
    if (s > 32767) s = 32767;
    if (s < -32768) s = -32768;
    return s;
}

// Dead in every profiled run: only reached for invalid input sizes.
int report_error(int code) {
    print_i32(-1);
    print_i32(code);
    return -1;
}

int main() {
    int n = dataset_size();
    int seed = dataset_seed();
    if (n <= 0) return report_error(1);
    if (n > 60000) n = 60000;
    srand(seed);
    codec_reset();
    long err_acc = 0;
    int max_err = 0;
    for (int t = 0; t < n; t++) {
        int s = next_sample(t);
        int code = adpcm_encode_sample(s);
        int r = adpcm_decode_sample(code);
        int e = s - r;
        if (e < 0) e = -e;
        err_acc += (long)e;
        if (e > max_err) max_err = e;
    }
    print_i64(err_acc / (long)n);
    print_i32(max_err);
    return 0;
}
"""

APP = AppSpec(
    name="adpcm",
    domain="embedded",
    description="IMA ADPCM codec over a synthetic speech signal (MiBench)",
    sources=(
        ("codec.c", _CODEC),
        ("main.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=6000, seed=7),
        DatasetSpec("small", size=3000, seed=11),
        DatasetSpec("large", size=10000, seed=13),
    ),
)
