"""whetstone — the classic synthetic FP benchmark.

Faithful to the structure of the original: numbered modules exercising
simple FP identifiers (N1), array elements (N2), conditional jumps (N5),
integer arithmetic (N6) and trigonometric/transcendental functions (N7/N8).
Modules N1/N2 are long chains of dependent FP adds/subtracts/multiplies in
single blocks — on an FPU-less PowerPC-405 each runs hundreds of soft-float
cycles that a fabric datapath collapses to a handful, which is why the
paper measures its largest upper-bound ASIP ratio here (17.78x).
"""

from repro.apps.base import AppSpec, DatasetSpec

_WHETSTONE = """\
double e1[4];
double t = 0.499975;
double t1 = 0.50025;
double t2 = 2.0;

double x1v; double x2v; double x3v; double x4v;
double xx; double yy; double zz;
int j6; int k6; int l6;

// Module 1: simple identifiers. The four locals stay in SSA registers, so
// the loop body is one long feed-forward FP dataflow region — the shape
// that gives whetstone the paper's largest custom-instruction gains.
void module1(int n, double tt) {
    double a = 1.0;
    double b = -1.0;
    double c = -1.0;
    double d = -1.0;
    double u = 0.031 * tt;
    double w = 0.017 * tt;
    double damp = 0.96;
    for (int i = 0; i < n; i++) {
        a = ((a + b + c - d) * tt + (b - c) * u + (c + d) * w - (a - d) * u) * damp;
        b = ((a + b - c + d) * tt - (a + c) * w + (b + d) * u + (a - c) * w) * damp;
        c = ((a - b + c + d) * tt + (a - d) * u - (b + d) * w + (a + b) * u) * damp;
        d = ((-a + b + c + d) * tt - (b - c) * u + (a + c) * w - (c - d) * u) * damp;
    }
    x1v = a; x2v = b; x3v = c; x4v = d;
}

// Module 2: array elements.
void module2(int n) {
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (int i = 0; i < n; i++) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }
}

// Module 5: conditional jumps.
void module5(int n) {
    j6 = 1;
    for (int i = 0; i < n; i++) {
        if (j6 == 1) j6 = 2; else j6 = 3;
        if (j6 > 2) j6 = 0; else j6 = 1;
        if (j6 < 1) j6 = 1; else j6 = 0;
    }
}

// Module 6: integer arithmetic.
void module6(int n) {
    j6 = 1; k6 = 2; l6 = 3;
    for (int i = 0; i < n; i++) {
        j6 = j6 * (k6 - j6) * (l6 - k6);
        k6 = l6 * k6 - (l6 - j6) * k6;
        l6 = (l6 - k6) * (k6 + j6);
        e1[l6 - 2 & 3] = (double)(j6 + k6 + l6);
        e1[k6 - 2 & 3] = (double)(j6 * k6 * l6);
    }
}

// Module 7: trigonometric functions.
void module7(int n) {
    xx = 0.5; yy = 0.5;
    for (int i = 0; i < n; i++) {
        xx = t * atan(t2 * sin(xx) * cos(xx) / (cos(xx + yy) + cos(xx - yy) - 1.0));
        yy = t * atan(t2 * sin(yy) * cos(yy) / (cos(xx + yy) + cos(xx - yy) - 1.0));
    }
}

// Module 8: transcendental functions.
void module8(int n) {
    xx = 0.75;
    for (int i = 0; i < n; i++) {
        xx = sqrt(exp(log(xx) / t1));
    }
}

// Dead: self-check executed only when the loop count is non-positive.
int self_check() {
    if (x1v != x1v) return 1;
    if (e1[0] != e1[0]) return 2;
    return 0;
}

int main() {
    int scale = dataset_size();
    if (scale < 1) { print_i32(self_check()); return 1; }
    if (scale > 64) scale = 64;
    srand(dataset_seed());
    int n1 = scale * 380;
    int n2 = scale * 300;
    int n5 = scale * 40;
    int n6 = scale * 60;
    int n7 = scale * 1;
    int n8 = scale * 2;
    module1(n1, t);
    module2(n2);
    module5(n5);
    module6(n6);
    module7(n7);
    module8(n8);
    print_f64(x1v + x2v + x3v + x4v);
    print_f64(e1[0] + e1[1] + e1[2] + e1[3]);
    print_i32(j6 + k6 + l6);
    print_f64(xx + yy);
    return 0;
}
"""

APP = AppSpec(
    name="whetstone",
    domain="embedded",
    description="Whetstone synthetic FP benchmark (classic modules)",
    sources=(("whetstone.c", _WHETSTONE),),
    datasets=(
        DatasetSpec("train", size=24, seed=1),
        DatasetSpec("small", size=8, seed=2),
        DatasetSpec("large", size=48, seed=3),
    ),
)
