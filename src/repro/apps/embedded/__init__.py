"""Embedded benchmark applications (MiBench / SciMark2 stand-ins).

The paper's embedded domain: adpcm, fft, sor and whetstone — the four
applications Table IV's break-even extrapolation averages over.
"""

from repro.apps.embedded.adpcm import APP as ADPCM
from repro.apps.embedded.fft import APP as FFT
from repro.apps.embedded.sor import APP as SOR
from repro.apps.embedded.whetstone import APP as WHETSTONE

EMBEDDED = [ADPCM, FFT, SOR, WHETSTONE]

__all__ = ["ADPCM", "FFT", "SOR", "WHETSTONE", "EMBEDDED"]
