"""sor — Jacobi/SOR relaxation (SciMark2 stand-in).

Successive over-relaxation sweep over a 2-D grid. The five-point stencil
update is one fat floating-point block executed n^2 times per sweep — the
smallest, most kernel-concentrated application in the suite (paper: 74 LOC,
19 blocks, 6.93x upper-bound ASIP ratio from just 2 candidates).
"""

from repro.apps.base import AppSpec, DatasetSpec

_SOR = """\
double grid[4096];  // up to 64 x 64

int idx(int i, int j, int m) { return i * m + j; }

void init_grid(int m, int seed) {
    srand(seed);
    for (int i = 0; i < m; i++) {
        for (int j = 0; j < m; j++) {
            grid[idx(i, j, m)] = 0.001 * (double)(rand() % 1000);
        }
    }
}

double sor_sweep(int m, double omega) {
    double of4 = omega * 0.25;
    double om1 = 1.0 - omega;
    double change = 0.0;
    for (int i = 1; i < m - 1; i++) {
        for (int j = 1; j < m - 1; j++) {
            int c = idx(i, j, m);
            double v = of4 * (grid[c - m] + grid[c + m] + grid[c - 1] + grid[c + 1])
                     + om1 * grid[c];
            double d = v - grid[c];
            change += d * d;
            grid[c] = v;
        }
    }
    return change;
}

// Never executed in profiled runs (residual check disabled by default).
double residual_norm(int m) {
    double acc = 0.0;
    for (int i = 1; i < m - 1; i++)
        for (int j = 1; j < m - 1; j++) {
            int c = idx(i, j, m);
            double r = grid[c] - 0.25 * (grid[c - m] + grid[c + m] + grid[c - 1] + grid[c + 1]);
            acc += r * r;
        }
    return sqrt(acc);
}

int main() {
    int m = dataset_size();
    if (m < 8) m = 8;
    if (m > 64) m = 64;
    init_grid(m, dataset_seed());
    double total = 0.0;
    for (int sweep = 0; sweep < 40; sweep++) {
        total += sor_sweep(m, 1.25);
    }
    if (m < 0) print_f64(residual_norm(m));
    print_f64(total);
    return 0;
}
"""

APP = AppSpec(
    name="sor",
    domain="embedded",
    description="Successive over-relaxation 5-point stencil (SciMark2)",
    sources=(("sor.c", _SOR),),
    datasets=(
        DatasetSpec("train", size=28, seed=3),
        DatasetSpec("small", size=12, seed=5),
        DatasetSpec("large", size=48, seed=7),
    ),
)
