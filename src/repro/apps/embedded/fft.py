"""fft — radix-2 complex FFT (SciMark2 stand-in).

Iterative Cooley-Tukey transform plus inverse; the butterfly body is a
dense cluster of FP multiply/add/subtract operations in one basic block —
exactly the shape that maps well onto a Woolcano datapath (paper: 2.94x
upper-bound ASIP ratio, 2.40x after pruning, 14 candidates).
"""

from repro.apps.base import AppSpec, DatasetSpec

_FFT = """\
double re[1024];
double im[1024];

// Bit-reversal permutation.
void bit_reverse(int n) {
    int j = 0;
    for (int i = 0; i < n - 1; i++) {
        if (i < j) {
            double tr = re[i]; re[i] = re[j]; re[j] = tr;
            double ti = im[i]; im[i] = im[j]; im[j] = ti;
        }
        int k = n >> 1;
        while (k <= j) { j = j - k; k = k >> 1; }
        j = j + k;
    }
}

// In-place radix-2 FFT; dir = 1 forward, -1 inverse (unnormalized).
void fft(int n, int dir) {
    bit_reverse(n);
    for (int len = 2; len <= n; len = len << 1) {
        double ang = 6.283185307179586 / (double)len * (double)dir;
        double wr = cos(ang);
        double wi = sin(ang);
        for (int i = 0; i < n; i += len) {
            double cur_r = 1.0;
            double cur_i = 0.0;
            int half = len >> 1;
            for (int k = 0; k < half; k++) {
                int a = i + k;
                int b = i + k + half;
                double xr = re[b] * cur_r - im[b] * cur_i;
                double xi = re[b] * cur_i + im[b] * cur_r;
                double ur = re[a];
                double ui = im[a];
                re[a] = ur + xr;
                im[a] = ui + xi;
                re[b] = ur - xr;
                im[b] = ui - xi;
                double nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
            }
        }
    }
}

void scale(int n) {
    double inv = 1.0 / (double)n;
    for (int i = 0; i < n; i++) { re[i] *= inv; im[i] *= inv; }
}
"""

_MAIN = """\
double orig_re[1024];

void make_signal(int n, int seed) {
    srand(seed);
    for (int i = 0; i < n; i++) {
        double t = (double)i / (double)n;
        double v = sin(6.283185307179586 * 3.0 * t)
                 + 0.5 * sin(6.283185307179586 * 17.0 * t)
                 + 0.001 * (double)(rand() % 1000);
        re[i] = v;
        im[i] = 0.0;
        orig_re[i] = v;
    }
}

// Dead code under every dataset: diagnostic spectrum dump.
void dump_spectrum(int n) {
    for (int i = 0; i < n; i++) {
        print_f64(re[i] * re[i] + im[i] * im[i]);
    }
}

int main() {
    int n = dataset_size();
    int seed = dataset_seed();
    if (n < 16) n = 16;
    if (n > 1024) n = 1024;
    // round down to a power of two
    int p = 16;
    while (p * 2 <= n) p = p * 2;
    n = p;
    double rms = 0.0;
    for (int rep = 0; rep < 3; rep++) {
        make_signal(n, seed + rep);
        fft(n, 1);
        if (n < 0) dump_spectrum(n);
        fft(n, -1);
        scale(n);
        double acc = 0.0;
        for (int i = 0; i < n; i++) {
            double d = re[i] - orig_re[i];
            acc += d * d;
        }
        rms += sqrt(acc / (double)n);
    }
    print_f64(rms);
    return 0;
}
"""

APP = AppSpec(
    name="fft",
    domain="embedded",
    description="Radix-2 complex FFT round-trip (SciMark2)",
    sources=(
        ("fft.c", _FFT),
        ("signal.c", _MAIN),
    ),
    datasets=(
        DatasetSpec("train", size=256, seed=5),
        DatasetSpec("small", size=64, seed=9),
        DatasetSpec("large", size=512, seed=3),
    ),
)
