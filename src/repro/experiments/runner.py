"""Per-application analysis pipeline shared by all experiment drivers.

Runs the specialization process of Figure 2 for each application and
collects everything Tables I-IV need. :func:`analyze_suite` optionally
shards the per-app analyses across a worker pool (``jobs``/``backend``)
and consults a persistent bitstream cache (Section VI-A) before invoking
the CAD flow — both default off, so the paper-faithful serial behaviour
is unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.apps import ALL_APPS, AppSpec, CompiledApp, compile_app, get_app
from repro.core.asip_sp import AsipSpecializationProcess, SpecializationReport
from repro.core.breakeven import BreakEvenAnalysis, BreakEvenModel
from repro.core.cache import PersistentBitstreamCache
from repro.ise.pruning import NO_PRUNING, PruningFilter
from repro.ise.selection import CandidateSearch, CandidateSearchResult
from repro.obs import get_metrics, get_tracer, tracer_records
from repro.profiling import CoverageAnalysis, KernelAnalysis, classify_blocks, compute_kernel
from repro.vm.jitruntime import JitRuntimeModel, RuntimeEstimate
from repro.vm.profiler import ExecutionProfile
from repro.woolcano.machine import AsipSpeedup, WoolcanoMachine


@dataclass
class AppAnalysis:
    """Everything the tables need for one application."""

    spec: AppSpec
    compiled: CompiledApp
    profiles: dict[str, ExecutionProfile]  # dataset name -> profile
    runtime: RuntimeEstimate
    coverage: CoverageAnalysis
    kernel: KernelAnalysis
    search_full: CandidateSearchResult  # no pruning (ASIP upper bound)
    search_pruned: CandidateSearchResult  # @50pS3L (Table II)
    asip_max: AsipSpeedup
    asip_pruned: AsipSpeedup
    specialization: SpecializationReport
    breakeven: BreakEvenAnalysis

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def domain(self) -> str:
        return self.spec.domain

    @property
    def train_profile(self) -> ExecutionProfile:
        return self.profiles[self.spec.train.name]

    @property
    def pruning_efficiency(self) -> float:
        """(speedup/ident-time) gain of pruning vs. full search (Table II)."""
        t_full = max(1e-6, self.search_full.search_seconds)
        t_pruned = max(1e-6, self.search_pruned.search_seconds)
        full_rate = self.asip_max.ratio / t_full
        pruned_rate = self.asip_pruned.ratio / t_pruned
        if full_rate <= 0:
            return 0.0
        return pruned_rate / full_rate


# Keyed on the full parameter tuple (app name + machine + pruning
# configuration): two analyses of the same app under different parameters
# are different experiments and must not alias each other's results.
_CACHE: dict[tuple, AppAnalysis] = {}


def clear_cache() -> None:
    _CACHE.clear()


def _cache_key(
    name: str,
    machine: WoolcanoMachine | None,
    pruning: PruningFilter | None,
) -> tuple:
    # Machines and pruning filters are plain dataclasses, so their reprs
    # are stable value fingerprints; None marks the shared default.
    return (
        name,
        None if machine is None else repr(machine),
        None if pruning is None else repr(pruning),
    )


def analyze_app(
    name: str,
    machine: WoolcanoMachine | None = None,
    use_cache: bool = True,
    pruning: PruningFilter | None = None,
    jobs: int = 1,
    bitstream_cache: PersistentBitstreamCache | None = None,
) -> AppAnalysis:
    """Run the complete analysis pipeline for one application.

    *pruning* overrides the Table II search filter (default ``@50pS3L``);
    the full-search ASIP upper bound always runs unpruned. *jobs* > 1 fans
    the CAD implementation of this app's candidates across worker threads;
    *bitstream_cache* serves previously implemented candidates from the
    persistent store. Neither changes the analysis results, so the memo
    key deliberately ignores them.
    """
    key = _cache_key(name, machine, pruning)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    spec = get_app(name)
    machine = machine or WoolcanoMachine()
    pruning = pruning or PruningFilter()
    tracer = get_tracer()
    with tracer.span("analysis.run", app=name):
        compiled = compile_app(spec)
        module = compiled.module

        with tracer.span("analysis.profile", datasets=len(spec.datasets)):
            profiles: dict[str, ExecutionProfile] = {}
            for ds in spec.datasets:
                profiles[ds.name] = compiled.run(ds).profile
            train = profiles[spec.train.name]

        runtime = JitRuntimeModel(cost_model=machine.cost_model).estimate(
            module, train
        )
        with tracer.span("analysis.coverage"):
            coverage = classify_blocks(module, list(profiles.values()))
            kernel = compute_kernel(module, train, cost_model=machine.cost_model)

        search_full = CandidateSearch(
            pruning=NO_PRUNING,
            min_total_cycles_saved=0.0,
            cost_model=machine.cost_model,
        ).run(module, train)
        asip_sp = AsipSpecializationProcess(
            search=CandidateSearch(
                pruning=pruning, cost_model=machine.cost_model
            ),
            bitstream_cache=bitstream_cache,
            jobs=max(1, jobs),
        )
        specialization = asip_sp.run(module, train)
        search_pruned = specialization.search

        asip_max = machine.speedup(module, train, search_full.selected)
        asip_pruned = machine.speedup(module, train, search_pruned.selected)

        with tracer.span("analysis.breakeven"):
            breakeven = BreakEvenModel(cost_model=machine.cost_model).analyze(
                module,
                train,
                coverage,
                search_pruned.selected,
                specialization.total_overhead_seconds,
            )

    analysis = AppAnalysis(
        spec=spec,
        compiled=compiled,
        profiles=profiles,
        runtime=runtime,
        coverage=coverage,
        kernel=kernel,
        search_full=search_full,
        search_pruned=search_pruned,
        asip_max=asip_max,
        asip_pruned=asip_pruned,
        specialization=specialization,
        breakeven=breakeven,
    )
    if use_cache:
        _CACHE[key] = analysis
    return analysis


def resolve_bitstream_cache(cache) -> PersistentBitstreamCache | None:
    """Normalize a cache argument: None, a directory path, or an instance."""
    if cache is None or isinstance(cache, PersistentBitstreamCache):
        return cache
    return PersistentBitstreamCache(root=cache)


def _process_worker(name: str, tracing: bool, metrics: bool, cache_root):
    """Analyze one app in a worker process; returns the mergeable evidence.

    Runs in the pool child. The child replaces the (fork-inherited)
    process-global tracer/metrics/log with fresh instances so the exported
    records contain exactly this app's evidence and nothing bleeds into the
    parent's sinks; the parent absorbs spans, merges the metrics snapshot,
    and folds the cache counters back so the suite totals match a serial
    run.
    """
    from repro.obs.log import EventLog, set_log
    from repro.obs.metrics import MetricsRegistry, set_metrics
    from repro.obs.tracer import Tracer, set_tracer

    tracer = set_tracer(Tracer(enabled=tracing))
    registry = set_metrics(MetricsRegistry(enabled=metrics))
    set_log(EventLog(enabled=False))
    cache = (
        PersistentBitstreamCache(root=cache_root)
        if cache_root is not None
        else None
    )
    analysis = analyze_app(name, use_cache=False, bitstream_cache=cache)
    return (
        analysis,
        tracer_records(tracer) if tracing else [],
        registry.snapshot() if metrics else None,
        cache.counters() if cache is not None else None,
    )


def _analyze_parallel(
    apps: list[AppSpec],
    jobs: int,
    backend: str,
    cache: PersistentBitstreamCache | None,
    suite_span,
) -> list[AppAnalysis]:
    """Shard per-app analyses across a worker pool; results in paper order.

    The ``process`` backend (default) gives real CPU parallelism: each app
    runs in a pool child under fresh observability globals and the parent
    merges spans (:meth:`Tracer.absorb`), metrics
    (:meth:`MetricsRegistry.merge_snapshot`), and cache counters back, so
    the recorded evidence is shape-identical to a serial run. Worker
    event-log records are the one exception — they cannot reach the
    parent's sink; use the ``thread`` backend when ``--log`` completeness
    matters more than speed.
    """
    tracer = get_tracer()
    registry = get_metrics()
    fanout_start = time.perf_counter()

    if backend == "thread":

        def run_one(spec: AppSpec) -> AppAnalysis:
            with tracer.child_context(suite_span):
                return analyze_app(spec.name, bitstream_cache=cache)

        with ThreadPoolExecutor(max_workers=min(jobs, len(apps))) as pool:
            return list(pool.map(run_one, apps))

    if backend != "process":
        raise ValueError(f"unknown backend {backend!r} (thread or process)")

    # Prefer fork: children inherit the imported interpreter state, so a
    # worker starts in milliseconds; fall back to the platform default
    # (spawn on macOS/Windows) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    results: dict[str, AppAnalysis] = {}
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(apps)), mp_context=ctx
    ) as pool:
        futures = {
            spec.name: pool.submit(
                _process_worker,
                spec.name,
                tracer.enabled,
                registry.enabled,
                str(cache.root) if cache is not None else None,
            )
            for spec in apps
        }
        for name, future in futures.items():
            analysis, records, snapshot, counters = future.result()
            results[name] = analysis
            _CACHE[_cache_key(name, None, None)] = analysis
            if records:
                tracer.absorb(records, parent=suite_span, base=fanout_start)
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
            if counters is not None and cache is not None:
                cache.absorb_counters(counters)
    return [results[spec.name] for spec in apps]


def analyze_suite(
    domain: str | None = None,
    fidelity_out=None,
    ledger=None,
    jobs: int = 1,
    backend: str = "process",
    cache=None,
) -> list[AppAnalysis]:
    """Analyze every application (optionally one domain), in paper order.

    With *fidelity_out* set, the run's aggregate tables are additionally
    compared cell-by-cell against the paper's published values and the
    resulting report is written there as ``BENCH_*.json``
    (:mod:`repro.obs.fidelity`) — so any experiment run can double as a
    reproduction-fidelity data point.

    With *ledger* set (a :class:`repro.obs.ledger.RunLedger` or a ledger
    directory path), the suite run is recorded as a ledger manifest. When
    the CLI already opened a recorded run (``--ledger``), the suite only
    attaches its scalar results to that run; otherwise it opens, traces,
    and finalizes a run of its own.

    *jobs* > 1 shards the per-app analyses across a worker pool
    (*backend* ``process`` or ``thread``); *cache* (a directory path or a
    :class:`PersistentBitstreamCache`) serves previously implemented
    candidates across runs. Results are deterministic either way — only
    the wall-clock and the cache statistics change.
    """
    from repro.obs.ledger import current_run, finish_run, scalars_from_analyses, start_run

    bitstream_cache = resolve_bitstream_cache(cache)
    recorder = current_run()
    owns_run = False
    tracing_was_enabled = True
    if ledger is not None and recorder is None:
        recorder = start_run(
            ledger,
            command="analyze-suite",
            config={
                "domain": domain or "all",
                "jobs": jobs,
                "backend": backend if jobs > 1 else None,
                "cache": str(bitstream_cache.root) if bitstream_cache else None,
            },
        )
        owns_run = True
        tracing_was_enabled = get_tracer().enabled
        if not tracing_was_enabled:
            from repro.obs.tracer import enable_tracing

            enable_tracing()

    status = 1
    try:
        apps = [a for a in ALL_APPS if domain is None or a.domain == domain]
        with get_tracer().span(
            "analysis.suite", domain=domain or "all", apps=len(apps), jobs=jobs
        ) as suite_span:
            if jobs > 1 and len(apps) > 1:
                analyses = _analyze_parallel(
                    apps, jobs, backend, bitstream_cache, suite_span
                )
            else:
                analyses = [
                    analyze_app(
                        a.name, jobs=jobs, bitstream_cache=bitstream_cache
                    )
                    for a in apps
                ]
        if recorder is not None:
            recorder.attach_scalars(scalars_from_analyses(analyses))
            if bitstream_cache is not None:
                recorder.attach_cache(bitstream_cache.stats())
        if fidelity_out is not None:
            from repro.obs.fidelity import fidelity_from_analyses

            report = fidelity_from_analyses(analyses, domain=domain or "all")
            report.write(fidelity_out)
            if recorder is not None:
                recorder.attach_fidelity(report)
                recorder.artifacts.setdefault("fidelity_report", str(fidelity_out))
        status = 0
    finally:
        if owns_run:
            tracer = get_tracer()
            if not tracing_was_enabled:
                from repro.obs.tracer import disable_tracing

                disable_tracing()
            finish_run(tracer=tracer, status=status)
    return analyses
