"""Experiment drivers: regenerate every table and figure of the paper.

- :mod:`repro.experiments.runner` — per-application analysis pipeline
  (compile, profile under all data sets, coverage, kernel, candidate
  search with and without pruning, CAD implementation, break-even);
- :mod:`repro.experiments.table1` .. :mod:`repro.experiments.table4` —
  table generators printing the same rows/columns as the paper;
- :mod:`repro.experiments.figures` — textual renderings of Figures 1/2.

All results are deterministic; an in-process cache keeps each application's
analysis shared across tables.
"""

from repro.experiments.runner import AppAnalysis, analyze_app, analyze_suite, clear_cache
from repro.experiments.table1 import generate_table1
from repro.experiments.table2 import generate_table2
from repro.experiments.table3 import generate_table3
from repro.experiments.table4 import generate_table4
from repro.experiments.figures import generate_figures

__all__ = [
    "AppAnalysis",
    "analyze_app",
    "analyze_suite",
    "clear_cache",
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "generate_figures",
]
