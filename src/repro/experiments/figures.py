"""Figures 1 and 2: structural diagrams (no measured data in the paper)."""

from __future__ import annotations

from repro.core.pipeline import render_figure1, render_figure2


def generate_figures() -> dict[str, str]:
    """Return textual renderings of both figures."""
    return {
        "figure1": render_figure1(),
        "figure2": render_figure2(),
    }
