"""Table IV: average embedded break-even time under bitstream caching and a
faster CAD flow."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.extrapolate import (
    AppBreakEvenInputs,
    DEFAULT_CAD_SPEEDUPS,
    DEFAULT_HIT_RATES,
    ExtrapolationGrid,
    extrapolate_break_even,
)
from repro.experiments.runner import analyze_suite
from repro.util.tables import Table
from repro.util.timefmt import format_hhmmss

DEFAULT_GRID_TITLE = "Table IV: avg embedded break-even time [h:m:s]"


def breakeven_inputs_from(analyses) -> list[AppBreakEvenInputs]:
    """Break-even model inputs for a set of completed app analyses.

    Shared with the trace-driven what-if engine
    (:mod:`repro.obs.whatif`), which needs the identical inputs to
    cross-check its replayed grid against this module's analytic one.
    """
    return [
        AppBreakEvenInputs(
            name=analysis.name,
            module=analysis.compiled.module,
            profile=analysis.train_profile,
            coverage=analysis.coverage,
            estimates=analysis.search_pruned.selected,
            report=analysis.specialization,
            search_seconds=analysis.search_pruned.search_seconds,
            reconfig_seconds=analysis.specialization.reconfiguration_seconds,
        )
        for analysis in analyses
    ]


def render_grid(grid: ExtrapolationGrid, title: str = DEFAULT_GRID_TITLE) -> str:
    """ASCII rendering of a Table IV-style grid (rows = cache hit rate)."""
    table = Table(
        columns=["Cache hit [%]"] + [f"CAD +{s}%" for s in grid.cad_speedups],
        title=title,
    )
    for hit in grid.cache_hit_rates:
        cells = [str(hit)]
        for speedup in grid.cad_speedups:
            v = grid.at(hit, speedup)
            cells.append(format_hhmmss(v) if math.isfinite(v) else "never")
        table.add_row(cells)
    return table.render()


@dataclass
class Table4:
    grid: ExtrapolationGrid

    def render(self) -> str:
        return render_grid(self.grid)


def generate_table4(
    hit_rates: list[int] | None = None,
    cad_speedups: list[int] | None = None,
    trials: int = 16,
    jobs: int = 1,
    backend: str = "process",
    cache=None,
) -> Table4:
    apps = breakeven_inputs_from(
        analyze_suite("embedded", jobs=jobs, backend=backend, cache=cache)
    )
    grid = extrapolate_break_even(
        apps,
        hit_rates if hit_rates is not None else DEFAULT_HIT_RATES,
        cad_speedups if cad_speedups is not None else DEFAULT_CAD_SPEEDUPS,
        trials=trials,
    )
    return Table4(grid=grid)
