"""Table I: application characterization.

Columns (as in the paper): source files/LOC, bitcode compilation time,
basic blocks, instructions, VM and Native runtimes with their ratio, the
upper-bound ASIP ratio, live/dead/const code coverage, and kernel
size/frequency. AVG-S, AVG-E and RATIO summary rows included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import AppAnalysis, analyze_suite
from repro.util.tables import Table


@dataclass
class Table1Row:
    app: str
    domain: str
    files: int
    loc: int
    compile_s: float
    blocks: int
    instructions: int
    vm_s: float
    native_s: float
    vm_ratio: float
    asip_ratio: float
    live_pct: float
    dead_pct: float
    const_pct: float
    kernel_size_pct: float
    kernel_freq_pct: float
    kernel_instructions: int


def row_for(analysis: AppAnalysis) -> Table1Row:
    return Table1Row(
        app=analysis.name,
        domain=analysis.domain,
        files=analysis.compiled.compilation.files,
        loc=analysis.compiled.compilation.loc,
        compile_s=analysis.compiled.compilation.compile_seconds,
        blocks=analysis.compiled.compilation.basic_blocks,
        instructions=analysis.compiled.compilation.instructions,
        vm_s=analysis.runtime.vm_seconds,
        native_s=analysis.runtime.native_seconds,
        vm_ratio=analysis.runtime.ratio,
        asip_ratio=analysis.asip_max.ratio,
        live_pct=analysis.coverage.live_pct,
        dead_pct=analysis.coverage.dead_pct,
        const_pct=analysis.coverage.const_pct,
        kernel_size_pct=analysis.kernel.size_pct,
        kernel_freq_pct=analysis.kernel.freq_pct,
        kernel_instructions=analysis.kernel.kernel_instructions,
    )


def _avg(rows: list[Table1Row], attr: str) -> float:
    if not rows:
        return float("nan")
    return sum(getattr(r, attr) for r in rows) / len(rows)


_NUMERIC = [
    "files",
    "loc",
    "compile_s",
    "blocks",
    "instructions",
    "vm_s",
    "native_s",
    "vm_ratio",
    "asip_ratio",
    "live_pct",
    "dead_pct",
    "const_pct",
    "kernel_size_pct",
    "kernel_freq_pct",
]


@dataclass
class Table1:
    rows: list[Table1Row]

    @property
    def scientific(self) -> list[Table1Row]:
        return [r for r in self.rows if r.domain == "scientific"]

    @property
    def embedded(self) -> list[Table1Row]:
        return [r for r in self.rows if r.domain == "embedded"]

    def averages(self, domain: str) -> dict[str, float]:
        rows = [r for r in self.rows if r.domain == domain]
        return {attr: _avg(rows, attr) for attr in _NUMERIC}

    def ratio_row(self) -> dict[str, float]:
        """AVG-S / AVG-E per column (the paper's RATIO row)."""
        avg_s = self.averages("scientific")
        avg_e = self.averages("embedded")
        return {
            attr: (avg_s[attr] / avg_e[attr] if avg_e[attr] else float("inf"))
            for attr in _NUMERIC
        }

    def render(self) -> str:
        table = Table(
            columns=[
                "App",
                "files",
                "LOC",
                "real[s]",
                "blk",
                "ins",
                "VM[s]",
                "Native[s]",
                "Ratio",
                "ASIP",
                "live%",
                "dead%",
                "const%",
                "ksize%",
                "kfreq%",
            ],
            title="Table I: application characterization",
        )

        def cells(r: Table1Row) -> list[str]:
            return [
                r.app,
                str(r.files),
                str(r.loc),
                f"{r.compile_s:.2f}",
                str(r.blocks),
                str(r.instructions),
                f"{r.vm_s:.3f}",
                f"{r.native_s:.3f}",
                f"{r.vm_ratio:.2f}",
                f"{r.asip_ratio:.2f}",
                f"{r.live_pct:.1f}",
                f"{r.dead_pct:.1f}",
                f"{r.const_pct:.1f}",
                f"{r.kernel_size_pct:.1f}",
                f"{r.kernel_freq_pct:.1f}",
            ]

        for r in self.scientific:
            table.add_row(cells(r))

        def summary(name: str, avg: dict[str, float]) -> list[str]:
            return [
                name,
                f"{avg['files']:.0f}",
                f"{avg['loc']:.0f}",
                f"{avg['compile_s']:.2f}",
                f"{avg['blocks']:.0f}",
                f"{avg['instructions']:.0f}",
                f"{avg['vm_s']:.3f}",
                f"{avg['native_s']:.3f}",
                f"{avg['vm_ratio']:.2f}",
                f"{avg['asip_ratio']:.2f}",
                f"{avg['live_pct']:.1f}",
                f"{avg['dead_pct']:.1f}",
                f"{avg['const_pct']:.1f}",
                f"{avg['kernel_size_pct']:.1f}",
                f"{avg['kernel_freq_pct']:.1f}",
            ]

        table.add_footer(summary("AVG-S", self.averages("scientific")))
        for r in self.embedded:
            table.add_row(cells(r))
        table.add_footer(summary("AVG-E", self.averages("embedded")))
        ratio = self.ratio_row()
        table.add_footer(
            ["RATIO"]
            + [
                f"{ratio[a]:.2f}"
                for a in _NUMERIC
            ]
        )
        return table.render()


def generate_table1(
    jobs: int = 1, backend: str = "process", cache=None
) -> Table1:
    """Run the full suite and build Table I."""
    return Table1(
        rows=[
            row_for(a)
            for a in analyze_suite(jobs=jobs, backend=backend, cache=cache)
        ]
    )
