"""Table II: ASIP-SP runtime overheads and break-even times.

Columns: candidate-search wall time (ms), pruning efficiency, pruned
blocks/instructions, candidate count, post-pruning ASIP ratio, constant /
map / PAR / total tool-flow overheads (m:s), and the live-aware break-even
time (d:h:m:s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.runner import AppAnalysis, analyze_suite
from repro.util.tables import Table
from repro.util.timefmt import format_dhms, format_hms, format_ms


@dataclass
class Table2Row:
    app: str
    domain: str
    search_ms: float
    pruning_efficiency: float
    pruned_blocks: int
    pruned_instructions: int
    candidates: int
    asip_ratio: float
    const_s: float
    map_s: float
    par_s: float
    sum_s: float
    break_even_s: float


def row_for(analysis: AppAnalysis) -> Table2Row:
    report = analysis.specialization
    return Table2Row(
        app=analysis.name,
        domain=analysis.domain,
        search_ms=analysis.search_pruned.search_seconds * 1000.0,
        pruning_efficiency=analysis.pruning_efficiency,
        pruned_blocks=len(analysis.search_pruned.pruned_blocks),
        pruned_instructions=analysis.search_pruned.pruned_block_instructions,
        candidates=report.candidate_count,
        asip_ratio=analysis.asip_pruned.ratio,
        const_s=report.const_seconds,
        map_s=report.map_seconds,
        par_s=report.par_seconds,
        sum_s=report.toolflow_seconds,
        break_even_s=analysis.breakeven.live_aware_seconds,
    )


_NUMERIC = [
    "search_ms",
    "pruning_efficiency",
    "pruned_blocks",
    "pruned_instructions",
    "candidates",
    "asip_ratio",
    "const_s",
    "map_s",
    "par_s",
    "sum_s",
    "break_even_s",
]


@dataclass
class Table2:
    rows: list[Table2Row]

    def domain_rows(self, domain: str) -> list[Table2Row]:
        return [r for r in self.rows if r.domain == domain]

    def averages(self, domain: str) -> dict[str, float]:
        rows = self.domain_rows(domain)
        out = {}
        for attr in _NUMERIC:
            values = [getattr(r, attr) for r in rows]
            finite = [v for v in values if math.isfinite(v)]
            out[attr] = sum(finite) / len(finite) if finite else math.inf
        return out

    def render(self) -> str:
        table = Table(
            columns=[
                "App",
                "real[ms]",
                "effic",
                "blk",
                "ins",
                "can",
                "ratio",
                "const",
                "map",
                "par",
                "sum",
                "break even",
            ],
            title="Table II: ASIP-SP runtime overheads",
        )

        def cells(r: Table2Row) -> list[str]:
            be = (
                format_dhms(r.break_even_s)
                if math.isfinite(r.break_even_s)
                else "never"
            )
            return [
                r.app,
                format_ms(r.search_ms / 1000.0),
                f"{r.pruning_efficiency:.2f}",
                str(r.pruned_blocks),
                str(r.pruned_instructions),
                str(r.candidates),
                f"{r.asip_ratio:.2f}",
                format_hms(r.const_s),
                format_hms(r.map_s),
                format_hms(r.par_s),
                format_hms(r.sum_s),
                be,
            ]

        def summary(name: str, avg: dict[str, float]) -> list[str]:
            be = (
                format_dhms(avg["break_even_s"])
                if math.isfinite(avg["break_even_s"])
                else "never"
            )
            return [
                name,
                format_ms(avg["search_ms"] / 1000.0),
                f"{avg['pruning_efficiency']:.2f}",
                f"{avg['pruned_blocks']:.2f}",
                f"{avg['pruned_instructions']:.0f}",
                f"{avg['candidates']:.0f}",
                f"{avg['asip_ratio']:.2f}",
                format_hms(avg["const_s"]),
                format_hms(avg["map_s"]),
                format_hms(avg["par_s"]),
                format_hms(avg["sum_s"]),
                be,
            ]

        for r in self.domain_rows("scientific"):
            table.add_row(cells(r))
        if self.domain_rows("scientific"):
            table.add_footer(summary("AVG-S", self.averages("scientific")))
        for r in self.domain_rows("embedded"):
            table.add_row(cells(r))
        if self.domain_rows("embedded"):
            table.add_footer(summary("AVG-E", self.averages("embedded")))
        return table.render()


def generate_table2(
    jobs: int = 1, backend: str = "process", cache=None
) -> Table2:
    return Table2(
        rows=[
            row_for(a)
            for a in analyze_suite(jobs=jobs, backend=backend, cache=cache)
        ]
    )
