"""Table III: constant per-candidate overheads of the tool flow.

Mean and standard deviation of C2V, Syn, Xst, Tra and Bitgen across every
candidate implemented for the whole suite, plus their sum — the cost of
implementing "even the most simple custom instruction".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.runner import analyze_suite
from repro.util.tables import Table


@dataclass
class Table3:
    """Per-stage mean/stdev over all implemented candidates."""

    means: dict[str, float]
    stdevs: dict[str, float]
    samples: int

    STAGES = ("c2v", "syn", "xst", "tra", "bitgen")

    @property
    def constant_sum(self) -> float:
        return sum(self.means[s] for s in self.STAGES)

    @property
    def bitgen_share(self) -> float:
        """Fraction of the constant overhead spent in Bitgen (~85 %)."""
        total = self.constant_sum
        return self.means["bitgen"] / total if total else 0.0

    def render(self) -> str:
        table = Table(
            columns=["", "C2V", "Syn", "Xst", "Tra", "Bitgen", "Sum"],
            title="Table III: constant ASIP-SP overheads [s]",
        )
        table.add_row(
            ["Average"]
            + [f"{self.means[s]:.2f}" for s in self.STAGES]
            + [f"{self.constant_sum:.2f}"]
        )
        table.add_row(
            ["Stdev"]
            + [f"{self.stdevs[s]:.2f}" for s in self.STAGES]
            + [""]
        )
        return table.render()


def table3_from(analyses) -> Table3:
    """Build Table III statistics from an already-analyzed app list.

    Used by :func:`generate_table3` (full suite) and by the fidelity
    harness (:mod:`repro.obs.fidelity`), which compares a subset of the
    suite against the paper's published constants.
    """
    stage_values: dict[str, list[float]] = {s: [] for s in Table3.STAGES}
    for analysis in analyses:
        for ci in analysis.specialization.implementations:
            t = ci.times
            stage_values["c2v"].append(t.c2v)
            stage_values["syn"].append(t.syn)
            stage_values["xst"].append(t.xst)
            stage_values["tra"].append(t.tra)
            stage_values["bitgen"].append(t.bitgen)

    means: dict[str, float] = {}
    stdevs: dict[str, float] = {}
    n = len(stage_values["c2v"])
    for stage, values in stage_values.items():
        if not values:
            means[stage] = 0.0
            stdevs[stage] = 0.0
            continue
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        means[stage] = mean
        stdevs[stage] = math.sqrt(var)
    return Table3(means=means, stdevs=stdevs, samples=n)


def generate_table3(
    jobs: int = 1, backend: str = "process", cache=None
) -> Table3:
    return table3_from(analyze_suite(jobs=jobs, backend=backend, cache=cache))
