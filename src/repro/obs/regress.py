"""Regression sentinel: compare two run manifests cell by cell.

A ledger manifest (:mod:`repro.obs.ledger`) flattens into named numeric
cells — per-stage virtual CAD seconds, span counts, per-app speedups and
break-even times, candidate counts, fidelity cell outcomes, metrics
counters. The sentinel compares a baseline manifest against a candidate
manifest under configurable relative tolerances and exits non-zero on any
regression, so CI can gate on ``repro regress --baseline <run>``.

Two kinds of cells:

- **deterministic** — the virtual-clock CAD stage totals, candidate
  counts, speedups, break-even times, fidelity actuals: for a fixed
  config these are bit-reproducible, so the default tolerance is
  essentially exact (relative 1e-9) and any drift names the offending
  cell;
- **noisy** — measured wall clock (``wall_seconds``, ``*.real_seconds``,
  candidate-search milliseconds): informational by default (reported but
  never failing) unless a tolerance is explicitly configured for them,
  e.g. ``--tol 'stages.search.*=0.5'``.

Noise bands: with repeat runs available (``--repeat N``), the candidate
value of each cell is the **median** over the N most recent runs and the
allowance is widened by ``3 x MAD`` (median absolute deviation), so a
flaky cell needs a real shift — not one unlucky sample — to fail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.util.tables import Table

#: Ordered (pattern, relative tolerance) pairs; first match wins. ``None``
#: marks the cell informational (never failing). User tolerances are
#: prepended, so an explicit pattern can tighten a noisy cell into a
#: checked one or loosen a deterministic one.
DEFAULT_TOLERANCES: tuple[tuple[str, float | None], ...] = (
    ("*search*", None),  # candidate search is measured wall clock (Table II)
    ("*compile*", None),  # compilation is measured wall clock too
    ("*.real_seconds", None),
    ("wall_seconds", None),
    # Serve-plane cells (repro serve / repro loadgen). Request *counts*
    # (total / completed / failed) are deterministic for a fixed load
    # schedule and stay on the exact catch-all below; everything measured
    # under concurrency — latencies, queue depths, rejection/retry counts,
    # dedup savings, per-tenant hit rates, throughput — depends on thread
    # scheduling and is informational. These patterns must precede the
    # global "*break_even*" entry: the serve latency quantiles are
    # *measured distributions* of break-even times, not single modelled
    # values.
    ("serve.*latency*", None),
    ("serve.*queue*", None),
    ("serve.*rejected*", None),
    # total = completed + failed + rejected, so it inherits the
    # rejection count's scheduling noise under backpressure.
    ("serve.*requests.total", None),
    ("serve.*retries*", None),
    ("serve.*accepted*", None),
    ("serve.*dedup*", None),
    ("serve.*tenants*", None),
    ("serve.*throughput*", None),
    ("serve.*uptime*", None),
    ("serve.*wall*", None),
    ("serve.*inflight*", None),
    ("serve.*comparison*", None),
    # Slot telemetry sums over *completed* requests, so it inherits the
    # admission counts' scheduling noise under backpressure.
    ("serve.*slots*", None),
    ("serve.*cross_app*", None),
    ("metrics.counters.slots.*", None),
    ("metrics.counters.store.cross_app_hits", None),
    ("serve.*cad_implementations*", None),
    ("metrics.counters.serve.*", None),
    # SLO evaluations (the daemon's live summary and the block `repro slo`
    # attaches) are derived from measured latency/admission behaviour, so
    # they are informational — and must precede "*break_even*": the
    # break_even_p95 objective's budget cells are measured, not modelled.
    ("serve.*slo*", None),
    ("slo.*", None),
    # Fleet-mix grid (repro mix): the candidate-search wall time is
    # excluded from every charged overhead, so the mix break-even cells
    # are fully virtual-clock and bit-identical — gate them exactly,
    # ahead of the looser "*break_even*" band below. Only the grid's own
    # wall clock is measured, hence informational.
    ("mix.*wall*", None),
    ("mix.*break_even*", 1e-9),
    ("whatif.mix.*", 1e-9),
    # Break-even folds the measured search milliseconds into a
    # minutes-scale modelled overhead: deterministic to ~1e-6 relative,
    # so gate it loosely enough to absorb that jitter.
    ("*break_even*", 1e-4),
    ("status", 0.0),
    # Persistent bitstream-cache statistics: informational. Hit/miss
    # counts depend on what earlier runs left in the store, and a parallel
    # cold run can race two apps to the same signature — legitimate
    # variation, not a result drift.
    ("cache.*", None),
    ("metrics.counters.cache.*", None),
    # Post-hoc trace analyses (repro critpath / repro whatif): real-clock
    # cells are measured wall time, so informational; virtual-clock cells
    # are deterministic modelled times, gated with the same slack as the
    # break-even cells (they fold the measured search milliseconds into a
    # minutes-scale total). The search stage itself stays informational on
    # both clocks via the "*search*" pattern above.
    ("critpath.real.*", None),
    ("critpath.*", 1e-4),
    ("whatif.check.*", None),
    ("whatif.*", 1e-4),
    # VM observatory (repro vmprof / bench-vm): opcode, digram and
    # superinsn *counts* plus the virtual clock are deterministic and fall
    # through to the exact catch-all — that is the bit-identical guarantee
    # the dispatch-optimization work is gated on. Everything measured on
    # the host clock (run wall time, calibrated dispatch-cost table,
    # estimated savings, sampler attribution) is informational until
    # --history noise bands promote it.
    ("vm.wall_seconds", None),
    ("vm.instructions_per_second", None),
    ("vm.dispatch.*", None),
    ("vm.*saved_ms", None),
    ("vm.sampled.*", None),
    # Superinstruction fusion: the vm.fused.* cells (fused wall seconds,
    # speedup) are host-clock measurements, informational until noise
    # bands promote them. The vm.fusion.* cells — site/sequence counts,
    # dispatches removed, and the steps/blocks/virtual *_identical flags
    # asserting the bit-identity invariant — are deterministic and fall
    # through to the exact catch-all.
    ("vm.fused.*", None),
    ("*", 1e-9),
)

#: Prepended (after any user tolerances) when the two compared runs used
#: the persistent bitstream cache differently: a warm run legitimately
#: skips CAD work, so the per-stage span counts and the implementation
#: counter become informational. The *results* cells (toolflow seconds,
#: speedups, break-even) stay gated — cached stage times are bit-identical
#: to recomputed ones.
CACHE_DEMOTED_TOLERANCES: tuple[tuple[str, float | None], ...] = (
    ("stages.cad.*", None),
    ("metrics.counters.cad.*", None),
)

#: MAD multiplier for the repeat-run noise band.
NOISE_BAND_MADS = 3.0

#: Relative floor applied when a measured cell is promoted to *checked*
#: by a history-derived noise band (repro regress --history N): the
#: allowance is ``HISTORY_NOISE_REL_FLOOR * |baseline| + 3 x MAD``, so a
#: cell whose fleet history happens to be constant still tolerates small
#: drift instead of becoming an exact gate.
HISTORY_NOISE_REL_FLOOR = 0.05

#: Manifest config keys that are expected to differ between runs. ``jobs``,
#: ``backend``, and ``cache`` are execution strategy, not experiment
#: configuration: a parallel or cache-warmed run must remain comparable
#: against a serial baseline.
_VOLATILE_CONFIG_KEYS = frozenset(
    {
        "ledger",
        "log",
        "trace",
        "metrics",
        "out",
        "jobs",
        "backend",
        "cache",
        # Serve plane: the store directory is per-invocation scratch and
        # the listen address is bind-time detail, not experiment config.
        "store",
        "port",
        "host",
    }
)


def parse_tolerances(specs: list[str]) -> list[tuple[str, float | None]]:
    """Parse ``PATTERN=REL`` CLI specs (``REL`` = float, or ``info``)."""
    parsed: list[tuple[str, float | None]] = []
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep or not pattern:
            raise ValueError(
                f"invalid tolerance {spec!r} (expected PATTERN=REL)"
            )
        if value.strip().lower() in ("info", "none"):
            parsed.append((pattern, None))
            continue
        try:
            rel = float(value)
        except ValueError:
            raise ValueError(
                f"invalid tolerance {spec!r}: {value!r} is not a number"
            ) from None
        if rel < 0:
            raise ValueError(f"invalid tolerance {spec!r}: must be >= 0")
        parsed.append((pattern, rel))
    return parsed


def resolve_tolerance(
    cell: str, tolerances: list[tuple[str, float | None]]
) -> float | None:
    for pattern, tol in tolerances:
        if fnmatchcase(cell, pattern):
            return tol
    return 1e-9


def flatten_cells(manifest: dict) -> dict[str, float]:
    """Flat ``cell-name -> numeric value`` view of one manifest."""
    cells: dict[str, float] = {}

    def put(name: str, value) -> None:
        if isinstance(value, bool):
            cells[name] = float(value)
        elif isinstance(value, (int, float)) and math.isfinite(value):
            cells[name] = float(value)

    put("wall_seconds", manifest.get("wall_seconds"))
    put("status", manifest.get("status"))

    for name, stage in (manifest.get("stages") or {}).items():
        for key in ("spans", "real_seconds", "virtual_seconds"):
            put(f"stages.{name}.{key}", stage.get(key))

    def walk(prefix: str, value) -> None:
        if isinstance(value, dict):
            for k, v in value.items():
                walk(f"{prefix}.{k}", v)
        else:
            put(prefix, value)

    walk("scalars", manifest.get("scalars") or {})

    fidelity = manifest.get("fidelity") or {}
    put("fidelity.failed", fidelity.get("failed"))
    for key, cell in (fidelity.get("cells") or {}).items():
        put(f"fidelity.{key}.actual", cell.get("actual"))
        if cell.get("passed") is not None:
            put(f"fidelity.{key}.passed", cell.get("passed"))

    for key, value in (manifest.get("cache") or {}).items():
        put(f"cache.{key}", value)

    # Serve-plane block (repro serve daemon / repro loadgen phases): the
    # nesting varies (single summary vs per-phase summaries), so walk it
    # generically — numeric leaves become serve.* cells. The daemon's
    # config echo (ephemeral port, worker count, ...) is configuration,
    # not a result; it is compared via the manifest config block instead.
    serve_block = dict(manifest.get("serve") or {})
    serve_block.pop("config", None)
    walk("serve", serve_block)

    metrics = manifest.get("metrics") or {}
    for name, value in (metrics.get("counters") or {}).items():
        put(f"metrics.counters.{name}", value)

    critpath = manifest.get("critpath") or {}
    for clock in ("virtual", "real"):
        blk = critpath.get(clock) or {}
        put(f"critpath.{clock}.makespan", blk.get("makespan"))
        put(f"critpath.{clock}.serial_seconds", blk.get("serial_seconds"))
        put(f"critpath.{clock}.dominant_share", blk.get("dominant_share"))
        for stage, st in (blk.get("stages") or {}).items():
            put(f"critpath.{clock}.stages.{stage}.total", st.get("total"))
            put(f"critpath.{clock}.stages.{stage}.slack_min", st.get("slack_min"))
            put(f"critpath.{clock}.stages.{stage}.on_path", st.get("on_path"))
    headroom = critpath.get("headroom") or {}
    put("critpath.headroom.baseline_break_even", headroom.get("baseline_break_even"))
    for stage, row in (headroom.get("stages") or {}).items():
        put(f"critpath.headroom.{stage}.total", row.get("total"))
        for label, value in (row.get("break_even") or {}).items():
            put(f"critpath.headroom.{stage}.break_even.{label}", value)

    whatif = manifest.get("whatif") or {}
    for key, value in ((whatif.get("grid") or {}).get("cells") or {}).items():
        put(f"whatif.grid.{key}", value)
    check = whatif.get("check") or {}
    put("whatif.check.checked", check.get("checked"))
    put("whatif.check.flagged", check.get("flagged"))
    scenario = whatif.get("scenario") or {}
    put("whatif.scenario.break_even_mean", scenario.get("break_even_mean"))
    for app, row in (scenario.get("apps") or {}).items():
        put(f"whatif.scenario.{app}.break_even", row.get("break_even"))
        put(f"whatif.scenario.{app}.overhead", row.get("overhead"))

    # SLO block (attached post hoc by `repro slo`): generic numeric walk;
    # the objective-level alert kinds are strings and fall out naturally.
    walk("slo", manifest.get("slo") or {})

    # VM observatory block (repro vmprof / repro bench-vm --ledger): the
    # opcode/digram/superinsn counts and virtual clocks are deterministic
    # and fall to the exact catch-all; the measured dispatch costs, wall
    # clock and sampler stats carry vm.* info tolerances above.
    walk("vm", manifest.get("vm") or {})

    # Fleet-mix block (repro mix --ledger): nested dicts all the way down
    # (mix.cells.<preset>.<policy>.c<NN>.<metric>), so the generic walk
    # covers it. Virtual-clock cells gate exactly; mix.*wall* cells carry
    # the info tolerance above.
    walk("mix", manifest.get("mix") or {})
    return cells


def median_mad(values: list[float]) -> tuple[float, float]:
    """Median and median-absolute-deviation of *values* (non-empty)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    median = (
        ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    deviations = sorted(abs(v - median) for v in ordered)
    mad = (
        deviations[mid] if n % 2 else 0.5 * (deviations[mid - 1] + deviations[mid])
    )
    return median, mad


@dataclass
class CellDelta:
    """One cell compared between baseline and candidate manifests."""

    cell: str
    baseline: float | None
    current: float | None
    tolerance: float | None  # None = informational
    noise: float = 0.0  # absolute allowance from the repeat-run MAD band
    samples: int = 1  # repeat runs folded into `current`

    @property
    def abs_delta(self) -> float | None:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def rel_delta(self) -> float | None:
        delta = self.abs_delta
        if delta is None:
            return None
        denom = max(abs(self.baseline), 1e-12)
        return delta / denom

    @property
    def checked(self) -> bool:
        return self.tolerance is not None

    @property
    def regressed(self) -> bool:
        if not self.checked:
            return False
        if self.baseline is None or self.current is None:
            return True  # a checked cell appeared or disappeared
        allowance = self.tolerance * max(abs(self.baseline), 1e-12)
        allowance += NOISE_BAND_MADS * self.noise
        return abs(self.current - self.baseline) > allowance

    def describe(self) -> str:
        if self.baseline is None:
            return f"{self.cell}: new cell (current {self.current:g})"
        if self.current is None:
            return f"{self.cell}: cell disappeared (baseline {self.baseline:g})"
        rel = self.rel_delta
        return (
            f"{self.cell}: baseline {self.baseline:g} -> current "
            f"{self.current:g} (delta {100.0 * rel:+.3f}%, "
            f"tol {self.tolerance:g}"
            + (f", noise band {NOISE_BAND_MADS:g}*MAD={self.noise:g}" if self.noise else "")
            + ")"
        )


@dataclass
class RegressionReport:
    """Cell-by-cell comparison of two run manifests."""

    baseline_id: str
    current_id: str
    deltas: list[CellDelta] = field(default_factory=list)
    config_mismatches: list[str] = field(default_factory=list)
    repeat_ids: list[str] = field(default_factory=list)
    #: Measured cells promoted to checked by history-derived noise bands.
    noise_banded: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[CellDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def checked(self) -> list[CellDelta]:
        return [d for d in self.deltas if d.checked]

    def render(self, show_all: bool = False) -> str:
        table = Table(
            columns=["cell", "baseline", "current", "delta %", "tol", "status"],
            title=(
                f"Regression check: {self.baseline_id} (baseline) vs "
                f"{self.current_id}"
            ),
        )
        shown = 0
        for d in sorted(
            self.deltas, key=lambda d: (not d.regressed, d.cell)
        ):
            changed = d.abs_delta is None or d.abs_delta != 0.0
            if not show_all and not changed and not d.regressed:
                continue
            status = (
                "FAIL" if d.regressed else ("ok" if d.checked else "info")
            )
            rel = d.rel_delta
            table.add_row(
                [
                    d.cell,
                    f"{d.baseline:g}" if d.baseline is not None else "-",
                    f"{d.current:g}" if d.current is not None else "-",
                    f"{100.0 * rel:+.3f}" if rel is not None else "-",
                    f"{d.tolerance:g}" if d.tolerance is not None else "info",
                    status,
                ]
            )
            shown += 1
        checked = self.checked
        passed = sum(1 for d in checked if not d.regressed)
        table.add_footer(
            [
                "total",
                f"{len(self.deltas)} cells",
                f"{shown} shown",
                "",
                "",
                f"{passed}/{len(checked)} pass",
            ]
        )
        return table.render()


def compare_manifests(
    baseline: dict,
    current: dict,
    tolerances: list[tuple[str, float | None]] | None = None,
    history: list[dict] | None = None,
    noise_bands: dict[str, dict] | None = None,
) -> RegressionReport:
    """Compare *current* against *baseline* cell by cell.

    *tolerances* are prepended to :data:`DEFAULT_TOLERANCES` (first match
    wins). *history* is an optional list of repeat-run manifests (the
    candidate included): each cell's candidate value becomes the median
    over the history and its allowance is widened by ``3 x MAD``.

    *noise_bands* maps cell names to ``{"median", "mad", "samples"}``
    dicts derived from fleet history (:func:`repro.obs.history.
    derive_noise_bands`). A banded cell whose resolved tolerance is
    ``None`` (i.e. measured/informational by default and not explicitly
    configured) is promoted to *checked* with allowance
    ``HISTORY_NOISE_REL_FLOOR * |baseline| + 3 x MAD`` — measured-cell
    tolerances come from observed history instead of hand tuning, while
    deterministic (virtual-clock) cells keep their exact gates untouched.
    """
    resolved = list(tolerances or [])
    base_cache = baseline.get("cache") or {}
    cur_cache = current.get("cache") or {}
    cache_differs = bool(base_cache) != bool(cur_cache) or base_cache.get(
        "hits", 0
    ) != cur_cache.get("hits", 0)
    if cache_differs:
        # User tolerances still win (they come first); the demotions
        # outrank only the defaults.
        resolved += list(CACHE_DEMOTED_TOLERANCES)
    # critpath / whatif blocks are attached post hoc (repro critpath /
    # repro whatif): a run analyzed only on one side is a workflow
    # difference, not a result drift, so demote the whole block instead of
    # failing on appeared/disappeared cells.
    onesided_blocks = [
        block
        for block in ("critpath", "whatif", "mix")
        if bool(baseline.get(block)) != bool(current.get(block))
    ]
    resolved += [(f"{block}.*", None) for block in onesided_blocks]
    resolved += list(DEFAULT_TOLERANCES)
    base_cells = flatten_cells(baseline)
    cur_cells = flatten_cells(current)

    history_cells: list[dict[str, float]] = []
    repeat_ids: list[str] = []
    if history and len(history) > 1:
        history_cells = [flatten_cells(m) for m in history]
        repeat_ids = [str(m.get("run_id")) for m in history]

    report = RegressionReport(
        baseline_id=str(baseline.get("run_id", "baseline")),
        current_id=str(current.get("run_id", "current")),
        repeat_ids=repeat_ids,
    )

    base_config = {
        k: v
        for k, v in (baseline.get("config") or {}).items()
        if k not in _VOLATILE_CONFIG_KEYS
    }
    cur_config = {
        k: v
        for k, v in (current.get("config") or {}).items()
        if k not in _VOLATILE_CONFIG_KEYS
    }
    for key in sorted(set(base_config) | set(cur_config)):
        if base_config.get(key) != cur_config.get(key):
            report.config_mismatches.append(
                f"config.{key}: baseline {base_config.get(key)!r} != "
                f"current {cur_config.get(key)!r}"
            )
    for block in onesided_blocks:
        report.config_mismatches.append(
            f"{block} block recorded in only one of the runs; "
            f"{block}.* cells demoted to informational"
        )
    if cache_differs:
        report.config_mismatches.append(
            "bitstream-cache usage differs between runs: "
            f"baseline hits={base_cache.get('hits', 0)} vs "
            f"current hits={cur_cache.get('hits', 0)}; "
            "stages.cad.* and metrics.counters.cad.* demoted to informational"
        )

    for cell in sorted(set(base_cells) | set(cur_cells)):
        value = cur_cells.get(cell)
        noise = 0.0
        samples = 1
        if history_cells:
            values = [h[cell] for h in history_cells if cell in h]
            if len(values) > 1:
                value, mad = median_mad(values)
                noise = mad
                samples = len(values)
        tolerance = resolve_tolerance(cell, resolved)
        if tolerance is None and noise_bands:
            band = noise_bands.get(cell)
            if band and int(band.get("samples", 0)) >= 2:
                tolerance = HISTORY_NOISE_REL_FLOOR
                noise = max(noise, float(band.get("mad", 0.0)))
                report.noise_banded.append(cell)
        report.deltas.append(
            CellDelta(
                cell=cell,
                baseline=base_cells.get(cell),
                current=value,
                tolerance=tolerance,
                noise=noise,
                samples=samples,
            )
        )
    return report
