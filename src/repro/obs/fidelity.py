"""Reproduction-fidelity harness: compare a run against the paper's numbers.

The paper publishes concrete table cells (Tables I-IV of Grad & Plessl,
RAW/IPDPS 2011); this module holds those golden values, runs the analysis
suite, and compares cell-by-cell under per-column tolerances, emitting a
machine-readable ``BENCH_*.json`` report so the bench trajectory has data
points and regressions become diffable.

Three kinds of cells:

- **checked** (``mode`` "rel"/"max"/"min") — must hold for the run to pass:
  the Table III constants the timing model is calibrated to, structural
  invariants (kernel freq >= 90 % by construction, candidate search in
  milliseconds), and headline bounds (embedded break-even under two hours);
- **info** (``mode`` "info") — recorded with their relative error but never
  failing: the shape-level Table I/II aggregates where the reproduction
  deliberately deviates in magnitude (see EXPERIMENTS.md);
- the optional Table IV extrapolation factor (``--full``), checking the
  paper's "caching + faster CAD roughly halve break-even" claim.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field

# -- golden values from the paper ---------------------------------------------
#: Table III constant stage overheads, mean and stdev in seconds.
PAPER_TABLE3_MEAN: dict[str, float] = {
    "c2v": 3.22,
    "syn": 4.22,
    "xst": 10.60,
    "tra": 8.99,
    "bitgen": 151.00,
}
PAPER_TABLE3_STD: dict[str, float] = {
    "c2v": 0.10,
    "syn": 0.10,
    "xst": 0.23,
    "tra": 1.22,
    "bitgen": 2.43,
}
PAPER_TABLE3_SUM = 178.03
PAPER_BITGEN_SHARE = 0.85  # "~85 %" of the constant overhead (Section V-C)
PAPER_FULL_BITSTREAM_S = 41.0  # non-EAPR full-device bitstream (Section V-C)

#: Per-stage relative tolerance on the Table III means. The model is
#: calibrated to these constants but a fidelity run measures them over the
#: (seeded) per-candidate noise of one domain's candidate set, so stages
#: with larger stdev get more slack (Tra: sigma/mean ~ 14 %).
TABLE3_MEAN_TOL: dict[str, float] = {
    "c2v": 0.10,
    "syn": 0.10,
    "xst": 0.10,
    "tra": 0.15,
    "bitgen": 0.05,
}

#: Table I / II domain averages as published (AVG-S / AVG-E rows). These are
#: *shape* references — our stand-in applications reproduce direction, not
#: magnitude — so they enter the report as info cells only.
PAPER_AVERAGES: dict[str, dict[str, float]] = {
    "scientific": {
        "vm_ratio": 1.14,
        "asip_upper_ratio": 1.71,
        "asip_pruned_ratio": 1.20,
        "kernel_size_pct": 15.1,
        "kernel_freq_pct": 94.2,
        "search_ms": 3.80,
        "candidates": 49,
        "const_s": 146 * 60 + 34,
        "toolflow_s": 270 * 60 + 28,
        "break_even_s": 881 * 86400.0,
    },
    "embedded": {
        "vm_ratio": 1.01,
        "asip_upper_ratio": 7.21,
        "asip_pruned_ratio": 4.98,
        "kernel_size_pct": 26.3,
        "kernel_freq_pct": 95.7,
        "search_ms": 0.60,
        "candidates": 8,
        "const_s": 24 * 60 + 28,
        "toolflow_s": 49 * 60 + 53,
        "break_even_s": 3600 + 59 * 60 + 55,  # 01:59:55
    },
}

#: Paper headline bounds, checked when the domain is covered by the run.
EMBEDDED_BREAK_EVEN_MAX_S = 2 * 3600.0  # "break even time of less than 2 hours"
SEARCH_SECONDS_MAX = 0.1  # candidate search is milliseconds, not seconds
KERNEL_FREQ_MIN_PCT = 90.0  # by construction of the 90 % threshold

#: Table IV: 30 % cache hits + 30 % faster CAD cut break-even "almost by a
#: half, 1.94x".
PAPER_TABLE4_FACTOR_30_30 = 1.94


@dataclass
class CellCheck:
    """One golden-reference comparison."""

    table: str  # "I", "II", "III", "IV" or "struct"
    row: str
    column: str
    expected: float
    actual: float
    mode: str = "rel"  # "rel" | "max" | "min" | "info"
    rel_tol: float | None = None
    note: str = ""

    @property
    def rel_error(self) -> float | None:
        if not math.isfinite(self.actual) or not math.isfinite(self.expected):
            return None
        if self.expected == 0.0:
            return None
        return abs(self.actual - self.expected) / abs(self.expected)

    @property
    def passed(self) -> bool | None:
        """True/False for checked cells, None for info cells."""
        if self.mode == "info":
            return None
        if not math.isfinite(self.actual):
            return False
        if self.mode == "max":
            return self.actual <= self.expected
        if self.mode == "min":
            return self.actual >= self.expected
        err = self.rel_error
        return err is not None and err <= (self.rel_tol or 0.0)

    def as_dict(self) -> dict:
        return {
            "table": self.table,
            "row": self.row,
            "column": self.column,
            "mode": self.mode,
            "expected": self.expected,
            "actual": self.actual if math.isfinite(self.actual) else None,
            "rel_tol": self.rel_tol,
            "rel_error": self.rel_error,
            "passed": self.passed,
            "note": self.note,
        }


@dataclass
class FidelityReport:
    """Cell-by-cell comparison of one run against the paper."""

    domain: str
    cells: list[CellCheck] = field(default_factory=list)
    wall_seconds: float = 0.0
    apps: list[str] = field(default_factory=list)

    @property
    def checked(self) -> list[CellCheck]:
        return [c for c in self.cells if c.mode != "info"]

    @property
    def failures(self) -> list[CellCheck]:
        return [c for c in self.checked if c.passed is False]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "schema": "repro-fidelity/1",
            "paper": "Grad & Plessl, JIT Instruction Set Extension (RAW/IPDPS 2011)",
            "domain": self.domain,
            "apps": self.apps,
            "ok": self.ok,
            "checked": len(self.checked),
            "passed": sum(1 for c in self.checked if c.passed),
            "failed": len(self.failures),
            "info": sum(1 for c in self.cells if c.mode == "info"),
            "wall_seconds": self.wall_seconds,
            "cells": [c.as_dict() for c in self.cells],
        }

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    def render(self) -> str:
        from repro.util.tables import Table

        table = Table(
            columns=["table", "cell", "expected", "actual", "err %", "status"],
            title=f"Fidelity vs. paper ({self.domain}, {len(self.apps)} apps)",
        )
        for c in self.cells:
            err = c.rel_error
            status = {True: "pass", False: "FAIL", None: "info"}[c.passed]
            op = {"max": "<=", "min": ">="}.get(c.mode, "")
            table.add_row(
                [
                    c.table,
                    f"{c.row}/{c.column}",
                    f"{op}{c.expected:g}",
                    f"{c.actual:g}" if math.isfinite(c.actual) else "inf",
                    f"{100.0 * err:.1f}" if err is not None else "-",
                    status,
                ]
            )
        table.add_footer(
            [
                "total",
                f"{len(self.cells)} cells",
                "",
                "",
                "",
                f"{sum(1 for c in self.checked if c.passed)}/"
                f"{len(self.checked)} pass",
            ]
        )
        return table.render()


def _finite_mean(values: list[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return sum(finite) / len(finite) if finite else math.inf


def fidelity_from_analyses(
    analyses, domain: str = "embedded", include_table4: bool = False
) -> FidelityReport:
    """Compare already-computed :class:`AppAnalysis` results to the paper."""
    from repro.experiments.table3 import table3_from

    report = FidelityReport(domain=domain, apps=[a.name for a in analyses])
    cells = report.cells

    # -- Table III: the calibrated constants (strict) -------------------------
    t3 = table3_from(analyses)
    for stage, paper_mean in PAPER_TABLE3_MEAN.items():
        cells.append(
            CellCheck(
                "III", "Average", stage.capitalize(), paper_mean,
                t3.means[stage], mode="rel", rel_tol=TABLE3_MEAN_TOL[stage],
                note=f"over {t3.samples} implemented candidates",
            )
        )
        cells.append(
            CellCheck(
                "III", "Stdev", stage.capitalize(), PAPER_TABLE3_STD[stage],
                t3.stdevs[stage], mode="info",
            )
        )
    cells.append(
        CellCheck(
            "III", "Average", "Sum", PAPER_TABLE3_SUM, t3.constant_sum,
            mode="rel", rel_tol=0.05,
        )
    )
    cells.append(
        CellCheck(
            "III", "share", "Bitgen", PAPER_BITGEN_SHARE, t3.bitgen_share,
            mode="rel", rel_tol=0.10, note="Bitgen dominates (~85 %)",
        )
    )

    from repro.fpga.timingmodel import CadTimingModel

    cells.append(
        CellCheck(
            "III", "full", "Bitgen", PAPER_FULL_BITSTREAM_S,
            CadTimingModel().full_bitstream_seconds(),
            mode="rel", rel_tol=0.05, note="non-EAPR full-device bitstream",
        )
    )

    # -- structural invariants (strict) ---------------------------------------
    for a in analyses:
        cells.append(
            CellCheck(
                "struct", a.name, "kernel freq %", KERNEL_FREQ_MIN_PCT,
                a.kernel.freq_pct, mode="min",
                note="90 % kernel threshold (Section IV-C)",
            )
        )
        cells.append(
            CellCheck(
                "struct", a.name, "search [s]", SEARCH_SECONDS_MAX,
                a.search_pruned.search_seconds, mode="max",
                note="candidate search is milliseconds (Table II)",
            )
        )

    # -- Table I / II domain aggregates ---------------------------------------
    for dom in ("scientific", "embedded"):
        rows = [a for a in analyses if a.domain == dom]
        if not rows:
            continue
        paper = PAPER_AVERAGES[dom]
        n = len(rows)
        measured = {
            "vm_ratio": sum(a.runtime.ratio for a in rows) / n,
            "asip_upper_ratio": sum(a.asip_max.ratio for a in rows) / n,
            "asip_pruned_ratio": sum(a.asip_pruned.ratio for a in rows) / n,
            "kernel_size_pct": sum(a.kernel.size_pct for a in rows) / n,
            "kernel_freq_pct": sum(a.kernel.freq_pct for a in rows) / n,
            "search_ms": sum(
                a.search_pruned.search_seconds * 1000.0 for a in rows
            ) / n,
            "candidates": sum(
                a.specialization.candidate_count for a in rows
            ) / n,
            "const_s": sum(a.specialization.const_seconds for a in rows) / n,
            "toolflow_s": sum(
                a.specialization.toolflow_seconds for a in rows
            ) / n,
            "break_even_s": _finite_mean(
                [a.breakeven.live_aware_seconds for a in rows]
            ),
        }
        label = "AVG-S" if dom == "scientific" else "AVG-E"
        for column, value in measured.items():
            cells.append(
                CellCheck(
                    "I/II", label, column, paper[column], value, mode="info"
                )
            )
        if dom == "embedded":
            cells.append(
                CellCheck(
                    "II", label, "break even [s]", EMBEDDED_BREAK_EVEN_MAX_S,
                    measured["break_even_s"], mode="max",
                    note="headline: embedded amortize in under two hours",
                )
            )

    # -- Table IV extrapolation factor (optional, needs the embedded suite) ---
    if include_table4 and any(a.domain == "embedded" for a in analyses):
        from repro.experiments.table4 import generate_table4

        grid = generate_table4().grid
        base = grid.at(0, 0)
        improved = grid.at(30, 30)
        factor = base / improved if improved > 0 else math.inf
        cells.append(
            CellCheck(
                "IV", "0/0 vs 30/30", "factor", PAPER_TABLE4_FACTOR_30_30,
                factor, mode="rel", rel_tol=0.10,
                note="caching + faster CAD halve embedded break-even",
            )
        )
    return report


def run_fidelity(
    domain: str = "embedded",
    out=None,
    include_table4: bool = False,
    jobs: int = 1,
    backend: str = "process",
    cache=None,
) -> FidelityReport:
    """Run the analysis suite for *domain* and compare it to the paper.

    ``domain`` is "embedded", "scientific" or "all". When *out* is given the
    report is also written there as ``BENCH_*.json``. *jobs*/*backend*/
    *cache* are forwarded to the suite runner; they change the wall clock,
    not the compared cells.
    """
    from repro.experiments.runner import analyze_suite
    from repro.obs.tracer import get_tracer

    if domain not in ("embedded", "scientific", "all"):
        raise ValueError(f"unknown domain {domain!r}")
    t0 = time.perf_counter()
    with get_tracer().span("fidelity.run", domain=domain):
        analyses = analyze_suite(
            None if domain == "all" else domain,
            jobs=jobs,
            backend=backend,
            cache=cache,
        )
        report = fidelity_from_analyses(
            analyses, domain=domain, include_table4=include_table4
        )
    report.wall_seconds = time.perf_counter() - t0
    if out is not None:
        report.write(out)
    from repro.obs.ledger import current_run

    recorder = current_run()
    if recorder is not None:
        recorder.attach_fidelity(report)
        if out is not None:
            recorder.artifacts.setdefault("fidelity_report", str(out))
    return report


def default_report_path(domain: str) -> str:
    return f"BENCH_fidelity_{domain}.json"
