"""Run ledger: every recorded run becomes a durable, diffable artifact.

The paper's argument is quantitative — per-stage CAD overheads (Tables
II/III) and break-even times — so a change to the pruning filter or the
PPC405 cost model must be checkable against *history*, not just against
one fresh run. The ledger is that history: an append-only on-disk store
(default ``.repro-runs/``), one directory per run holding

- ``manifest.json`` — run id, timestamp, git revision, command/argv and
  config, environment, wall time, per-stage span totals folded from the
  tracer (real and virtual clocks), the metrics snapshot, per-app scalar
  results (speedups, candidate counts, break-even times), the fidelity
  cell outcomes when a fidelity comparison ran, and artifact paths;
- ``trace.jsonl`` — the full span trace of the run;
- ``log.jsonl`` — the structured event log of the run.

Recording is behind the CLI's ``--ledger`` flag (and the ``ledger=``
parameter of :func:`repro.experiments.runner.analyze_suite`): a
:class:`RunRecorder` is opened before the command runs, enriched by the
layers that own the data (the runner attaches scalars, the fidelity
harness attaches its cell outcomes), and finalized afterwards. The
regression sentinel (:mod:`repro.obs.regress`) compares two manifests
cell by cell.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.export import PAPER_STAGE_LABELS, SpanRecord, export_tracer, tracer_records
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Default on-disk location of the ledger (git-ignored).
DEFAULT_LEDGER_DIR = ".repro-runs"

#: Manifest schema identifier (bump on breaking changes).
MANIFEST_SCHEMA = "repro-run/1"

_RUN_ID_RE = re.compile(r"^r(\d+)-")
_LATEST_RE = re.compile(r"^latest(?:~(\d+))?$")


def _json_safe(value):
    """JSON-encodable view of *value*; non-finite floats become None."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def git_revision(cwd=None) -> str | None:
    """Current ``HEAD`` revision, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def environment_info() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "argv0": sys.argv[0] if sys.argv else None,
    }


def fold_stages(records: list[SpanRecord]) -> dict:
    """Aggregate a trace into per-span-name totals on both clocks.

    Returns ``{name: {label, spans, real_seconds, virtual_seconds}}``
    where ``label`` is the paper column name for Table II/III stages and
    ``virtual_seconds`` is None for span names that never carried one.
    """
    stages: dict[str, dict] = {}
    for rec in records:
        entry = stages.setdefault(
            rec.name,
            {
                "label": PAPER_STAGE_LABELS.get(rec.name),
                "spans": 0,
                "real_seconds": 0.0,
                "virtual_seconds": None,
            },
        )
        entry["spans"] += 1
        entry["real_seconds"] += rec.duration
        virtual = rec.virtual_seconds
        if virtual is not None:
            entry["virtual_seconds"] = (entry["virtual_seconds"] or 0.0) + virtual
    for entry in stages.values():
        entry["real_seconds"] = round(entry["real_seconds"], 9)
        if entry["virtual_seconds"] is not None:
            entry["virtual_seconds"] = round(entry["virtual_seconds"], 9)
    return stages


def scalars_from_analyses(analyses) -> dict:
    """Per-app and aggregate scalar results from :class:`AppAnalysis` rows.

    These are the manifest cells the regression sentinel gates on: they
    are deterministic for a fixed config (only ``search_ms`` is measured
    wall clock, and the sentinel treats it as noise by default).
    """
    apps: dict[str, dict] = {}
    for a in analyses:
        be = a.breakeven.live_aware_seconds
        apps[a.name] = {
            "domain": a.domain,
            "candidates": a.specialization.candidate_count,
            "candidates_failed": len(a.specialization.failed),
            "vm_ratio": round(a.runtime.ratio, 9),
            "asip_upper_ratio": round(a.asip_max.ratio, 9),
            "asip_pruned_ratio": round(a.asip_pruned.ratio, 9),
            "kernel_size_pct": round(a.kernel.size_pct, 9),
            "kernel_freq_pct": round(a.kernel.freq_pct, 9),
            "search_ms": round(a.search_pruned.search_seconds * 1000.0, 6),
            "const_seconds": round(a.specialization.const_seconds, 9),
            "toolflow_seconds": round(a.specialization.toolflow_seconds, 9),
            "break_even_seconds": (
                round(be, 6) if math.isfinite(be) else None
            ),
        }
    n = len(apps)
    aggregate: dict = {"apps": n}
    if n:
        aggregate.update(
            {
                "candidates_total": sum(v["candidates"] for v in apps.values()),
                "asip_pruned_ratio_mean": round(
                    sum(v["asip_pruned_ratio"] for v in apps.values()) / n, 9
                ),
                "toolflow_seconds_sum": round(
                    sum(v["toolflow_seconds"] for v in apps.values()), 9
                ),
            }
        )
        finite_be = [
            v["break_even_seconds"]
            for v in apps.values()
            if v["break_even_seconds"] is not None
        ]
        aggregate["break_even_seconds_mean"] = (
            round(sum(finite_be) / len(finite_be), 6) if finite_be else None
        )
    return {"per_app": apps, "aggregate": aggregate}


@dataclass
class RunLedger:
    """Append-only store of run manifests under one root directory."""

    root: str | os.PathLike = DEFAULT_LEDGER_DIR

    @property
    def path(self) -> Path:
        return Path(self.root)

    # -- enumeration ---------------------------------------------------------
    def run_ids(self) -> list[str]:
        """Finished run ids (those with a manifest), oldest first."""
        if not self.path.is_dir():
            return []
        ids = [
            entry.name
            for entry in self.path.iterdir()
            if entry.is_dir() and (entry / "manifest.json").is_file()
        ]
        return sorted(ids, key=self._sort_key)

    @staticmethod
    def _sort_key(run_id: str):
        m = _RUN_ID_RE.match(run_id)
        return (int(m.group(1)) if m else 0, run_id)

    def run_dir(self, run_id: str) -> Path:
        return self.path / run_id

    def load(self, run_id: str) -> dict:
        manifest_path = self.run_dir(run_id) / "manifest.json"
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except OSError as exc:
            raise LookupError(f"no manifest for run {run_id!r}: {exc}") from None

    def manifests(self) -> list[dict]:
        return [self.load(run_id) for run_id in self.run_ids()]

    def resolve(self, spec: str) -> str:
        """Resolve ``latest``, ``latest~N``, an exact id, or a unique prefix."""
        ids = self.run_ids()
        if not ids:
            raise LookupError(
                f"run ledger {self.path} is empty (record a run with --ledger first)"
            )
        m = _LATEST_RE.match(spec)
        if m:
            back = int(m.group(1) or 0)
            if back >= len(ids):
                raise LookupError(
                    f"{spec!r} is out of range: only {len(ids)} run(s) recorded"
                )
            return ids[-1 - back]
        if spec in ids:
            return spec
        matches = [run_id for run_id in ids if run_id.startswith(spec)]
        if len(matches) == 1:
            return matches[0]
        if matches:
            raise LookupError(
                f"ambiguous run {spec!r}: matches {', '.join(matches)}"
            )
        raise LookupError(f"unknown run {spec!r} in ledger {self.path}")

    # -- post-hoc enrichment -------------------------------------------------
    def attach_block(
        self, run_id: str, name: str, payload: dict, merge: bool = True
    ) -> Path:
        """Add (or merge into) a named block of a finished run's manifest.

        Post-hoc analyses over a recorded run (``repro critpath``,
        ``repro whatif``) persist their outputs here so the regression
        sentinel can gate them like any other manifest cell. The rewrite
        is atomic (temp file + :func:`os.replace`); with *merge*, an
        existing dict block keeps keys the new payload doesn't set (e.g.
        a what-if scenario recorded after a what-if grid).
        """
        manifest = self.load(run_id)
        existing = manifest.get(name)
        if merge and isinstance(existing, dict) and isinstance(payload, dict):
            merged = dict(existing)
            merged.update(payload)
            payload = merged
        manifest[name] = _json_safe(payload)
        manifest_path = self.run_dir(run_id) / "manifest.json"
        tmp = manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, manifest_path)
        return manifest_path

    # -- garbage collection --------------------------------------------------
    def prune(self, keep: int, compact: bool = True) -> list[str]:
        """Delete the oldest finished runs beyond the *keep* newest.

        A run that is currently being recorded is never removed: unfinished
        run directories have no manifest (so they are not enumerated), and
        the process-global :func:`current_run` recorder's directory is
        skipped explicitly as well. Returns the removed run ids.

        With *compact* (the default), each pruned run's flattened manifest
        cells are first appended to the ledger's ``history.jsonl`` summary
        (:mod:`repro.obs.history`), so trend analysis and history-derived
        noise bands survive garbage collection.
        """
        if keep < 0:
            raise ValueError("--keep must be >= 0")
        ids = self.run_ids()
        excess = ids[: max(0, len(ids) - keep)]
        active = current_run()
        active_dir = (
            active.run_dir.resolve()
            if active is not None and active.run_dir.exists()
            else None
        )
        removed: list[str] = []
        for run_id in excess:
            run_dir = self.run_dir(run_id)
            if active_dir is not None and run_dir.resolve() == active_dir:
                continue  # refuse to delete the run being recorded
            if compact:
                from repro.obs.history import append_history

                try:
                    manifest = self.load(run_id)
                except LookupError:
                    manifest = None
                if manifest is not None:
                    append_history(self, [manifest])
            shutil.rmtree(run_dir)
            removed.append(run_id)
        return removed

    # -- recording -----------------------------------------------------------
    def reserve_run(self, command: str) -> str:
        """Allocate and create the next run directory; returns its id."""
        slug = re.sub(r"[^a-z0-9]+", "-", command.lower()).strip("-") or "run"
        stamp = time.strftime("%Y%m%dT%H%M%S")
        seq = 1 + max(
            (
                int(m.group(1))
                for entry in (self.path.iterdir() if self.path.is_dir() else ())
                if (m := _RUN_ID_RE.match(entry.name))
            ),
            default=0,
        )
        self.path.mkdir(parents=True, exist_ok=True)
        while True:
            run_id = f"r{seq:04d}-{slug}-{stamp}"
            try:
                self.run_dir(run_id).mkdir(exist_ok=False)
                return run_id
            except FileExistsError:
                seq += 1


@dataclass
class RunRecorder:
    """One in-flight recorded run; enriched by the layers that own data."""

    ledger: RunLedger
    run_id: str
    command: str
    config: dict = field(default_factory=dict)
    argv: list[str] = field(default_factory=list)
    started: float = field(default_factory=time.perf_counter)
    scalars: dict | None = None
    fidelity: dict | None = None
    cache: dict | None = None
    serve: dict | None = None
    artifacts: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def run_dir(self) -> Path:
        return self.ledger.run_dir(self.run_id)

    def attach_scalars(self, scalars: dict) -> None:
        self.scalars = scalars

    def attach_cache(self, stats: dict) -> None:
        """Record persistent bitstream-cache statistics for this run.

        The regression sentinel reports these cells as informational and
        demotes the ``cad.*`` work cells when two compared runs used the
        cache differently (a warm run legitimately skips CAD work).
        """
        self.cache = dict(stats)

    def attach_serve(self, summary: dict) -> None:
        """Record a serve-plane summary (daemon or loadgen) for this run.

        One server (or load-generation) run is one ledger run; the summary
        holds the request counters, dedup savings, per-tenant cache stats
        and latency quantiles that :func:`repro.obs.regress.flatten_cells`
        exposes as ``serve.*`` cells. Per-request child records live in a
        ``requests.jsonl`` artifact next to the manifest, not inline.
        """
        if self.serve is None:
            self.serve = {}
        self.serve.update(summary)

    def attach_extra(self, name: str, payload: dict) -> None:
        """Attach a named top-level manifest block (e.g. ``vm``).

        The manifest's key set is otherwise fixed; extras let subsystems
        like the VM observatory persist their own block without widening
        the recorder for each one. A reserved manifest key is rejected so
        an extra can never shadow core evidence.
        """
        reserved = {
            "schema", "run_id", "timestamp", "command", "argv", "config",
            "git_rev", "environment", "status", "wall_seconds", "stages",
            "metrics", "scalars", "fidelity", "cache", "serve", "artifacts",
        }
        if name in reserved:
            raise ValueError(f"extra block name {name!r} is reserved")
        self.extras[name] = payload

    def attach_fidelity(self, report) -> None:
        """Record a :class:`repro.obs.fidelity.FidelityReport`'s cells."""
        self.fidelity = {
            "ok": report.ok,
            "checked": len(report.checked),
            "failed": len(report.failures),
            "cells": {
                f"{c.table}/{c.row}/{c.column}": {
                    "mode": c.mode,
                    "expected": c.expected,
                    "actual": c.actual,
                    "rel_error": c.rel_error,
                    "passed": c.passed,
                }
                for c in report.cells
            },
        }

    def finalize(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        status: int | None = 0,
        log_path=None,
    ) -> Path:
        """Fold the run's evidence into ``manifest.json``; returns its path."""
        stages: dict = {}
        if tracer is not None:
            if getattr(tracer, "flush_path", None) is not None:
                # Long-running (daemon) tracer with an incremental JSONL
                # sink: complete the flush and fold stages from the file —
                # rewriting from memory would clobber the flushed prefix.
                from repro.obs.export import read_jsonl

                tracer.flush_all()
                tracer.close_flush()
                flush_path = Path(tracer.flush_path)
                records = read_jsonl(flush_path) if flush_path.is_file() else []
                stages = fold_stages(records)
                if records:
                    try:
                        rel = flush_path.relative_to(self.run_dir)
                        self.artifacts.setdefault("trace", str(rel))
                    except ValueError:
                        self.artifacts.setdefault("trace", str(flush_path))
            else:
                records = tracer_records(tracer)
                stages = fold_stages(records)
                if records:
                    export_tracer(tracer, self.run_dir / "trace.jsonl")
                    self.artifacts.setdefault("trace", "trace.jsonl")
        if log_path is not None:
            log_path = Path(log_path)
            if log_path.is_file():
                try:
                    rel = log_path.relative_to(self.run_dir)
                    self.artifacts.setdefault("log", str(rel))
                except ValueError:
                    self.artifacts.setdefault("log", str(log_path))
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "command": self.command,
            "argv": list(self.argv),
            "config": _json_safe(self.config),
            "git_rev": git_revision(),
            "environment": environment_info(),
            "status": status,
            "wall_seconds": round(time.perf_counter() - self.started, 6),
            "stages": _json_safe(stages),
            "metrics": _json_safe(metrics.snapshot()) if metrics else None,
            "scalars": _json_safe(self.scalars),
            "fidelity": _json_safe(self.fidelity),
            "cache": _json_safe(self.cache),
            "serve": _json_safe(self.serve),
            "artifacts": _json_safe(self.artifacts),
        }
        for name, payload in self.extras.items():
            manifest[name] = _json_safe(payload)
        manifest_path = self.run_dir / "manifest.json"
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
            fh.write("\n")
        return manifest_path


# -- process-global current run ------------------------------------------------
# The CLI (or analyze_suite) opens one recorder per process; inner layers
# (runner scalars, fidelity cells) enrich it through current_run() without
# any plumbing through the call graph.
_current_run: RunRecorder | None = None


def current_run() -> RunRecorder | None:
    return _current_run


def start_run(
    ledger: RunLedger | str | os.PathLike,
    command: str,
    config: dict | None = None,
    argv: list[str] | None = None,
) -> RunRecorder:
    """Open a recorder as the process-global current run."""
    global _current_run
    if _current_run is not None:
        raise RuntimeError(
            f"a recorded run is already active ({_current_run.run_id})"
        )
    if not isinstance(ledger, RunLedger):
        ledger = RunLedger(ledger)
    recorder = RunRecorder(
        ledger=ledger,
        run_id=ledger.reserve_run(command),
        command=command,
        config=dict(config or {}),
        argv=list(argv or []),
    )
    _current_run = recorder
    return recorder


def finish_run(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    status: int | None = 0,
    log_path=None,
) -> Path | None:
    """Finalize and clear the current run; returns the manifest path."""
    global _current_run
    recorder = _current_run
    _current_run = None
    if recorder is None:
        return None
    return recorder.finalize(
        tracer=tracer, metrics=metrics, status=status, log_path=log_path
    )


def abandon_run() -> None:
    """Drop the current recorder without writing a manifest."""
    global _current_run
    _current_run = None


def prune_runs(
    ledger: RunLedger | str | os.PathLike, keep: int, compact: bool = True
) -> list[str]:
    """Delete the oldest ledger runs beyond *keep*; see :meth:`RunLedger.prune`."""
    if not isinstance(ledger, RunLedger):
        ledger = RunLedger(ledger)
    return ledger.prune(keep, compact=compact)


# -- ASCII renderings ----------------------------------------------------------
def render_run_list(manifests: list[dict]) -> str:
    """One-line-per-run table for ``repro runs list``."""
    from repro.util.tables import Table

    table = Table(
        columns=["run", "when", "command", "config", "wall [s]", "status"],
        title="Recorded runs (oldest first)",
    )
    for m in manifests:
        config = {
            k: v
            for k, v in (m.get("config") or {}).items()
            if k != "command" and v not in (None, False)
        }
        config_text = " ".join(f"{k}={v}" for k, v in sorted(config.items()))
        fidelity = m.get("fidelity")
        status = "ok" if m.get("status") == 0 else f"status={m.get('status')}"
        if fidelity and fidelity.get("failed"):
            status += f" fid:{fidelity['failed']}F"
        table.add_row(
            [
                m.get("run_id", "?"),
                m.get("timestamp", "?"),
                m.get("command", "?"),
                config_text or "-",
                f"{m.get('wall_seconds', 0.0):.2f}",
                status,
            ]
        )
    return table.render()


def render_manifest(manifest: dict) -> str:
    """Full ASCII rendering of one manifest for ``repro runs show``."""
    from repro.util.tables import Table

    lines = [
        f"run:       {manifest.get('run_id')}",
        f"when:      {manifest.get('timestamp')}",
        f"command:   {manifest.get('command')}  "
        f"(argv: {' '.join(manifest.get('argv') or []) or '-'})",
        f"git rev:   {manifest.get('git_rev') or '-'}",
        f"status:    {manifest.get('status')}   "
        f"wall: {manifest.get('wall_seconds', 0.0):.2f} s",
        f"config:    {json.dumps(manifest.get('config') or {}, sort_keys=True)}",
    ]
    stages = manifest.get("stages") or {}
    if stages:
        table = Table(
            columns=["stage", "label", "spans", "real [s]", "virtual [s]"],
            title="Per-stage totals",
        )
        for name in sorted(
            stages, key=lambda n: -(stages[n].get("virtual_seconds") or 0.0)
        ):
            st = stages[name]
            virtual = st.get("virtual_seconds")
            table.add_row(
                [
                    name,
                    st.get("label") or "-",
                    st.get("spans", 0),
                    f"{st.get('real_seconds', 0.0):.4f}",
                    f"{virtual:.2f}" if virtual is not None else "-",
                ]
            )
        lines += ["", table.render()]
    scalars = manifest.get("scalars") or {}
    per_app = scalars.get("per_app") or {}
    if per_app:
        table = Table(
            columns=[
                "app", "candidates", "ASIP ratio", "tool flow [s]",
                "break-even [s]",
            ],
            title="Per-application results",
        )
        for name, row in per_app.items():
            be = row.get("break_even_seconds")
            table.add_row(
                [
                    name,
                    row.get("candidates", 0),
                    f"{row.get('asip_pruned_ratio', 0.0):.2f}",
                    f"{row.get('toolflow_seconds', 0.0):.1f}",
                    f"{be:.0f}" if be is not None else "never",
                ]
            )
        lines += ["", table.render()]
    fidelity = manifest.get("fidelity")
    if fidelity:
        lines += [
            "",
            f"fidelity:  {'ok' if fidelity.get('ok') else 'FAILING'} "
            f"({fidelity.get('checked', 0)} checked, "
            f"{fidelity.get('failed', 0)} failed)",
        ]
    serve = manifest.get("serve")
    if serve:
        requests = serve.get("requests") or {}
        latency = serve.get("latency") or {}
        be = (latency.get("break_even") or {})
        shutdown = serve.get("shutdown") or "-"
        lines += [
            "",
            f"serve:     {requests.get('completed', 0)} completed / "
            f"{requests.get('rejected', 0)} rejected / "
            f"{requests.get('failed', 0)} failed, "
            f"dedup saved {(serve.get('dedup') or {}).get('saved', 0)}, "
            f"shutdown {shutdown}",
        ]
        if be.get("p95") is not None:
            lines += [
                f"           break-even p50/p95/p99 [s]: "
                f"{be.get('p50'):.0f} / {be.get('p95'):.0f} / {be.get('p99'):.0f}"
            ]
    critpath = manifest.get("critpath")
    if critpath:
        virt = critpath.get("virtual") or {}
        lines += [
            "",
            f"critpath:  dominant {virt.get('dominant_stage') or '-'} "
            f"(virtual makespan {virt.get('makespan') or 0.0:.2f} s, "
            f"serial {virt.get('serial_seconds') or 0.0:.2f} s)",
        ]
    mix = manifest.get("mix")
    if mix:
        gate = mix.get("gate") or {}
        cell_count = sum(
            len(caps)
            for policies in (mix.get("cells") or {}).values()
            for caps in policies.values()
        )
        verdict = gate.get("breakeven_beats_lru")
        lines += [
            "",
            f"mix:       {cell_count} cells, "
            f"{mix.get('events', 0)} events/trace, "
            f"contended {gate.get('contended_preset') or '-'}"
            f"/c{gate.get('contended_capacity') or 0}, "
            "breakeven-vs-lru "
            + (
                "wins"
                if verdict
                else ("LOSES" if verdict is not None else "-")
            ),
        ]
    whatif_check = (manifest.get("whatif") or {}).get("check")
    if whatif_check:
        flagged = whatif_check.get("flagged", 0)
        lines += [
            f"whatif:    grid {'ok' if not flagged else 'DIVERGED'} "
            f"({whatif_check.get('checked', 0)} cells, {flagged} flagged)",
        ]
    artifacts = manifest.get("artifacts") or {}
    if artifacts:
        lines += [
            "",
            "artifacts: "
            + ", ".join(f"{k}={v}" for k, v in sorted(artifacts.items())),
        ]
    return "\n".join(lines)
