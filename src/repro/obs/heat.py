"""Per-basic-block heat annotations: profile counts x PPC405 cost model.

Table I's kernel columns (size %, freq %) summarize where virtual execution
time concentrates; this module makes the underlying block-level picture
visible. It merges :class:`repro.vm.profiler.ExecutionProfile` execution
counts with a CPU cost model into per-block heat (cycles, time share), flags
the kernel blocks computed by :func:`repro.profiling.kernel.compute_kernel`,
and renders the result as an annotated IR listing through
:mod:`repro.ir.printer` — each block label carries its time-share percent,
execution count, and a ``[kernel]`` marker; blocks that never executed are
marked cold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ir.module import Module
from repro.ir.printer import print_function
from repro.profiling.kernel import KernelAnalysis, compute_kernel
from repro.util.tables import Table
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import BlockKey, ExecutionProfile


@dataclass
class BlockHeat:
    """Heat data of one basic block."""

    function: str
    block: str
    count: int
    static_instructions: int
    cycles: float
    share: float  # fraction of the run's total cycles
    in_kernel: bool

    @property
    def key(self) -> BlockKey:
        return (self.function, self.block)


@dataclass
class HeatMap:
    """Block heat of one profiled run, plus the kernel it implies."""

    module_name: str
    blocks: dict[BlockKey, BlockHeat]
    kernel: KernelAnalysis
    total_cycles: float

    def hottest(self, n: int | None = None) -> list[BlockHeat]:
        ranked = sorted(
            self.blocks.values(), key=lambda b: (-b.cycles, b.key)
        )
        return ranked if n is None else ranked[: max(0, n)]

    def annotation(self, function: str, block: str) -> str | None:
        """Block-label comment for the IR printer (None = unknown block)."""
        heat = self.blocks.get((function, block))
        if heat is None:
            return None
        if heat.count == 0:
            return "cold"
        note = f"{100.0 * heat.share:5.1f}% time, {heat.count} runs"
        if heat.in_kernel:
            note += " [kernel]"
        return note

    def annotator(self) -> Callable[[str, str], str | None]:
        return self.annotation


def compute_heat(
    module: Module,
    profile: ExecutionProfile,
    cost_model: CostModel = PPC405_COST_MODEL,
    kernel_threshold: float = 0.90,
) -> HeatMap:
    """Merge *profile* counts with *cost_model* into per-block heat.

    Every block of the module appears in the result; blocks absent from the
    profile get count 0 (cold — the dead/const code of Table I).
    """
    kernel = compute_kernel(
        module, profile, threshold=kernel_threshold, cost_model=cost_model
    )
    cycles = profile.block_cycles(module, cost_model)
    total = sum(cycles.values())
    kernel_blocks = kernel.block_set

    blocks: dict[BlockKey, BlockHeat] = {}
    for func in module.defined_functions():
        for block in func.blocks:
            key = (func.name, block.name)
            spent = cycles.get(key, 0.0)
            blocks[key] = BlockHeat(
                function=func.name,
                block=block.name,
                count=profile.count_of(*key),
                static_instructions=len(block.instructions),
                cycles=spent,
                share=spent / total if total > 0 else 0.0,
                in_kernel=key in kernel_blocks,
            )
    return HeatMap(
        module_name=module.name,
        blocks=blocks,
        kernel=kernel,
        total_cycles=total,
    )


def heat_table(heat: HeatMap, top: int = 10) -> Table:
    """Top-N hottest blocks (the per-block view behind Table I's columns)."""
    table = Table(
        columns=["function", "block", "runs", "ins", "cycles", "time %", "kernel"],
        title=f"Hottest blocks of {heat.module_name}",
    )
    for b in heat.hottest(top):
        table.add_row(
            [
                b.function,
                b.block,
                b.count,
                b.static_instructions,
                f"{b.cycles:.0f}",
                f"{100.0 * b.share:.1f}",
                "yes" if b.in_kernel else "",
            ]
        )
    k = heat.kernel
    table.add_footer(
        [
            "kernel",
            f"{len(k.blocks)} blocks",
            "",
            k.kernel_instructions,
            "",
            f"{k.freq_pct:.1f}",
            f"size {k.size_pct:.1f}%",
        ]
    )
    return table


def render_heat(
    module: Module,
    heat: HeatMap,
    function: str | None = None,
    top: int = 10,
) -> str:
    """Hot-block table plus the heat-annotated IR listing.

    With *function* set, only that function's listing is printed; otherwise
    functions are printed hottest-first.
    """
    k = heat.kernel
    parts = [
        f"; {heat.module_name}: kernel {len(k.blocks)} blocks / "
        f"{k.kernel_instructions} of {k.total_instructions} instructions "
        f"(size {k.size_pct:.1f}%, freq {k.freq_pct:.1f}%)",
        heat_table(heat, top=top).render(),
    ]
    annotate = heat.annotator()
    funcs = [f for f in module.defined_functions()]
    if function is not None:
        funcs = [f for f in funcs if f.name == function]
        if not funcs:
            raise KeyError(f"module {heat.module_name} has no function {function!r}")
    else:
        by_func: dict[str, float] = {}
        for b in heat.blocks.values():
            by_func[b.function] = by_func.get(b.function, 0.0) + b.cycles
        funcs.sort(key=lambda f: -by_func.get(f.name, 0.0))
    for func in funcs:
        parts.append(print_function(func, annotate=annotate))
    return "\n\n".join(parts)
