"""Structured, leveled JSONL event log correlated to spans and runs.

Spans answer *where the time went* and metrics *how much work happened*;
the event log answers *what happened, in order*: pipeline phase
boundaries, candidate accept/reject decisions, CAD stage completions,
ICAP reconfigurations. Every record is one JSON object per line carrying

- ``ts`` — wall-clock epoch seconds,
- ``level`` — ``debug`` | ``info`` | ``warning`` | ``error``,
- ``event`` — dotted event name (``pipeline.phase``, ``cad.stage``, ...),
- ``run_id`` — the ledger run this record belongs to (``null`` outside a
  recorded run),
- ``span_id`` — the id of the tracer span open at emit time, so a log
  line resolves against the exported trace of the same run,

plus arbitrary event-specific fields. Like the tracer and the metrics
registry, the process-global log is **disabled** until
:func:`enable_logging` is called and instrumentation sites gate on
``get_log().enabled``, so the cost on an unlogged run is one attribute
check.

The record stream is the narrative counterpart to the paper's
aggregate tables: CAD stage events carry the same stage names as
Table III.
"""

from __future__ import annotations

import json
import threading
import time

from repro.obs.tracer import get_tracer

#: Level name -> numeric severity (syslog-ish ordering).
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_no(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r} (expected one of {sorted(LEVELS)})"
        ) from None


class EventLog:
    """Thread-safe leveled event collector with an optional JSONL sink.

    Records always accumulate in memory (so a finished run can be
    inspected programmatically); when a sink is attached each record is
    additionally written through as one JSON line, flushed immediately so
    a crash loses at most the in-flight record.
    """

    def __init__(
        self,
        enabled: bool = True,
        level: str = "debug",
        run_id: str | None = None,
    ) -> None:
        self.enabled = enabled
        self.level_no = _level_no(level)
        self.run_id = run_id
        self._sink = None
        self._owns_sink = False
        self._records: list[dict] = []
        self._lock = threading.Lock()

    # -- sink management -----------------------------------------------------
    def open(self, path) -> None:
        """Attach a file sink at *path* (truncating), closing any old one."""
        self.close()
        self._sink = open(path, "w", encoding="utf-8")
        self._owns_sink = True

    def attach(self, fileobj) -> None:
        """Attach an already-open file-like sink (not closed by us)."""
        self.close()
        self._sink = fileobj
        self._owns_sink = False

    def close(self) -> None:
        sink, owns = self._sink, self._owns_sink
        self._sink = None
        self._owns_sink = False
        if sink is not None and owns:
            sink.close()

    # -- recording -----------------------------------------------------------
    def emit(
        self,
        event: str,
        level: str = "info",
        span_id: int | None = None,
        **fields,
    ) -> dict | None:
        """Record one event; returns the record dict (None when dropped)."""
        if not self.enabled or _level_no(level) < self.level_no:
            return None
        tracer = get_tracer()
        if span_id is None:
            current = tracer.current_span()
            span_id = current.span_id if current is not None else None
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
            "run_id": self.run_id,
            "span_id": span_id or None,
        }
        trace_id = tracer.current_trace_id()
        if trace_id is not None:
            # Cross-process correlation: a serve-plane log line resolves
            # against the stitched distributed trace, not just the span.
            record["trace_id"] = trace_id
        record.update(fields)
        with self._lock:
            self._records.append(record)
            if self._sink is not None:
                self._sink.write(json.dumps(record) + "\n")
                self._sink.flush()
        return record

    # -- inspection ----------------------------------------------------------
    def records(self) -> list[dict]:
        """Snapshot of all in-memory records, in emit order."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()


# -- process-global default log ------------------------------------------------
_default_log = EventLog(enabled=False)


def get_log() -> EventLog:
    """The process-global event log all instrumentation sites use."""
    return _default_log


def set_log(log: EventLog) -> EventLog:
    global _default_log
    _default_log = log
    return log


def enable_logging(
    path=None,
    level: str = "debug",
    run_id: str | None = None,
    reset: bool = True,
) -> EventLog:
    """Turn the global event log on, optionally writing through to *path*."""
    log = _default_log
    if reset:
        log.reset()
    log.level_no = _level_no(level)
    log.run_id = run_id
    if path is not None:
        log.open(path)
    log.enabled = True
    return log


def disable_logging() -> EventLog:
    log = _default_log
    log.enabled = False
    log.close()
    return log


def log_enabled() -> bool:
    return _default_log.enabled


def log_event(event: str, level: str = "info", **fields) -> dict | None:
    """Convenience: emit on the global log (no-op when disabled)."""
    return _default_log.emit(event, level=level, **fields)


# -- reading and rendering -----------------------------------------------------
def read_log(path_or_file) -> list[dict]:
    """Load a JSONL event log back into record dicts."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as fh:
            text = fh.read()
    records: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"log line {lineno}: invalid JSON ({exc})") from None
        if not isinstance(obj, dict):
            raise ValueError(f"log line {lineno}: expected an object")
        records.append(obj)
    return records


#: Fields owned by the record envelope (everything else is event payload).
_ENVELOPE_FIELDS = ("ts", "level", "event", "run_id", "span_id", "trace_id")


def render_tail(
    records: list[dict], limit: int = 20, level: str | None = None
) -> str:
    """ASCII tail of an event log: the last *limit* records at >= *level*."""
    if level is not None:
        threshold = _level_no(level)
        records = [
            r for r in records if _level_no(str(r.get("level", "info"))) >= threshold
        ]
    if not records:
        return "(empty event log)"
    tail = records[-limit:] if limit and limit > 0 else list(records)
    lines = []
    for rec in tail:
        ts = rec.get("ts")
        clock = (
            time.strftime("%H:%M:%S", time.localtime(ts))
            + f".{int((ts % 1) * 1000):03d}"
            if isinstance(ts, (int, float))
            else "--:--:--"
        )
        lvl = str(rec.get("level", "info")).upper()[:5]
        payload = " ".join(
            f"{k}={rec[k]}" for k in rec if k not in _ENVELOPE_FIELDS
        )
        correlate = ""
        if rec.get("span_id") is not None:
            correlate = f"  [span {rec['span_id']}]"
        lines.append(
            f"{clock} {lvl:7s} {rec.get('event', '?'):24s} {payload}{correlate}"
        )
    if len(records) > len(tail):
        lines.insert(0, f"... ({len(records) - len(tail)} earlier records)")
    return "\n".join(lines)
