"""Critical-path analysis of a recorded specialization run.

The paper answers "is JIT ISE feasible?" with per-stage overhead tables
(Tables II/III) and break-even times (Section V-D); what it cannot show
from aggregates alone is *which* stage bounds the process — where the
critical path sits and how much headroom a faster stage would buy. This
module reconstructs the specialization DAG of Figure 2 from a recorded
span trace (candidate search -> per-candidate CAD stage chains -> ICAP
reconfiguration = instruction activation), honoring the ``cached``
(bitstream-cache hit) and ``shared`` span attributes, and runs classic
CPM (earliest/latest start-finish) over it on both clocks:

- **virtual** — the modelled Table III stage runtimes; the critical path
  here names the CAD bottleneck (Bitgen, ~151 s of the ~178 s
  per-candidate chain);
- **real** — measured ``perf_counter`` durations; here candidate search
  and profiling dominate because the CAD stages are simulated.

Dependencies in the DAG: an application's candidate chains only depend on
its search (they could run on parallel CAD workers), stages within one
candidate are sequential, and ICAP writes serialize in ``custom_id``
order. The recorded 1-worker schedule is the serial sum of all weights;
the CPM makespan is the unbounded-worker lower bound, and per-node slack
says how far a stage can stretch without moving break-even.

The Amdahl-style headroom table reuses
:class:`repro.core.breakeven.BreakEvenModel`: for each stage it reports
the break-even time that would result from speeding *only that stage* up
by k in {1.5x, 2x, 5x, 10x, inf} — the trace-driven answer to "what
single change moves break-even most" (the same question Table IV asks
analytically for caching and a uniformly faster CAD flow).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.export import SpanRecord, _fmt_seconds
from repro.util.tables import Table
from repro.util.timefmt import format_hhmmss

#: Short stage keys in per-candidate chain order (Table III columns).
STAGE_KEYS: tuple[str, ...] = ("c2v", "syn", "xst", "tra", "map", "par", "bitgen")

#: Span name -> short stage key for the CAD stage spans.
SPAN_TO_STAGE: dict[str, str] = {
    "cad.c2v": "c2v",
    "cad.syntax": "syn",
    "cad.synthesis": "xst",
    "cad.translate": "tra",
    "cad.map": "map",
    "cad.par": "par",
    "cad.bitgen": "bitgen",
}

#: Display labels (paper column names) for every DAG stage kind.
STAGE_LABELS: dict[str, str] = {
    "search": "Search",
    "c2v": "C2V",
    "syn": "Syn",
    "xst": "Xst",
    "tra": "Tra",
    "map": "Map",
    "par": "PAR",
    "bitgen": "Bitgen",
    "icap": "ICAP",
}

#: Table III's constant stages. Map and PAR scale with candidate size and
#: are excluded from the paper's constant-overhead table; for large
#: candidates they can dominate the chain even though Bitgen dominates
#: the constant portion (~151 s of the ~178 s constant sum).
CONSTANT_STAGE_KEYS: tuple[str, ...] = ("c2v", "syn", "xst", "tra", "bitgen")

#: Headroom speedup factors (k = how much faster the stage runs).
HEADROOM_FACTORS: tuple[float, ...] = (1.5, 2.0, 5.0, 10.0, math.inf)

_EPS = 1e-12


def _factor_label(k: float) -> str:
    return "inf" if math.isinf(k) else f"{k:g}x"


# -- trace -> replay model -----------------------------------------------------
@dataclass
class CandidateReplay:
    """One implemented candidate as reconstructed from the trace."""

    custom_id: int
    key: str | None
    virtual_total: float  # modelled CAD chain seconds (Table III total)
    real_total: float  # measured span duration
    icap_virtual: float  # ICAP reconfiguration seconds (activation)
    icap_real: float
    from_cache: bool = False  # served by the persistent bitstream cache
    shared: bool = False  # reused a structurally equal implementation
    stage_virtual: dict[str, float] | None = None
    stage_real: dict[str, float] | None = None
    split_estimated: bool = False  # stage split backfilled from run averages

    def virtual_stage(self, stage: str) -> float:
        """Virtual seconds of one stage (0.0 when no split is known)."""
        if self.stage_virtual is None:
            return 0.0
        return self.stage_virtual.get(stage, 0.0)


@dataclass
class AppReplay:
    """One application's specialization process from the trace."""

    name: str
    search_virtual: float  # == the measured search_seconds (Table II)
    search_real: float
    candidates: list[CandidateReplay] = field(default_factory=list)
    failed: int = 0  # candidates whose CAD implementation failed

    @property
    def toolflow_virtual(self) -> float:
        return sum(c.virtual_total for c in self.candidates)

    @property
    def icap_virtual(self) -> float:
        return sum(c.icap_virtual for c in self.candidates)

    @property
    def overhead_virtual(self) -> float:
        """Recorded serial overhead: search + CAD chains + ICAP writes."""
        return self.search_virtual + self.toolflow_virtual + self.icap_virtual

    def stage_total(self, stage: str, clock: str = "virtual") -> float:
        """Summed weight of one stage kind over the whole app."""
        if stage == "search":
            return self.search_virtual if clock == "virtual" else self.search_real
        if stage == "icap":
            return sum(
                c.icap_virtual if clock == "virtual" else c.icap_real
                for c in self.candidates
            )
        total = 0.0
        for c in self.candidates:
            splits = c.stage_virtual if clock == "virtual" else c.stage_real
            if splits:
                total += splits.get(stage, 0.0)
        return total


@dataclass
class RunReplay:
    """Every specialization process found in one recorded trace."""

    apps: list[AppReplay] = field(default_factory=list)

    @property
    def app_names(self) -> list[str]:
        return [a.name for a in self.apps]

    @classmethod
    def from_records(cls, records: Sequence[SpanRecord]) -> "RunReplay":
        """Reconstruct the specialization DAG inputs from a span trace."""
        by_id = {r.span_id: r for r in records}
        children: dict[int | None, list[SpanRecord]] = {}
        for rec in records:
            parent = rec.parent_id if rec.parent_id in by_id else None
            children.setdefault(parent, []).append(rec)
        for group in children.values():
            group.sort(key=lambda r: (r.t0, r.span_id))

        def subtree(root: SpanRecord) -> list[SpanRecord]:
            out: list[SpanRecord] = []
            stack = [root]
            while stack:
                rec = stack.pop()
                out.append(rec)
                stack.extend(children.get(rec.span_id, []))
            return out

        def app_name_for(run: SpanRecord) -> str:
            # Prefer the enclosing analysis.run span's registry name; the
            # asip_sp.run module attribute is the fallback (jit runs).
            cur: SpanRecord | None = run
            while cur is not None:
                if cur.name == "analysis.run" and cur.attrs.get("app"):
                    return str(cur.attrs["app"])
                cur = by_id.get(cur.parent_id) if cur.parent_id else None
            return str(run.attrs.get("module") or "app")

        replay = cls()
        sp_runs = [r for r in records if r.name == "asip_sp.run"]
        sp_runs.sort(key=lambda r: (r.t0, r.span_id))
        for run in sp_runs:
            nodes = subtree(run)
            app = AppReplay(name=app_name_for(run), search_virtual=0.0, search_real=0.0)
            searches = [r for r in nodes if r.name == "search"]
            if searches:
                search = min(searches, key=lambda r: r.t0)
                virt = search.virtual_seconds
                app.search_real = search.duration
                app.search_virtual = virt if virt is not None else search.duration

            # Per-candidate stage splits live on cad.implement spans — as
            # children of the candidate span (serial run) or reparented
            # under asip_sp.run (thread-pool prefetch). Keyed by the
            # candidate key attribute either way.
            splits: dict[str, tuple[dict[str, float], dict[str, float]]] = {}
            for impl in nodes:
                if impl.name != "cad.implement":
                    continue
                key = impl.attrs.get("candidate")
                stage_virtual: dict[str, float] = {}
                stage_real: dict[str, float] = {}
                for child in children.get(impl.span_id, []):
                    stage = SPAN_TO_STAGE.get(child.name)
                    if stage is None:
                        continue
                    virt = child.virtual_seconds
                    if virt is None:
                        stage_virtual.clear()
                        break  # failed flow: timings never back-filled
                    stage_virtual[stage] = stage_virtual.get(stage, 0.0) + virt
                    stage_real[stage] = stage_real.get(stage, 0.0) + child.duration
                if key is not None and len(stage_virtual) == len(STAGE_KEYS):
                    splits[str(key)] = (stage_virtual, stage_real)

            cand_spans = [
                r
                for r in children.get(run.span_id, [])
                if r.name == "asip_sp.candidate"
            ]
            cand_spans.sort(
                key=lambda r: (int(r.attrs.get("custom_id", 0)), r.t0)
            )
            for cand in cand_spans:
                if cand.attrs.get("failed"):
                    app.failed += 1
                    continue
                virtual_total = cand.virtual_seconds
                if virtual_total is None:
                    app.failed += 1
                    continue
                icap_virtual = icap_real = 0.0
                for child in subtree(cand):
                    if child.name == "icap.reconfigure":
                        virt = child.virtual_seconds
                        icap_virtual += virt if virt is not None else 0.0
                        icap_real += child.duration
                key = cand.attrs.get("candidate")
                split = splits.get(str(key)) if key is not None else None
                app.candidates.append(
                    CandidateReplay(
                        custom_id=int(cand.attrs.get("custom_id", len(app.candidates))),
                        key=str(key) if key is not None else None,
                        virtual_total=virtual_total,
                        real_total=cand.duration,
                        icap_virtual=icap_virtual,
                        icap_real=icap_real,
                        from_cache=bool(cand.attrs.get("cached")),
                        shared=bool(cand.attrs.get("shared")),
                        stage_virtual=dict(split[0]) if split else None,
                        stage_real=dict(split[1]) if split else None,
                    )
                )
            replay.apps.append(app)
        replay._backfill_splits()
        return replay

    def _backfill_splits(self) -> None:
        """Estimate stage splits for candidates without CAD stage spans.

        Shared and cache-served candidates carry only their chain total
        (the paper's per-candidate accounting still charges them fully);
        their split is estimated from the mean stage shares observed over
        every implemented chain in the run and flagged ``split_estimated``.
        """
        share_sum = {stage: 0.0 for stage in STAGE_KEYS}
        observed = 0
        for app in self.apps:
            for cand in app.candidates:
                if cand.stage_virtual is None or cand.virtual_total <= 0.0:
                    continue
                total = sum(cand.stage_virtual.values())
                if total <= 0.0:
                    continue
                observed += 1
                for stage in STAGE_KEYS:
                    share_sum[stage] += cand.stage_virtual.get(stage, 0.0) / total
        if not observed:
            return
        shares = {stage: share_sum[stage] / observed for stage in STAGE_KEYS}
        for app in self.apps:
            for cand in app.candidates:
                if cand.stage_virtual is not None:
                    continue
                cand.stage_virtual = {
                    stage: shares[stage] * cand.virtual_total
                    for stage in STAGE_KEYS
                }
                cand.stage_real = {stage: 0.0 for stage in STAGE_KEYS}
                cand.split_estimated = True


# -- CPM over the specialization DAG -------------------------------------------
@dataclass
class CritNode:
    """One node of the specialization DAG with its CPM schedule."""

    stage: str  # "search", a STAGE_KEYS entry, or "icap"
    app: str
    candidate: int | None  # custom_id, None for search
    weight: float
    from_cache: bool = False
    estimated: bool = False
    earliest_start: float = 0.0
    earliest_finish: float = 0.0
    latest_start: float = 0.0
    latest_finish: float = 0.0

    @property
    def slack(self) -> float:
        return max(0.0, self.latest_start - self.earliest_start)

    @property
    def critical(self) -> bool:
        return self.slack <= _EPS

    @property
    def label(self) -> str:
        name = STAGE_LABELS.get(self.stage, self.stage)
        if self.candidate is None:
            return f"{self.app}:{name}"
        return f"{self.app}:c{self.candidate}:{name}"


@dataclass
class CriticalPathAnalysis:
    """CPM result for one clock over a run's specialization DAG."""

    clock: str
    nodes: list[CritNode]
    makespan: float  # unbounded-worker (CPM) lower bound
    serial_seconds: float  # recorded 1-worker schedule (sum of weights)
    path: list[CritNode]  # one critical chain, source to sink

    def stage_summary(self) -> dict[str, dict]:
        """Per-stage totals, node counts, slack, and critical membership."""
        summary: dict[str, dict] = {}
        on_path = {id(node) for node in self.path}
        for node in self.nodes:
            entry = summary.setdefault(
                node.stage,
                {
                    "label": STAGE_LABELS.get(node.stage, node.stage),
                    "nodes": 0,
                    "total": 0.0,
                    "slack_min": math.inf,
                    "on_path": 0,
                    "cached": 0,
                },
            )
            entry["nodes"] += 1
            entry["total"] += node.weight
            entry["slack_min"] = min(entry["slack_min"], node.slack)
            if id(node) in on_path:
                entry["on_path"] += 1
            if node.from_cache:
                entry["cached"] += 1
        for entry in summary.values():
            if math.isinf(entry["slack_min"]):
                entry["slack_min"] = 0.0
        return summary

    @property
    def dominant_stage(self) -> str | None:
        """Stage carrying the most weight on the critical path."""
        weights: dict[str, float] = {}
        for node in self.path:
            weights[node.stage] = weights.get(node.stage, 0.0) + node.weight
        if not weights:
            return None
        return max(weights, key=lambda s: weights[s])

    @property
    def path_seconds(self) -> float:
        return sum(node.weight for node in self.path)


def analyze_critical_path(replay: RunReplay, clock: str = "virtual") -> CriticalPathAnalysis:
    """Run CPM over *replay*'s specialization DAG on one clock.

    Applications are independent branches (each program triggers its own
    ASIP-SP); candidate chains fan out after their app's search; ICAP
    writes chain in ``custom_id`` order after their candidate's Bitgen.
    """
    if clock not in ("virtual", "real"):
        raise ValueError(f"unknown clock {clock!r} (virtual or real)")
    nodes: list[CritNode] = []
    preds: list[list[int]] = []
    succs: list[list[int]] = []

    def add(node: CritNode, pred_ids: list[int]) -> int:
        node_id = len(nodes)
        nodes.append(node)
        preds.append(list(pred_ids))
        succs.append([])
        for p in pred_ids:
            succs[p].append(node_id)
        return node_id

    for app in replay.apps:
        search_id = add(
            CritNode(
                stage="search",
                app=app.name,
                candidate=None,
                weight=app.search_virtual if clock == "virtual" else app.search_real,
            ),
            [],
        )
        prev_icap: int | None = None
        for cand in app.candidates:
            splits = cand.stage_virtual if clock == "virtual" else cand.stage_real
            prev = search_id
            for stage in STAGE_KEYS:
                weight = (splits or {}).get(stage, 0.0)
                prev = add(
                    CritNode(
                        stage=stage,
                        app=app.name,
                        candidate=cand.custom_id,
                        weight=weight,
                        from_cache=cand.from_cache,
                        estimated=cand.split_estimated,
                    ),
                    [prev],
                )
            icap_preds = [prev]
            if prev_icap is not None:
                icap_preds.append(prev_icap)
            prev_icap = add(
                CritNode(
                    stage="icap",
                    app=app.name,
                    candidate=cand.custom_id,
                    weight=cand.icap_virtual if clock == "virtual" else cand.icap_real,
                    from_cache=cand.from_cache,
                ),
                icap_preds,
            )

    # Forward pass (construction order is topological by design).
    for i, node in enumerate(nodes):
        node.earliest_start = max(
            (nodes[p].earliest_finish for p in preds[i]), default=0.0
        )
        node.earliest_finish = node.earliest_start + node.weight
    makespan = max((n.earliest_finish for n in nodes), default=0.0)

    # Backward pass.
    for i in range(len(nodes) - 1, -1, -1):
        node = nodes[i]
        node.latest_finish = min(
            (nodes[s].latest_start for s in succs[i]), default=makespan
        )
        node.latest_start = node.latest_finish - node.weight

    # Extract one critical chain: walk back from a sink finishing at the
    # makespan, always through the predecessor that bounds the start time.
    path: list[CritNode] = []
    current: int | None = None
    for i, node in enumerate(nodes):
        if abs(node.earliest_finish - makespan) <= _EPS and node.critical:
            current = i
            break
    while current is not None:
        node = nodes[current]
        path.append(node)
        candidates_back = [
            p
            for p in preds[current]
            if abs(nodes[p].earliest_finish - node.earliest_start) <= _EPS
            and nodes[p].critical
        ]
        current = candidates_back[0] if candidates_back else None
    path.reverse()

    return CriticalPathAnalysis(
        clock=clock,
        nodes=nodes,
        makespan=makespan,
        serial_seconds=sum(n.weight for n in nodes),
        path=path,
    )


# -- Amdahl-style headroom -----------------------------------------------------
@dataclass
class HeadroomTable:
    """Break-even headroom of speeding up one stage at a time.

    ``rows[stage]["break_even"][label]`` is the mean live-aware break-even
    (seconds, :data:`math.inf` when unreachable) over the run's apps when
    only *stage* runs k times faster; everything else keeps its measured
    virtual cost — the Amdahl bound of a single-stage improvement.
    """

    factors: tuple[float, ...]
    baseline_break_even: float  # mean over apps at the recorded overheads
    rows: dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        table = Table(
            columns=["stage", "total [s]", "share %"]
            + [_factor_label(k) for k in self.factors],
            title="Break-even headroom per stage (virtual clock, h:m:s)",
        )
        for stage, row in self.rows.items():
            cells = [
                STAGE_LABELS.get(stage, stage),
                f"{row['total']:.2f}",
                f"{100.0 * row['share']:.1f}",
            ]
            for k in self.factors:
                be = row["break_even"][_factor_label(k)]
                cells.append(format_hhmmss(be) if math.isfinite(be) else "never")
            table.add_row(cells)
        table.add_footer(
            ["baseline", "", ""]
            + [
                format_hhmmss(self.baseline_break_even)
                if math.isfinite(self.baseline_break_even)
                else "never"
            ]
            * len(self.factors)
        )
        return table.render()


def headroom_table(
    replay: RunReplay,
    inputs: dict[str, object],
    model=None,
    factors: tuple[float, ...] = HEADROOM_FACTORS,
) -> HeadroomTable:
    """Compute the per-stage break-even headroom from measured overheads.

    *inputs* maps app name -> :class:`repro.core.extrapolate.AppBreakEvenInputs`
    (only the module/profile/coverage/estimates fields are used; the
    overheads come from the replay). Apps missing from *inputs* are
    skipped. Reuses :class:`repro.core.breakeven.BreakEvenModel` exactly
    as the recorded run did, so the baseline column reproduces the run's
    recorded break-even times.
    """
    from repro.core.breakeven import BreakEvenModel

    model = model or BreakEvenModel()
    apps = [a for a in replay.apps if a.name in inputs]
    stages = ["search", *STAGE_KEYS, "icap"]

    def break_even(app: AppReplay, overhead: float) -> float:
        inp = inputs[app.name]
        analysis = model.analyze(
            inp.module, inp.profile, inp.coverage, inp.estimates, overhead
        )
        return analysis.live_aware_seconds

    def mean_finite(values: list[float]) -> float:
        finite = [v for v in values if math.isfinite(v)]
        return sum(finite) / len(finite) if finite else math.inf

    baseline = mean_finite([break_even(a, a.overhead_virtual) for a in apps])
    grand_total = sum(a.overhead_virtual for a in apps)
    table = HeadroomTable(factors=tuple(factors), baseline_break_even=baseline)
    for stage in stages:
        stage_total = sum(a.stage_total(stage, "virtual") for a in apps)
        row = {
            "total": stage_total,
            "share": stage_total / grand_total if grand_total > 0 else 0.0,
            "break_even": {},
        }
        for k in factors:
            saved_fraction = 1.0 if math.isinf(k) else 1.0 - 1.0 / k
            values = []
            for app in apps:
                reduced = (
                    app.overhead_virtual
                    - saved_fraction * app.stage_total(stage, "virtual")
                )
                values.append(break_even(app, max(0.0, reduced)))
            row["break_even"][_factor_label(k)] = mean_finite(values)
        table.rows[stage] = row
    return table


def table3_summary(replay: RunReplay) -> dict | None:
    """Mean per-candidate constant-stage split (Table III consistency).

    Averages the observed (non-estimated) candidate chains' constant
    stages; ``bitgen_share`` should sit near the paper's 151.00 / 178.03
    = 0.85 whenever the recorded run matches Table III. Returns None when
    the trace carries no observed stage splits.
    """
    totals = {stage: 0.0 for stage in CONSTANT_STAGE_KEYS}
    count = 0
    for app in replay.apps:
        for cand in app.candidates:
            if cand.stage_virtual is None or cand.split_estimated:
                continue
            count += 1
            for stage in CONSTANT_STAGE_KEYS:
                totals[stage] += cand.stage_virtual.get(stage, 0.0)
    if not count:
        return None
    means = {stage: totals[stage] / count for stage in CONSTANT_STAGE_KEYS}
    constant_sum = sum(means.values())
    return {
        "candidates": count,
        "means": means,
        "constant_sum": constant_sum,
        "bitgen_share": means["bitgen"] / constant_sum if constant_sum else 0.0,
        "dominant": max(means, key=lambda s: means[s]) if constant_sum else None,
    }


def render_table3_summary(summary: dict) -> str:
    dominant = summary["dominant"]
    return (
        f"constant stages (Table III, {summary['candidates']} observed "
        f"chains): {STAGE_LABELS.get(dominant, dominant)}-dominated — "
        f"Bitgen {summary['means']['bitgen']:.2f} s of "
        f"{summary['constant_sum']:.2f} s mean per-candidate constant "
        f"overhead ({100.0 * summary['bitgen_share']:.1f} %)"
    )


# -- rendering & manifest block ------------------------------------------------
def render_critical_path(analysis: CriticalPathAnalysis, limit: int = 12) -> str:
    """ASCII rendering: path chain, dominant stage, per-stage slack table."""
    lines = [
        f"critical path ({analysis.clock} clock): "
        f"{_fmt_seconds(analysis.makespan)} with unbounded CAD workers, "
        f"{_fmt_seconds(analysis.serial_seconds)} as recorded (serial)"
    ]
    if analysis.path:
        shown = analysis.path[:limit]
        chain = " -> ".join(
            f"{n.label} ({_fmt_seconds(n.weight)})" for n in shown
        )
        if len(analysis.path) > limit:
            chain += f" -> ... ({len(analysis.path) - limit} more)"
        lines.append(f"  path: {chain}")
        dominant = analysis.dominant_stage
        if dominant is not None:
            dom_weight = sum(
                n.weight for n in analysis.path if n.stage == dominant
            )
            share = (
                100.0 * dom_weight / analysis.path_seconds
                if analysis.path_seconds > 0
                else 0.0
            )
            lines.append(
                f"  dominated by {STAGE_LABELS.get(dominant, dominant)}: "
                f"{_fmt_seconds(dom_weight)} of "
                f"{_fmt_seconds(analysis.path_seconds)} on the path "
                f"({share:.1f} %)"
            )
    table = Table(
        columns=["stage", "nodes", "total", "min slack", "on path", "cached"],
        title=f"Per-stage slack ({analysis.clock} clock)",
    )
    summary = analysis.stage_summary()
    for stage in sorted(summary, key=lambda s: -summary[s]["total"]):
        entry = summary[stage]
        table.add_row(
            [
                entry["label"],
                entry["nodes"],
                _fmt_seconds(entry["total"]),
                _fmt_seconds(entry["slack_min"]),
                entry["on_path"],
                entry["cached"] or "-",
            ]
        )
    lines.append("")
    lines.append(table.render())
    return "\n".join(lines)


def critpath_block(
    virtual: CriticalPathAnalysis,
    real: CriticalPathAnalysis,
    headroom: HeadroomTable | None = None,
    table3: dict | None = None,
) -> dict:
    """Manifest block for :meth:`repro.obs.ledger.RunLedger.attach_block`.

    The regression sentinel gates the virtual-clock cells (deterministic
    modelled times) and keeps the real-clock cells informational.
    """
    block: dict = {}
    for analysis in (virtual, real):
        dominant = analysis.dominant_stage
        entry: dict = {
            "makespan": round(analysis.makespan, 9),
            "serial_seconds": round(analysis.serial_seconds, 9),
            "path": [n.label for n in analysis.path],
            "dominant_stage": dominant,
            "stages": {},
        }
        if dominant is not None and analysis.path_seconds > 0:
            dom_weight = sum(
                n.weight for n in analysis.path if n.stage == dominant
            )
            entry["dominant_share"] = round(
                dom_weight / analysis.path_seconds, 9
            )
        for stage, summary in analysis.stage_summary().items():
            entry["stages"][stage] = {
                "total": round(summary["total"], 9),
                "nodes": summary["nodes"],
                "slack_min": round(summary["slack_min"], 9),
                "on_path": summary["on_path"],
            }
        block[analysis.clock] = entry
    if table3 is not None:
        block["table3"] = {
            "candidates": table3["candidates"],
            "constant_sum": round(table3["constant_sum"], 9),
            "bitgen_mean": round(table3["means"]["bitgen"], 9),
            "bitgen_share": round(table3["bitgen_share"], 9),
        }
    if headroom is not None:
        block["headroom"] = {
            "factors": [
                _factor_label(k) for k in headroom.factors
            ],
            "baseline_break_even": (
                round(headroom.baseline_break_even, 6)
                if math.isfinite(headroom.baseline_break_even)
                else None
            ),
            "stages": {
                stage: {
                    "total": round(row["total"], 9),
                    "share": round(row["share"], 9),
                    "break_even": {
                        label: (round(v, 6) if math.isfinite(v) else None)
                        for label, v in row["break_even"].items()
                    },
                }
                for stage, row in headroom.rows.items()
            },
        }
    return block
