"""Hierarchical profiles folded from finished spans.

The raw trace (:mod:`repro.obs.tracer` / :mod:`repro.obs.export`) records
*intervals*; the paper's evidence is *aggregates* — per-stage cost tables
and "where does the time concentrate" statements. This module folds a span
list into a profile tree keyed by the span-name call path, with self time
and total time on both of the pipeline's clocks:

- **real** — measured ``perf_counter`` durations (candidate search);
- **virtual** — the modelled ``virtual_seconds`` attribute (CAD stages);
  a span without the attribute inherits the sum of its children, so parent
  frames like ``cad.implement`` aggregate their stage children and carry
  zero virtual self time.

Outputs: Brendan-Gregg collapsed-stack lines (``a;b;c 1234``, value in
microseconds of *self* time — feed to ``flamegraph.pl`` or speedscope), a
top-N hot-path table, and an indented tree rendering.

Spans absorbed from parallel workers (``repro analyze --jobs N``) can
overlap on the real clock: concurrent siblings then sum to more than
their parent's duration, which would make the parent's self time
negative. Such self time is clamped to zero and the node is flagged
``overlap``, rendered as a ``!`` marker in :meth:`Profile.render` and
:meth:`Profile.hot_table` — the real-clock self times of flagged paths
are not additive wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.obs.export import SpanRecord, _fmt_seconds
from repro.util.tables import Table

CLOCKS = ("real", "virtual")


@dataclass
class ProfileNode:
    """Aggregated timings of one span-name call path."""

    name: str
    path: tuple[str, ...]
    count: int = 0
    total_real: float = 0.0
    self_real: float = 0.0
    total_virtual: float = 0.0
    self_virtual: float = 0.0
    #: True when concurrent children (absorbed from parallel workers)
    #: summed to more than this node's real duration; real self time was
    #: clamped to zero instead of going negative.
    overlap: bool = False
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = ProfileNode(name, self.path + (name,))
        return node

    def total(self, clock: str = "real") -> float:
        _check_clock(clock)
        return self.total_real if clock == "real" else self.total_virtual

    def self_time(self, clock: str = "real") -> float:
        _check_clock(clock)
        return self.self_real if clock == "real" else self.self_virtual


def _check_clock(clock: str) -> None:
    if clock not in CLOCKS:
        raise ValueError(f"unknown clock {clock!r}, expected one of {CLOCKS}")


@dataclass
class Profile:
    """A profile tree built from one trace."""

    root: ProfileNode  # synthetic root with path (); holds the real roots

    def nodes(self) -> Iterator[ProfileNode]:
        """All real nodes, depth-first in child insertion order."""

        def walk(node: ProfileNode) -> Iterator[ProfileNode]:
            for child in node.children.values():
                yield child
                yield from walk(child)

        return walk(self.root)

    def total(self, clock: str = "real") -> float:
        _check_clock(clock)
        return sum(c.total(clock) for c in self.root.children.values())

    def self_total(self, clock: str = "real") -> float:
        return sum(n.self_time(clock) for n in self.nodes())

    # -- outputs ---------------------------------------------------------------
    def collapsed(self, clock: str = "real") -> list[str]:
        """Brendan-Gregg collapsed stacks: ``name;name;... <self µs>``.

        One line per call path with non-zero self time on *clock*; values
        are integer microseconds, so per-line rounding loss is < 1 µs and
        per-stage sums match the stage table within rounding.
        """
        _check_clock(clock)
        lines: list[str] = []
        for node in self.nodes():
            value = int(round(node.self_time(clock) * 1e6))
            if value > 0:
                lines.append(";".join(node.path) + f" {value}")
        return lines

    def hot_table(self, clock: str = "real", top: int = 15) -> Table:
        """Top-N call paths by self time on *clock*."""
        _check_clock(clock)
        ranked = sorted(
            self.nodes(), key=lambda n: (-n.self_time(clock), n.path)
        )
        grand_self = self.self_total(clock) or 1.0
        table = Table(
            columns=["path", "count", "self", "total", "self %"],
            title=f"Hot paths ({clock} time)",
        )
        shown = 0.0
        overlap_shown = False
        for node in ranked[: max(0, top)]:
            self_t = node.self_time(clock)
            shown += self_t
            marker = " !" if node.overlap and clock == "real" else ""
            overlap_shown = overlap_shown or bool(marker)
            table.add_row(
                [
                    ";".join(node.path) + marker,
                    node.count,
                    _fmt_seconds(self_t),
                    _fmt_seconds(node.total(clock)),
                    f"{100.0 * self_t / grand_self:.1f}",
                ]
            )
        table.add_footer(
            [
                f"(all {sum(1 for _ in self.nodes())} paths)",
                sum(n.count for n in self.nodes()),
                _fmt_seconds(self.self_total(clock)),
                _fmt_seconds(self.total(clock)),
                f"{100.0 * shown / grand_self:.1f}",
            ]
        )
        if overlap_shown:
            table.add_footer(
                ["! = overlapping children; self clamped", "", "", "", ""]
            )
        return table

    def render(self, clock: str = "real") -> str:
        """Indented tree with count, total, and self time per path."""
        _check_clock(clock)
        lines = [f"profile ({clock} time)"]

        def emit(node: ProfileNode, depth: int) -> None:
            label = ("  " * depth + node.name).ljust(40)
            marker = "  !overlap" if node.overlap and clock == "real" else ""
            lines.append(
                f"{label} x{node.count:<6d} "
                f"total {_fmt_seconds(node.total(clock)):>10s}  "
                f"self {_fmt_seconds(node.self_time(clock)):>10s}{marker}"
            )
            for child in sorted(
                node.children.values(), key=lambda c: -c.total(clock)
            ):
                emit(child, depth + 1)

        for root in sorted(
            self.root.children.values(), key=lambda c: -c.total(clock)
        ):
            emit(root, 0)
        return "\n".join(lines)


def build_profile(records: Sequence[SpanRecord]) -> Profile:
    """Fold a span list into a :class:`Profile`.

    Spans whose parent is missing from the trace (partial export) are
    treated as roots, mirroring :func:`repro.obs.export.render_timeline`.
    """
    ids = {rec.span_id for rec in records}
    children: dict[int | None, list[SpanRecord]] = {}
    for rec in records:
        parent = rec.parent_id if rec.parent_id in ids else None
        children.setdefault(parent, []).append(rec)
    for group in children.values():
        group.sort(key=lambda r: (r.t0, r.span_id))

    # Virtual totals must be computed bottom-up: a span without the
    # virtual_seconds attribute inherits the sum of its children's totals.
    virtual_total: dict[int, float] = {}

    def compute_virtual(rec: SpanRecord) -> float:
        child_sum = sum(
            compute_virtual(c) for c in children.get(rec.span_id, [])
        )
        own = rec.virtual_seconds
        total = own if own is not None else child_sum
        virtual_total[rec.span_id] = total
        return total

    for root in children.get(None, []):
        compute_virtual(root)

    profile_root = ProfileNode("", ())

    def fold(rec: SpanRecord, into: ProfileNode) -> None:
        node = into.child(rec.name)
        kids = children.get(rec.span_id, [])
        child_real = sum(c.duration for c in kids)
        child_virtual = sum(virtual_total[c.span_id] for c in kids)
        node.count += 1
        node.total_real += rec.duration
        if child_real > rec.duration + 1e-9:
            node.overlap = True  # concurrent siblings from parallel workers
        node.self_real += max(0.0, rec.duration - child_real)
        node.total_virtual += virtual_total[rec.span_id]
        node.self_virtual += max(0.0, virtual_total[rec.span_id] - child_virtual)
        for child in kids:
            fold(child, node)

    for root in children.get(None, []):
        fold(root, profile_root)
    return Profile(root=profile_root)
