"""Counters, gauges, and histograms for the JIT-ISE pipeline.

Complements :mod:`repro.obs.tracer`: spans answer *where did the time go*,
metrics answer *how much work happened* — instructions interpreted,
intrinsic calls, candidates implemented, bitstream bytes written through
the ICAP. All instruments live in a :class:`MetricsRegistry`;
:meth:`MetricsRegistry.snapshot` returns a plain-dict view suitable for
printing or JSON export.

Like tracing, the process-global registry is **disabled** by default and
instrumentation sites are expected to gate on :func:`metrics_enabled`
(the interpreter bakes the check into block compilation, so a disabled
registry costs the hot loop nothing).
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic: cannot inc by {amount}"
            )
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (e.g. current fabric slot occupancy)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += float(delta)


# Default histogram buckets: seconds, log-ish spacing spanning the paper's
# observed range — milliseconds (search, ICAP) to minutes (Map/PAR/Bitgen).
DEFAULT_BUCKETS = (
    0.001, 0.01, 0.1, 1.0, 5.0, 15.0, 60.0, 180.0, 600.0,
)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str, buckets: tuple = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        # bucket_counts[i] counts observations <= bounds[i]; the final
        # slot is the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Bucket-interpolated q-quantile (q in [0, 1]); None when empty.

        Within the bucket holding the target rank the value is linearly
        interpolated between the bucket's bounds (the observed min/max stand
        in for the open outer edges), so the estimate is exact at q=0/q=1
        and never leaves the observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._percentile(q)

    def _percentile(self, q: float) -> float | None:
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                cumulative += bucket_count
                continue
            if cumulative + bucket_count >= rank:
                lower = self.min if i == 0 else self.bounds[i - 1]
                upper = self.max if i == len(self.bounds) else self.bounds[i]
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                frac = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * max(0.0, min(1.0, frac))
            cumulative += bucket_count
        return self.max

    def merge_dict(self, data: dict) -> None:
        """Fold a same-bucketed histogram snapshot (:meth:`as_dict`) in.

        Used by the sharded experiment runner to merge worker-process
        registries back into the suite registry: bucket counts, count, and
        sum add; min/max widen. The bucket layout must match.
        """
        buckets = data.get("buckets") or {}
        with self._lock:
            labels = [f"le_{b:g}" for b in self.bounds] + ["inf"]
            if set(buckets) != set(labels):
                raise ValueError(
                    f"histogram {self.name!r}: cannot merge snapshot with "
                    f"different bucket layout"
                )
            for i, label in enumerate(labels):
                self.bucket_counts[i] += int(buckets[label])
            self.count += int(data.get("count", 0))
            self.sum += float(data.get("sum", 0.0))
            if data.get("min") is not None:
                self.min = min(self.min, float(data["min"]))
            if data.get("max") is not None:
                self.max = max(self.max, float(data["max"]))

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "mean": self.mean,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "p50": self._percentile(0.50),
                "p95": self._percentile(0.95),
                "p99": self._percentile(0.99),
                "buckets": {
                    **{f"le_{b:g}": c for b, c in zip(self.bounds, self.bucket_counts)},
                    "inf": self.bucket_counts[-1],
                },
            }


@dataclass
class MetricsRegistry:
    """Named instruments, created on first use."""

    enabled: bool = True
    _counters: dict[str, Counter] = field(default_factory=dict)
    _gauges: dict[str, Gauge] = field(default_factory=dict)
    _histograms: dict[str, Histogram] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, buckets)
            return inst

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a worker registry's :meth:`snapshot` into this registry.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge bucket-by-bucket — so a suite run sharded over
        worker processes produces the same totals as a serial run.
        """
        for name, value in (snap.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snap.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, data in (snap.get("histograms") or {}).items():
            self.histogram(name).merge_dict(data)

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument's current state."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.as_dict() for n, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def render_snapshot(snap: dict) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot`."""
    lines: list[str] = []
    if snap.get("counters"):
        lines.append("counters:")
        for name, value in snap["counters"].items():
            lines.append(f"  {name:40s} {value}")
    if snap.get("gauges"):
        lines.append("gauges:")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:40s} {value:g}")
    if snap.get("histograms"):
        lines.append("histograms:")
        for name, h in snap["histograms"].items():
            quantiles = " ".join(
                f"{label}={h[label]:.4g}" if h.get(label) is not None else f"{label}=-"
                for label in ("p50", "p95", "p99")
            )
            lines.append(
                f"  {name:40s} count={h['count']} mean={h['mean']:.4g} "
                f"min={h['min'] if h['min'] is not None else '-'} "
                f"max={h['max'] if h['max'] is not None else '-'} "
                f"{quantiles}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


# -- process-global default registry ------------------------------------------
_default_registry = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    return _default_registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    global _default_registry
    _default_registry = registry
    return registry


def enable_metrics(reset: bool = True) -> MetricsRegistry:
    if reset:
        _default_registry.reset()
    _default_registry.enabled = True
    return _default_registry


def disable_metrics() -> MetricsRegistry:
    _default_registry.enabled = False
    return _default_registry


def metrics_enabled() -> bool:
    return _default_registry.enabled
