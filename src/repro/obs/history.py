"""Fleet history: per-cell time series and anomaly detection over the ledger.

The paper reports each result once (Tables I–IV); a living reproduction
re-measures them on every recorded run. This module aggregates the
manifest cells of all runs in a ledger — live ``manifest.json`` files
plus the ``history.jsonl`` summaries that ``repro runs gc`` compacts
before deleting old runs — into per-cell time series, and mines them two
ways:

- **anomaly detection** (``repro anomaly``): the newest run's value for
  each cell is tested against the trailing history with a robust
  median+MAD z-score and an EWMA drift check; a cell flags only when both
  the robust deviation and a minimum relative change exceed their
  thresholds, so bit-identical deterministic cells and ordinary
  measurement jitter stay quiet while a seeded regression is named
  exactly;
- **noise bands** (``repro regress --history N``): for cells that are
  measured (informational by default in :mod:`repro.obs.regress`), the
  observed median/MAD across history becomes the tolerance — measured-
  cell gates derive from fleet behaviour instead of hand tuning, while
  virtual-clock cells keep their exact gates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

from repro.obs.ledger import RunLedger
from repro.obs.regress import (
    DEFAULT_TOLERANCES,
    flatten_cells,
    median_mad,
    resolve_tolerance,
)

#: Compacted-run summary file at the ledger root (one JSON line per run).
HISTORY_FILENAME = "history.jsonl"

#: Schema identifier for compacted history entries.
HISTORY_SCHEMA = "repro-history/1"

#: Robust z-score threshold (in 1.4826*MAD units) for flagging.
DEFAULT_MADS = 4.0

#: Minimum |relative change| vs the baseline median for flagging; absorbs
#: the ~1e-6 relative jitter of the modelled break-even cells.
DEFAULT_MIN_REL = 0.001

#: Trailing points needed before the newest value can be judged.
DEFAULT_MIN_POINTS = 4

#: EWMA smoothing factor for the drift check.
EWMA_ALPHA = 0.3

#: MAD-to-sigma factor for a normal distribution.
_MAD_SIGMA = 1.4826


def history_path(ledger: RunLedger) -> Path:
    return ledger.path / HISTORY_FILENAME


def entry_from_manifest(manifest: dict) -> dict:
    """One history entry: identity + flattened numeric cells."""
    return {
        "schema": HISTORY_SCHEMA,
        "run_id": manifest.get("run_id"),
        "timestamp": manifest.get("timestamp"),
        "command": manifest.get("command"),
        "config": manifest.get("config") or {},
        "cells": flatten_cells(manifest),
    }


def append_history(ledger: RunLedger, manifests) -> int:
    """Append compacted entries for *manifests* to ``history.jsonl``."""
    path = history_path(ledger)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "a", encoding="utf-8") as fh:
        for manifest in manifests:
            fh.write(
                json.dumps(entry_from_manifest(manifest), sort_keys=True) + "\n"
            )
            count += 1
    return count


def load_history(ledger: RunLedger) -> list[dict]:
    """Compacted entries from ``history.jsonl`` (oldest first, as written)."""
    path = history_path(ledger)
    if not path.is_file():
        return []
    entries: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("cells"):
                entries.append(entry)
    return entries


def collect_entries(
    ledger: RunLedger,
    command: str | None = None,
    limit: int | None = None,
) -> list[dict]:
    """All known runs — compacted + live — as history entries, oldest first.

    A run id present both in ``history.jsonl`` and on disk keeps the live
    manifest (gc should make that impossible, but an interrupted prune
    must not double-count). With *command*, only runs of that command are
    kept — per-cell series only make sense across comparable runs. With
    *limit*, only the newest N entries survive.
    """
    merged: dict[str, dict] = {}
    order: list[str] = []
    for entry in load_history(ledger):
        run_id = str(entry.get("run_id"))
        if run_id not in merged:
            order.append(run_id)
        merged[run_id] = entry
    for manifest in ledger.manifests():
        run_id = str(manifest.get("run_id"))
        if run_id not in merged:
            order.append(run_id)
        merged[run_id] = entry_from_manifest(manifest)
    entries = [
        merged[run_id]
        for run_id in sorted(order, key=RunLedger._sort_key)
    ]
    if command is not None:
        entries = [e for e in entries if e.get("command") == command]
    if limit is not None and limit > 0:
        entries = entries[-limit:]
    return entries


def build_series(
    entries: list[dict], patterns: list[str] | None = None
) -> dict[str, list[tuple[str, float]]]:
    """Per-cell ``[(run_id, value), ...]`` series across *entries*.

    *patterns* are fnmatch cell filters (any-match); None keeps every
    cell. Cells are ordered by name; each series is oldest first.
    """
    series: dict[str, list[tuple[str, float]]] = {}
    for entry in entries:
        run_id = str(entry.get("run_id"))
        for cell, value in (entry.get("cells") or {}).items():
            if patterns and not any(fnmatchcase(cell, p) for p in patterns):
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            series.setdefault(cell, []).append((run_id, float(value)))
    return dict(sorted(series.items()))


@dataclass
class Anomaly:
    """One cell whose newest value broke from its trailing history."""

    cell: str
    run_id: str
    value: float
    baseline_median: float
    mad: float
    zscore: float  # robust z (inf for a shifted historically-constant cell)
    ewma: float
    rel_change: float

    def describe(self) -> str:
        z = "inf" if self.zscore == float("inf") else f"{self.zscore:.1f}"
        return (
            f"{self.cell}: {self.value:g} vs median {self.baseline_median:g} "
            f"({100.0 * self.rel_change:+.2f}%, robust z={z}, "
            f"ewma {self.ewma:g}) in {self.run_id}"
        )


def detect_anomalies(
    series: dict[str, list[tuple[str, float]]],
    min_points: int = DEFAULT_MIN_POINTS,
    mads: float = DEFAULT_MADS,
    min_rel: float = DEFAULT_MIN_REL,
    ewma_alpha: float = EWMA_ALPHA,
) -> list[Anomaly]:
    """Changepoint test of each series' newest value against its history.

    For every cell with at least ``min_points`` trailing values, the
    newest value must exceed *both* a robust deviation test and the
    ``min_rel`` relative-change floor to flag:

    - history with spread (MAD > 0): robust z-score
      ``|x - median| / (1.4826 * MAD)`` above *mads*, **and** the EWMA of
      the trailing values must also sit more than ``mads * sigma`` away
      from the new value (a genuine level shift, not one straggler);
    - historically constant cells (MAD = 0, the deterministic
      virtual-clock cells): any relative change above ``min_rel`` flags —
      a bit-identical cell that moves at all is the regression.
    """
    anomalies: list[Anomaly] = []
    for cell, points in series.items():
        if len(points) < min_points + 1:
            continue
        *trailing, (run_id, value) = points
        values = [v for _, v in trailing]
        median, mad = median_mad(values)
        ewma = values[0]
        for v in values[1:]:
            ewma = ewma_alpha * v + (1.0 - ewma_alpha) * ewma
        denom = max(abs(median), 1e-12)
        rel_change = (value - median) / denom
        if abs(rel_change) <= min_rel:
            continue
        if mad > 0.0:
            sigma = _MAD_SIGMA * mad
            zscore = abs(value - median) / sigma
            if zscore <= mads:
                continue
            if abs(value - ewma) <= mads * sigma:
                continue
        else:
            zscore = float("inf")
        anomalies.append(
            Anomaly(
                cell=cell,
                run_id=run_id,
                value=value,
                baseline_median=median,
                mad=mad,
                zscore=zscore,
                ewma=ewma,
                rel_change=rel_change,
            )
        )
    return anomalies


def derive_noise_bands(
    entries: list[dict],
    min_points: int = 3,
    tolerances=None,
) -> dict[str, dict]:
    """Median/MAD bands for the *measured* cells observed in *entries*.

    A cell qualifies when its default-resolved tolerance is ``None``
    (informational, i.e. measured wall clock / latency / admission
    behaviour) and it appears in at least *min_points* entries. The
    returned mapping feeds :func:`repro.obs.regress.compare_manifests`'s
    ``noise_bands`` parameter; deterministic cells never appear in it, so
    their bit-exact gates are untouched.
    """
    resolved = list(tolerances or []) + list(DEFAULT_TOLERANCES)
    series = build_series(entries)
    bands: dict[str, dict] = {}
    for cell, points in series.items():
        if len(points) < min_points:
            continue
        if resolve_tolerance(cell, resolved) is not None:
            continue
        median, mad = median_mad([v for _, v in points])
        bands[cell] = {
            "median": median,
            "mad": mad,
            "samples": len(points),
        }
    return bands


# -- renderings ---------------------------------------------------------------
_SPARK_CHARS = " .:-=+*#%@"


def _sparkline(values: list[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[1] * len(values)
    steps = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[1 + int((v - lo) / (hi - lo) * (steps - 1))] for v in values
    )


def render_trend(
    series: dict[str, list[tuple[str, float]]],
    limit_cells: int = 40,
) -> str:
    """Per-cell trend table, most-moved cells first (``repro runs trend``)."""
    if not series:
        return "no history: record runs with --ledger (or gc with compaction)"
    rows = []
    for cell, points in series.items():
        values = [v for _, v in points]
        median, mad = median_mad(values)
        last = values[-1]
        denom = max(abs(median), 1e-12)
        rel = (last - median) / denom
        rows.append((abs(rel), cell, values, median, mad, last, rel))
    rows.sort(key=lambda r: (-r[0], r[1]))
    shown = rows[:limit_cells] if limit_cells else rows
    width = max(len(r[1]) for r in shown)
    lines = [
        f"{'cell':<{width}} {'n':>4} {'median':>12} {'last':>12} "
        f"{'delta %':>8}  trend"
    ]
    for _, cell, values, median, mad, last, rel in shown:
        lines.append(
            f"{cell:<{width}} {len(values):>4} {median:>12g} {last:>12g} "
            f"{100.0 * rel:>+8.2f}  {_sparkline(values)}"
        )
    if limit_cells and len(rows) > limit_cells:
        lines.append(f"... {len(rows) - limit_cells} more cell(s) not shown")
    return "\n".join(lines)


def trend_report(
    series: dict[str, list[tuple[str, float]]],
) -> dict:
    """JSON-safe trend report (the CI artifact for ``runs trend --out``)."""
    cells = {}
    for cell, points in series.items():
        values = [v for _, v in points]
        median, mad = median_mad(values)
        cells[cell] = {
            "n": len(values),
            "median": median,
            "mad": mad,
            "last": values[-1],
            "run_ids": [run_id for run_id, _ in points],
            "values": values,
        }
    return {"schema": "repro-trend/1", "cells": cells}


def render_anomalies(anomalies: list[Anomaly], runs_seen: int) -> str:
    if not anomalies:
        return f"no anomalies across {runs_seen} run(s)"
    lines = [f"{len(anomalies)} anomalous cell(s) across {runs_seen} run(s):"]
    for a in sorted(anomalies, key=lambda a: -abs(a.rel_change)):
        lines.append("  " + a.describe())
    return "\n".join(lines)
