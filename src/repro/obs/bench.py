"""Wall-clock benchmark of the parallel runner and the persistent cache.

Section VI-A of the paper argues that a bitstream cache (and, in VI-B, a
faster CAD flow) is what moves the break-even times of Table IV; this
module measures the two mechanisms this reproduction actually implements —
worker-pool sharding (``--jobs``) and the persistent bitstream cache
(``--cache``) — against the serial cold baseline, and writes the evidence
as ``BENCH_parallel.json`` so the repository carries measured numbers, not
claims.

Four phases, each a full ``analyze_suite`` run with the in-process memo
cleared:

1. ``serial_cold`` — jobs=1, no persistent cache (the paper-faithful run);
2. ``parallel_cold`` — jobs=N, no persistent cache;
3. ``cache_cold`` — jobs=1 against an empty persistent cache (populates);
4. ``cache_warm`` — jobs=1 against the now-warm cache (every candidate a
   hit; the ``cad.implementations`` counter drops to the failures only).

Per phase we record the wall seconds, the ``cad.implementations`` counter
(virtual CAD work actually performed), and the cache hit/miss statistics.
Speedups are computed from the recorded wall times. On a single-core host
the honest parallel speedup is ~1x — the cache speedup is the headline
number there.

:func:`run_vm_bench` is the interpreter-side sibling (``BENCH_vm.json``):
per-app interpreter wall time, instructions/sec, dynamic opcode counts,
top digrams, superinstruction candidates and the calibrated dispatch-cost
table — the committed baseline the ROADMAP's dispatch-optimization work
is measured against, with the PPC405 virtual clock checked bit-identical
between the sampled and unsampled loops.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time

from repro.obs.metrics import disable_metrics, enable_metrics

#: Report schema identifier (bump on breaking changes).
BENCH_SCHEMA = "repro-bench-parallel/1"

#: Default report location, committed at the repository root.
DEFAULT_BENCH_OUT = "BENCH_parallel.json"

#: VM interpreter benchmark (repro bench-vm) schema + committed report.
BENCH_VM_SCHEMA = "repro-bench-vm/1"
DEFAULT_VM_BENCH_OUT = "BENCH_vm.json"


def _phase(domain: str, jobs: int, backend: str, cache) -> dict:
    """One timed ``analyze_suite`` run with fresh metrics and memo."""
    from repro.core.cache import PersistentBitstreamCache
    from repro.experiments.runner import analyze_suite, clear_cache

    clear_cache()
    if cache is not None and not isinstance(cache, PersistentBitstreamCache):
        cache = PersistentBitstreamCache(root=cache)
    registry = enable_metrics()
    try:
        t0 = time.perf_counter()
        analyses = analyze_suite(domain, jobs=jobs, backend=backend, cache=cache)
        wall = time.perf_counter() - t0
        counters = registry.snapshot()["counters"]
    finally:
        disable_metrics()
    result = {
        "jobs": jobs,
        "backend": backend if jobs > 1 else None,
        "wall_seconds": round(wall, 3),
        "apps": len(analyses),
        "cad_implementations": counters.get("cad.implementations", 0),
    }
    if cache is not None:
        result["cache"] = cache.stats()
    return result


def run_parallel_bench(
    domain: str = "embedded",
    jobs: int = 4,
    backend: str = "process",
    out: str | os.PathLike | None = DEFAULT_BENCH_OUT,
    cache_dir: str | os.PathLike | None = None,
) -> dict:
    """Run the four-phase benchmark; returns (and optionally writes) the report.

    *cache_dir* defaults to a temporary directory that is removed
    afterwards, so the benchmark never pollutes (or is polluted by) the
    working tree's ``.repro-cache/``.
    """
    owns_cache_dir = cache_dir is None
    if owns_cache_dir:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        phases = {
            "serial_cold": _phase(domain, 1, backend, None),
            "parallel_cold": _phase(domain, jobs, backend, None),
            "cache_cold": _phase(domain, 1, backend, cache_dir),
            "cache_warm": _phase(domain, 1, backend, cache_dir),
        }
    finally:
        if owns_cache_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)

    def speedup(a: str, b: str) -> float:
        return round(
            phases[a]["wall_seconds"] / max(1e-9, phases[b]["wall_seconds"]), 3
        )

    report = {
        "schema": BENCH_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "domain": domain,
        "jobs": jobs,
        "backend": backend,
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "phases": phases,
        "speedups": {
            "parallel_vs_serial": speedup("serial_cold", "parallel_cold"),
            "warm_cache_vs_cold": speedup("cache_cold", "cache_warm"),
            "warm_cache_vs_serial": speedup("serial_cold", "cache_warm"),
        },
    }
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def run_vm_bench(
    apps: list[str] | None = None,
    sample_interval: int = 64,
    out: str | os.PathLike | None = DEFAULT_VM_BENCH_OUT,
    calibration_iters: int = 6000,
    top_digrams_n: int = 10,
    top_candidates: int = 10,
    pairs: int = 3,
    fuse: int = 0,
) -> dict:
    """Interpreter macro benchmark over the embedded suite (BENCH_vm.json).

    Each app runs on its train set as *pairs* back-to-back (plain,
    sampled) run pairs. Wall time is the min over the plain runs; the
    sampler overhead is the **median of the per-pair ratios**, which
    cancels the slow host drift that makes a difference of two
    independent minima unusable on a shared machine. The PPC405 virtual
    cycles of the two phases must be bit-identical — profiling may never
    bend the virtual clock.

    With ``fuse=K > 0``, each app additionally mines its own top-K
    superinstruction sequences from a profiling run, splices them in via
    :mod:`repro.vm.fusion`, and every pair gains a third *fused* phase.
    The fused speedup is again the median of the per-pair plain/fused
    ratios (per app, and pooled across apps in ``totals``), and the fused
    phase must leave steps, block counts and the virtual clock
    bit-identical — fusion may only move the real clock.
    """
    from repro.apps import EMBEDDED_APPS, compile_app, get_app
    from repro.obs.vmprof import build_profile, top_digrams, vm_manifest_block
    from repro.vm.costmodel import PPC405_COST_MODEL
    from repro.vm.dispatchcost import measure_dispatch_costs
    from repro.vm.profiler import BlockTimeSampler

    if apps is None:
        apps = [spec.name for spec in EMBEDDED_APPS]
    dispatch = measure_dispatch_costs(iters=calibration_iters)

    app_reports: dict[str, dict] = {}
    all_identical = True
    fused_all_identical = True
    fused_all_ratios: list[float] = []
    for name in apps:
        spec = get_app(name)
        compiled = compile_app(spec)

        plan = None
        if fuse > 0:
            # Mine the plan from a dedicated profiling run, then time the
            # fused phase inside the same pairs as plain/sampled so the
            # speedup is a paired ratio, not a cross-drift difference.
            profiling = compiled.run(spec.train)
            plan = compiled.fusion_plan(top=fuse, profile=profiling.profile)

        wall_plain = wall_sampled = wall_fused = float("inf")
        ratios: list[float] = []
        fused_ratios: list[float] = []
        fused = None
        for _ in range(max(1, pairs)):
            t0 = time.perf_counter()
            plain = compiled.run(spec.train)
            plain_wall = time.perf_counter() - t0

            sampler = BlockTimeSampler(interval=sample_interval)
            t0 = time.perf_counter()
            sampled = compiled.run(spec.train, sampler=sampler)
            sampled_wall = time.perf_counter() - t0

            wall_plain = min(wall_plain, plain_wall)
            wall_sampled = min(wall_sampled, sampled_wall)
            ratios.append(sampled_wall / max(plain_wall, 1e-9))

            if plan is not None:
                t0 = time.perf_counter()
                fused = compiled.run(spec.train, fusion=plan)
                fused_wall = time.perf_counter() - t0
                wall_fused = min(wall_fused, fused_wall)
                fused_ratios.append(plain_wall / max(fused_wall, 1e-9))
        ratios.sort()
        median_ratio = ratios[len(ratios) // 2]

        plain_cycles = plain.profile.total_cycles(
            compiled.module, PPC405_COST_MODEL
        )
        sampled_cycles = sampled.profile.total_cycles(
            compiled.module, PPC405_COST_MODEL
        )
        virtual_identical = plain_cycles == sampled_cycles
        all_identical = all_identical and virtual_identical

        prof = build_profile(
            app=spec.name,
            dataset=spec.train.name,
            module=compiled.module,
            profile=sampled.profile,
            steps=sampled.steps,
            wall_seconds=wall_plain,
            sampler=sampler,
            dispatch=dispatch,
            max_candidates=top_candidates,
        )
        app_reports[spec.name] = {
            "wall_seconds": round(wall_plain, 6),
            "sampled_wall_seconds": round(wall_sampled, 6),
            "sampler_overhead_pct": round(100.0 * (median_ratio - 1.0), 2),
            "instructions": sampled.steps,
            "instructions_per_second": round(
                sampled.steps / max(wall_plain, 1e-9), 1
            ),
            "block_executions": prof.block_executions,
            "virtual_cycles": plain_cycles,
            "virtual_seconds": PPC405_COST_MODEL.seconds(plain_cycles),
            "virtual_identical": virtual_identical,
            "opcodes": dict(sorted(prof.opcode_counts.items())),
            "top_digrams": {
                "+".join(pair): count
                for pair, count in top_digrams(prof, top_digrams_n)
            },
            "superinsn": [
                {
                    "sequence": candidate.name,
                    "dynamic_count": candidate.dynamic_count,
                    "static_sites": candidate.static_sites,
                    "est_saved_ms": round(
                        candidate.est_saved_seconds * 1e3, 3
                    ),
                }
                for candidate in prof.candidates
            ],
        }
        if plan is not None:
            from repro.obs.vmprof import FusionReport

            fused_ratios.sort()
            median_speedup = fused_ratios[len(fused_ratios) // 2]
            fused_all_ratios.extend(fused_ratios)
            fused_cycles = fused.profile.total_cycles(
                compiled.module, PPC405_COST_MODEL
            )
            steps_identical = fused.steps == plain.steps
            blocks_identical = {
                k: p.count for k, p in fused.profile.blocks.items()
            } == {k: p.count for k, p in plain.profile.blocks.items()}
            cycles_identical = fused_cycles == plain_cycles
            fused_identical = (
                steps_identical and blocks_identical and cycles_identical
            )
            fused_all_identical = fused_all_identical and fused_identical
            prof.fusion = FusionReport(
                top=fuse,
                sites=plan.site_count,
                fused_instructions=plan.fused_instructions,
                dispatches_removed=plan.dispatches_removed(fused.profile),
                wall_seconds=wall_fused,
                speedup=median_speedup,
                steps_identical=steps_identical,
                blocks_identical=blocks_identical,
                virtual_identical=cycles_identical,
                sequences=plan.describe()["sequences"],
            )
            app_reports[spec.name]["fused"] = {
                "top": fuse,
                "sites": plan.site_count,
                "fused_instructions": plan.fused_instructions,
                "dispatches_removed": plan.dispatches_removed(
                    fused.profile
                ),
                "wall_seconds": round(wall_fused, 6),
                "speedup": round(median_speedup, 3),
                "virtual_identical": fused_identical,
                "sequences": ["+".join(seq) for seq in plan.sequences],
            }
        # Feed the current ledger run (if any): the vm block of the last
        # profiled app wins, which is what the regress-vm single-app leg
        # uses; multi-app wall data lives in this report instead.
        from repro.obs.ledger import current_run

        recorder = current_run()
        if recorder is not None:
            recorder.attach_extra("vm", vm_manifest_block(prof))

    totals = {
        "wall_seconds": round(
            sum(a["wall_seconds"] for a in app_reports.values()), 3
        ),
        "instructions": sum(
            a["instructions"] for a in app_reports.values()
        ),
        "mean_sampler_overhead_pct": round(
            sum(
                a["sampler_overhead_pct"] for a in app_reports.values()
            )
            / max(len(app_reports), 1),
            2,
        ),
        "virtual_identical": all_identical,
    }
    if fuse > 0:
        fused_all_ratios.sort()
        totals["fused_speedup"] = round(
            fused_all_ratios[len(fused_all_ratios) // 2], 3
        ) if fused_all_ratios else 0.0
        totals["fused_wall_seconds"] = round(
            sum(
                a["fused"]["wall_seconds"]
                for a in app_reports.values()
                if "fused" in a
            ),
            3,
        )
        totals["fused_virtual_identical"] = fused_all_identical

    report = {
        "schema": BENCH_VM_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "sample_interval": sample_interval,
        "fuse_top": fuse,
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "dispatch_cost": dispatch.to_dict(),
        "apps": app_reports,
        "totals": totals,
    }
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def render_vm_bench(report: dict) -> str:
    """ASCII rendering of a VM benchmark report for the CLI."""
    from repro.util.tables import Table

    fused_mode = bool(report.get("fuse_top"))
    columns = ["app", "wall [s]", "M instr/s", "sampler ovh %"]
    if fused_mode:
        columns += ["fused [s]", "fused x"]
    columns.append("virt clock")
    table = Table(
        columns=columns,
        title=(
            "VM interpreter benchmark "
            f"(sample interval {report.get('sample_interval')}"
            + (f", fuse top-{report.get('fuse_top')}" if fused_mode else "")
            + ")"
        ),
    )
    for name, app in (report.get("apps") or {}).items():
        fused = app.get("fused") or {}
        identical = app.get("virtual_identical") and (
            not fused or fused.get("virtual_identical")
        )
        row = [
            name,
            f"{app.get('wall_seconds', 0.0):.2f}",
            f"{app.get('instructions_per_second', 0.0) / 1e6:.2f}",
            f"{app.get('sampler_overhead_pct', 0.0):+.1f}",
        ]
        if fused_mode:
            row += [
                f"{fused.get('wall_seconds', 0.0):.2f}" if fused else "-",
                f"{fused.get('speedup', 0.0):.2f}" if fused else "-",
            ]
        row.append("identical" if identical else "DRIFTED")
        table.add_row(row)
    lines = [table.render()]
    dispatch = (report.get("dispatch_cost") or {}).get("classes_ns") or {}
    if dispatch:
        costs = ", ".join(
            f"{name}={ns:.0f}ns"
            for name, ns in sorted(dispatch.items(), key=lambda kv: -kv[1])[:5]
        )
        lines.append(f"dispatch cost (top classes): {costs}")
    totals = report.get("totals") or {}
    if totals:
        lines.append(
            f"total: {totals.get('wall_seconds', 0.0):.2f}s for "
            f"{totals.get('instructions', 0):,} instructions; "
            "virtual clock "
            + (
                "bit-identical under sampling"
                if totals.get("virtual_identical")
                else "DRIFTED under sampling"
            )
        )
        if "fused_speedup" in totals:
            lines.append(
                f"fusion: {totals.get('fused_speedup', 0.0):.2f}x "
                "median-of-paired-ratios; "
                + (
                    "blocks + virtual clock bit-identical under fusion"
                    if totals.get("fused_virtual_identical")
                    else "fused accounting DRIFTED"
                )
            )
    return "\n".join(lines)


def render_bench(report: dict) -> str:
    """ASCII rendering of a benchmark report for the CLI."""
    from repro.util.tables import Table

    table = Table(
        columns=["phase", "jobs", "wall [s]", "CAD impls", "cache hits"],
        title=(
            f"Parallel/cache benchmark: {report.get('domain')} suite "
            f"({report.get('host', {}).get('cpus', '?')} cpu)"
        ),
    )
    for name, phase in (report.get("phases") or {}).items():
        cache = phase.get("cache") or {}
        table.add_row(
            [
                name,
                phase.get("jobs", 1),
                f"{phase.get('wall_seconds', 0.0):.2f}",
                phase.get("cad_implementations", 0),
                cache.get("hits", "-") if cache else "-",
            ]
        )
    lines = [table.render()]
    speedups = report.get("speedups") or {}
    if speedups:
        lines.append(
            "speedups: "
            + ", ".join(f"{k}={v}x" for k, v in speedups.items())
        )
    return "\n".join(lines)

# -- fleet workload-mix benchmark (repro mix) --------------------------------

#: Fleet-mix grid benchmark (repro mix) schema + committed report.
BENCH_MIX_SCHEMA = "repro-bench-mix/1"
DEFAULT_MIX_BENCH_OUT = "BENCH_mix.json"

#: Default grid axes: >=2 entropies x >=3 policies x >=3 slot counts.
DEFAULT_MIX_PRESETS = ("uniform", "skewed")
DEFAULT_MIX_POLICIES = ("lru", "lfu", "breakeven")
DEFAULT_MIX_CAPACITIES = (4, 8, 16)


def _mix_cell_key(capacity: int) -> str:
    return f"c{capacity:02d}"


def mix_manifest_block(report: dict) -> dict:
    """The nested-dict ``mix`` block a ledger manifest carries.

    Dicts all the way down (the regression sentinel's flattener walks
    dicts, not lists): ``mix.cells.<preset>.<policy>.c<NN>.<metric>``.
    Virtual-clock cells compare at 1e-9; ``wall_seconds`` and the
    profile-building ``search`` times are informational.
    """
    block: dict = {
        "events": report["events"],
        "seed": report["seed"],
        "entropy": dict(report["entropy"]),
        "gate": {
            "breakeven_beats_lru": report["gate"]["breakeven_beats_lru"],
            "contended_preset": report["gate"]["contended"]["preset"],
            "contended_capacity": report["gate"]["contended"]["capacity"],
        },
        "wall_seconds": report["wall_seconds"],
        "cells": {},
    }
    for preset, policies in report["cells"].items():
        for policy, caps in policies.items():
            for ckey, cell in caps.items():
                dest = (
                    block["cells"]
                    .setdefault(preset, {})
                    .setdefault(policy, {})
                    .setdefault(ckey, {})
                )
                dest["fleet_break_even_seconds"] = cell[
                    "fleet_break_even_seconds"
                ]
                dest["mean_occupancy_pct"] = cell["mean_occupancy_pct"]
                slots = cell["slots"]
                dest["slot_loads"] = slots["loads"]
                dest["slot_reloads"] = slots["reloads"]
                dest["slot_evictions"] = slots["evictions"]
                store = cell["store"]
                dest["store_hits"] = store["hits"]
                dest["store_misses"] = store["misses"]
                dest["cross_app_hits"] = store["cross_app_hits"]
    return block


def run_mix_bench(
    presets=DEFAULT_MIX_PRESETS,
    policies=DEFAULT_MIX_POLICIES,
    capacities=DEFAULT_MIX_CAPACITIES,
    events: int = 120,
    seed: int = 0,
    out: str | os.PathLike | None = DEFAULT_MIX_BENCH_OUT,
    store_root: str | os.PathLike | None = None,
    apps=None,
) -> dict:
    """Sweep the fleet grid (mix entropy x policy x slot count).

    Specialization profiles are built once (the only measured wall time
    that matters); every grid cell then replays the preset's trace on the
    virtual clock against a cold per-cell fleet store, so identical
    (presets, policies, capacities, events, seed) inputs reproduce every
    deterministic cell bit-identically. The *contended* cell — the
    (preset, capacity) pair where plain LRU evicts most — gates the
    break-even-aware policy: it must strictly beat LRU there, or the
    report says so and ``repro mix`` exits non-zero.
    """
    from repro.mix.profiles import DEFAULT_APPS, build_app_profiles
    from repro.mix.simulator import simulate_cell
    from repro.mix.trace import (
        build_trace,
        empirical_entropy,
        mix_entropy,
        preset_config,
    )

    apps = tuple(apps) if apps else DEFAULT_APPS
    t0 = time.perf_counter()
    profiles = build_app_profiles(apps)
    profile_wall = time.perf_counter() - t0

    owns_store = store_root is None
    if owns_store:
        store_root = tempfile.mkdtemp(prefix="repro-mix-store-")
    store_root = os.fspath(store_root)

    traces = {}
    entropy = {}
    for preset in presets:
        config = preset_config(preset, events=events, seed=seed)
        traces[preset] = build_trace(config)
        entropy[preset] = {
            "configured": round(mix_entropy(config.mix), 9),
            "empirical": round(empirical_entropy(traces[preset]), 9),
        }

    def run_cell(preset: str, policy: str, capacity: int) -> dict:
        cell_root = os.path.join(
            store_root, f"{preset}-{policy}-{capacity}"
        )
        return simulate_cell(
            profiles,
            traces[preset],
            policy,
            capacity,
            cell_root,
            mix_name=preset,
        ).as_dict()

    t1 = time.perf_counter()
    cells: dict = {}
    try:
        for preset in presets:
            for policy in policies:
                for capacity in capacities:
                    cells.setdefault(preset, {}).setdefault(policy, {})[
                        _mix_cell_key(capacity)
                    ] = run_cell(preset, policy, capacity)

        # Contended cell: the (preset, capacity) pair where plain LRU
        # evicts most — deterministic, so the gate targets the same cell
        # on every host.
        contended = None
        if "lru" in policies:
            best = (-1, "", 0)
            for preset in presets:
                for capacity in capacities:
                    evictions = cells[preset]["lru"][_mix_cell_key(capacity)][
                        "slots"
                    ]["evictions"]
                    if evictions > best[0]:
                        best = (evictions, preset, capacity)
            if best[0] > 0:
                contended = {
                    "preset": best[1],
                    "capacity": best[2],
                    "lru_evictions": best[0],
                }

        gate = {"breakeven_beats_lru": None, "contended": contended}
        if contended is not None and "breakeven" in policies:
            ckey = _mix_cell_key(contended["capacity"])
            lru_be = cells[contended["preset"]]["lru"][ckey][
                "fleet_break_even_seconds"
            ]
            be_be = cells[contended["preset"]]["breakeven"][ckey][
                "fleet_break_even_seconds"
            ]
            gate["lru_break_even_seconds"] = lru_be
            gate["breakeven_break_even_seconds"] = be_be
            gate["breakeven_beats_lru"] = (
                lru_be is not None and be_be is not None and be_be < lru_be
            )

        # Determinism self-check: re-simulate the contended (or first)
        # cell from the same frozen inputs and require bit-identity.
        check_preset = contended["preset"] if contended else presets[0]
        check_capacity = contended["capacity"] if contended else capacities[0]
        check_policy = policies[0]
        rerun_root = os.path.join(store_root, "determinism-rerun")
        rerun = simulate_cell(
            profiles,
            traces[check_preset],
            check_policy,
            check_capacity,
            rerun_root,
            mix_name=check_preset,
        ).as_dict()
        first = cells[check_preset][check_policy][_mix_cell_key(check_capacity)]
        determinism = {
            "cell": {
                "preset": check_preset,
                "policy": check_policy,
                "capacity": check_capacity,
            },
            "bit_identical": json.dumps(rerun, sort_keys=True)
            == json.dumps(first, sort_keys=True),
        }
    finally:
        if owns_store:
            shutil.rmtree(store_root, ignore_errors=True)

    grid_wall = time.perf_counter() - t1
    report = {
        "schema": BENCH_MIX_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "apps": list(apps),
        "presets": list(presets),
        "policies": list(policies),
        "capacities": list(capacities),
        "events": events,
        "seed": seed,
        "entropy": entropy,
        "profile": {
            "wall_seconds": round(profile_wall, 3),
            "search_seconds": {
                name: round(p.search_seconds, 3) for name, p in profiles.items()
            },
            "configurations": {
                name: len(p.candidates) for name, p in profiles.items()
            },
        },
        "cells": cells,
        "gate": gate,
        "determinism": determinism,
        "wall_seconds": round(profile_wall + grid_wall, 3),
    }
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    from repro.obs.ledger import current_run

    recorder = current_run()
    if recorder is not None:
        recorder.attach_extra("mix", mix_manifest_block(report))
    return report


def render_mix_bench(report: dict) -> str:
    """Human-readable fleet-grid table for the ``repro mix`` CLI."""
    from repro.util.tables import Table

    table = Table(
        columns=[
            "mix",
            "H",
            "policy",
            "slots",
            "occ%",
            "loads",
            "reloads",
            "evict",
            "store-hit%",
            "xapp",
            "fleet-BE(s)",
        ],
        title="Fleet workload-mix grid (break-even vs policy vs capacity)",
    )
    for preset, policies in report["cells"].items():
        h = report["entropy"][preset]["configured"]
        for policy, caps in policies.items():
            for ckey in sorted(caps):
                cell = caps[ckey]
                slots = cell["slots"]
                store = cell["store"]
                lookups = store["hits"] + store["misses"]
                hit_pct = 100.0 * store["hits"] / lookups if lookups else 0.0
                be = cell["fleet_break_even_seconds"]
                table.add_row(
                    [
                        preset,
                        f"{h:.2f}",
                        policy,
                        cell["capacity"],
                        f"{cell['mean_occupancy_pct']:.1f}",
                        slots["loads"],
                        slots["reloads"],
                        slots["evictions"],
                        f"{hit_pct:.1f}",
                        store["cross_app_hits"],
                        f"{be:.1f}" if be is not None else "-",
                    ]
                )
    lines = [table.render()]
    gate = report.get("gate") or {}
    contended = gate.get("contended")
    if contended:
        verdict = gate.get("breakeven_beats_lru")
        lines.append(
            f"contended cell: mix={contended['preset']} "
            f"slots={contended['capacity']} "
            f"(lru evictions={contended['lru_evictions']}) -- "
            f"breakeven {gate.get('breakeven_break_even_seconds')}s vs "
            f"lru {gate.get('lru_break_even_seconds')}s: "
            + ("breakeven wins" if verdict else "breakeven does NOT win")
        )
    else:
        lines.append("contended cell: none (no LRU evictions anywhere in grid)")
    det = report.get("determinism") or {}
    if det:
        lines.append(
            "determinism rerun: "
            + ("bit-identical" if det.get("bit_identical") else "MISMATCH")
        )
    return "\n".join(lines)
