"""Wall-clock benchmark of the parallel runner and the persistent cache.

Section VI-A of the paper argues that a bitstream cache (and, in VI-B, a
faster CAD flow) is what moves the break-even times of Table IV; this
module measures the two mechanisms this reproduction actually implements —
worker-pool sharding (``--jobs``) and the persistent bitstream cache
(``--cache``) — against the serial cold baseline, and writes the evidence
as ``BENCH_parallel.json`` so the repository carries measured numbers, not
claims.

Four phases, each a full ``analyze_suite`` run with the in-process memo
cleared:

1. ``serial_cold`` — jobs=1, no persistent cache (the paper-faithful run);
2. ``parallel_cold`` — jobs=N, no persistent cache;
3. ``cache_cold`` — jobs=1 against an empty persistent cache (populates);
4. ``cache_warm`` — jobs=1 against the now-warm cache (every candidate a
   hit; the ``cad.implementations`` counter drops to the failures only).

Per phase we record the wall seconds, the ``cad.implementations`` counter
(virtual CAD work actually performed), and the cache hit/miss statistics.
Speedups are computed from the recorded wall times. On a single-core host
the honest parallel speedup is ~1x — the cache speedup is the headline
number there.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time

from repro.obs.metrics import disable_metrics, enable_metrics

#: Report schema identifier (bump on breaking changes).
BENCH_SCHEMA = "repro-bench-parallel/1"

#: Default report location, committed at the repository root.
DEFAULT_BENCH_OUT = "BENCH_parallel.json"


def _phase(domain: str, jobs: int, backend: str, cache) -> dict:
    """One timed ``analyze_suite`` run with fresh metrics and memo."""
    from repro.core.cache import PersistentBitstreamCache
    from repro.experiments.runner import analyze_suite, clear_cache

    clear_cache()
    if cache is not None and not isinstance(cache, PersistentBitstreamCache):
        cache = PersistentBitstreamCache(root=cache)
    registry = enable_metrics()
    try:
        t0 = time.perf_counter()
        analyses = analyze_suite(domain, jobs=jobs, backend=backend, cache=cache)
        wall = time.perf_counter() - t0
        counters = registry.snapshot()["counters"]
    finally:
        disable_metrics()
    result = {
        "jobs": jobs,
        "backend": backend if jobs > 1 else None,
        "wall_seconds": round(wall, 3),
        "apps": len(analyses),
        "cad_implementations": counters.get("cad.implementations", 0),
    }
    if cache is not None:
        result["cache"] = cache.stats()
    return result


def run_parallel_bench(
    domain: str = "embedded",
    jobs: int = 4,
    backend: str = "process",
    out: str | os.PathLike | None = DEFAULT_BENCH_OUT,
    cache_dir: str | os.PathLike | None = None,
) -> dict:
    """Run the four-phase benchmark; returns (and optionally writes) the report.

    *cache_dir* defaults to a temporary directory that is removed
    afterwards, so the benchmark never pollutes (or is polluted by) the
    working tree's ``.repro-cache/``.
    """
    owns_cache_dir = cache_dir is None
    if owns_cache_dir:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        phases = {
            "serial_cold": _phase(domain, 1, backend, None),
            "parallel_cold": _phase(domain, jobs, backend, None),
            "cache_cold": _phase(domain, 1, backend, cache_dir),
            "cache_warm": _phase(domain, 1, backend, cache_dir),
        }
    finally:
        if owns_cache_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)

    def speedup(a: str, b: str) -> float:
        return round(
            phases[a]["wall_seconds"] / max(1e-9, phases[b]["wall_seconds"]), 3
        )

    report = {
        "schema": BENCH_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "domain": domain,
        "jobs": jobs,
        "backend": backend,
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "phases": phases,
        "speedups": {
            "parallel_vs_serial": speedup("serial_cold", "parallel_cold"),
            "warm_cache_vs_cold": speedup("cache_cold", "cache_warm"),
            "warm_cache_vs_serial": speedup("serial_cold", "cache_warm"),
        },
    }
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def render_bench(report: dict) -> str:
    """ASCII rendering of a benchmark report for the CLI."""
    from repro.util.tables import Table

    table = Table(
        columns=["phase", "jobs", "wall [s]", "CAD impls", "cache hits"],
        title=(
            f"Parallel/cache benchmark: {report.get('domain')} suite "
            f"({report.get('host', {}).get('cpus', '?')} cpu)"
        ),
    )
    for name, phase in (report.get("phases") or {}).items():
        cache = phase.get("cache") or {}
        table.add_row(
            [
                name,
                phase.get("jobs", 1),
                f"{phase.get('wall_seconds', 0.0):.2f}",
                phase.get("cad_implementations", 0),
                cache.get("hits", "-") if cache else "-",
            ]
        )
    lines = [table.render()]
    speedups = report.get("speedups") or {}
    if speedups:
        lines.append(
            "speedups: "
            + ", ".join(f"{k}={v}x" for k, v in speedups.items())
        )
    return "\n".join(lines)
