"""Trace-driven what-if replay of a recorded specialization run.

Table IV answers the paper's forward-looking question — what would
break-even look like with a bitstream cache and a faster CAD flow? — from
the analytic model in :mod:`repro.core.extrapolate`. This module answers
the same question from *measured* data: it replays a recorded ledger
run's span trace under hypothetical knobs and recomputes break-even with
the exact :class:`repro.core.breakeven.BreakEvenModel` the run used.

Knobs (:class:`WhatIfKnobs`):

- **cache hit rate** — removes whole candidate chains using the very
  protocol of :class:`repro.core.cache.CacheSimulation` (same
  deterministic RNG stream, same candidate ordering), Section VI-A;
- **CAD speedup** — uniform (Section VI-C's "faster tools") or per stage
  (e.g. only Bitgen), scaling the measured per-candidate stage splits;
- **N parallel CAD workers** — list-schedules the measured per-candidate
  chain durations greedily in ``custom_id`` order, the overlap the paper
  notes is possible because candidate generations are independent.

At the identity point (0 % cache, 0 % speedup, 1 worker) the replayed
overhead is exactly the recorded ``search + toolflow + reconfiguration``
sum, so the replayed break-even reproduces the run's recorded value on
the virtual clock (up to the manifest's 6-decimal rounding).

:func:`whatif_grid` regenerates the full Table IV-style grid from the
trace and :func:`check_grids` cross-checks it cell-by-cell against the
analytic grid in the style of :mod:`repro.obs.fidelity`, flagging cells
where the trace-driven and analytic models diverge beyond a tolerance —
drift there means the recorded behaviour no longer matches the model the
paper's Table IV is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.critpath import STAGE_KEYS, STAGE_LABELS, AppReplay, RunReplay
from repro.util.rng import DeterministicRng
from repro.util.tables import Table
from repro.util.timefmt import format_hhmmss

#: Default relative tolerance for the trace-vs-analytic grid cross-check.
DEFAULT_GRID_TOLERANCE = 0.05


@dataclass(frozen=True)
class WhatIfKnobs:
    """Hypothetical-scenario parameters for one replay."""

    cache_hit_pct: float = 0.0
    cad_speedup_pct: float = 0.0  # uniform speedup over the whole chain
    stage_speedup_pct: tuple[tuple[str, float], ...] = ()  # (stage, pct)
    workers: int = 1
    trials: int = 16  # cache-population trials, as in CacheSimulation
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cache_hit_pct <= 100.0:
            raise ValueError("cache hit rate must be within [0, 100] percent")
        if not 0.0 <= self.cad_speedup_pct < 100.0 + 1e-9:
            raise ValueError("CAD speedup must be within [0, 100] percent")
        for stage, pct in self.stage_speedup_pct:
            if stage not in STAGE_KEYS:
                raise ValueError(
                    f"unknown CAD stage {stage!r} (choose from {', '.join(STAGE_KEYS)})"
                )
            if not 0.0 <= pct <= 100.0:
                raise ValueError("stage speedup must be within [0, 100] percent")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")

    @property
    def stage_speedups(self) -> dict[str, float]:
        return dict(self.stage_speedup_pct)

    def describe(self) -> str:
        parts = [
            f"cache {self.cache_hit_pct:g}%",
            f"CAD +{self.cad_speedup_pct:g}%",
        ]
        parts.extend(f"{stage} +{pct:g}%" for stage, pct in self.stage_speedup_pct)
        parts.append(f"{self.workers} worker{'s' if self.workers != 1 else ''}")
        return ", ".join(parts)


def candidate_chain_seconds(candidate, knobs: WhatIfKnobs) -> float:
    """Virtual seconds of one candidate's CAD chain under the knobs."""
    uniform = 1.0 - knobs.cad_speedup_pct / 100.0
    stage_speedups = knobs.stage_speedups
    if not stage_speedups:
        return candidate.virtual_total * uniform
    total = 0.0
    for stage in STAGE_KEYS:
        stage_factor = 1.0 - stage_speedups.get(stage, 0.0) / 100.0
        total += candidate.virtual_stage(stage) * uniform * stage_factor
    return total


def _list_schedule(durations: Sequence[float], workers: int) -> float:
    """Greedy list-scheduling makespan, jobs taken in the given order."""
    if workers <= 1 or len(durations) <= 1:
        return sum(durations)
    finish = [0.0] * workers
    for dur in durations:
        slot = min(range(workers), key=lambda w: finish[w])
        finish[slot] += dur
    return max(finish) if durations else 0.0


def _toolflow_seconds(app: AppReplay, knobs: WhatIfKnobs, trial: int) -> float:
    """One trial's tool-flow makespan: cache removal + speedups + workers.

    The cache-population protocol matches
    :meth:`repro.core.cache.CacheSimulation.effective_toolflow_seconds`
    bit for bit (same RNG stream keyed on seed/trial/candidate count, same
    index ordering), so at 1 worker with uniform speedups the replay and
    the analytic model agree exactly.
    """
    n = len(app.candidates)
    if n == 0:
        return 0.0
    n_cached = int(round(n * knobs.cache_hit_pct / 100.0))
    rng = DeterministicRng(f"cache-sim/{knobs.seed}/{trial}/{n}")
    order = list(range(n))
    rng.shuffle(order)
    cached = set(order[:n_cached])
    durations = [
        candidate_chain_seconds(cand, knobs)
        for i, cand in enumerate(app.candidates)
        if i not in cached
    ]
    return _list_schedule(durations, knobs.workers)


def app_overhead_seconds(app: AppReplay, knobs: WhatIfKnobs) -> float:
    """Replayed specialization overhead of one app under the knobs."""
    toolflow = sum(
        _toolflow_seconds(app, knobs, trial) for trial in range(knobs.trials)
    ) / knobs.trials
    return app.search_virtual + toolflow + app.icap_virtual


# -- break-even replay ---------------------------------------------------------
@dataclass
class WhatIfAppResult:
    """One application's replayed overhead and break-even."""

    name: str
    baseline_overhead: float  # recorded serial overhead (no knobs)
    overhead: float
    baseline_break_even: float
    break_even: float


@dataclass
class WhatIfResult:
    """Scenario replay over every app with break-even inputs."""

    knobs: WhatIfKnobs
    apps: list[WhatIfAppResult] = field(default_factory=list)

    @property
    def break_even_mean(self) -> float:
        return _mean_finite([a.break_even for a in self.apps])

    @property
    def baseline_break_even_mean(self) -> float:
        return _mean_finite([a.baseline_break_even for a in self.apps])

    def render(self) -> str:
        table = Table(
            columns=["app", "overhead [s]", "break-even", "recorded", "speedup"],
            title=f"What-if replay: {self.knobs.describe()}",
        )
        for app in self.apps:
            if math.isfinite(app.break_even) and app.break_even > 0:
                gain = (
                    f"{app.baseline_break_even / app.break_even:.2f}x"
                    if math.isfinite(app.baseline_break_even)
                    else "-"
                )
            else:
                gain = "-"
            table.add_row(
                [
                    app.name,
                    f"{app.overhead:.2f}",
                    _fmt_break_even(app.break_even),
                    _fmt_break_even(app.baseline_break_even),
                    gain,
                ]
            )
        table.add_footer(
            [
                "AVG",
                "",
                _fmt_break_even(self.break_even_mean),
                _fmt_break_even(self.baseline_break_even_mean),
                "",
            ]
        )
        return table.render()


def _mean_finite(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return sum(finite) / len(finite) if finite else math.inf


def _fmt_break_even(value: float) -> str:
    return format_hhmmss(value) if math.isfinite(value) else "never"


def breakeven_inputs(app_names: Sequence[str]) -> dict[str, object]:
    """Re-derive per-app break-even model inputs for recorded app names.

    Runs the deterministic analysis pipeline (memoized in-process) for
    each registry app and returns name ->
    :class:`repro.core.extrapolate.AppBreakEvenInputs`. Raises
    ``KeyError`` for names not in the app registry (e.g. ad-hoc ``jit``
    runs), which callers surface as "break-even replay unavailable".
    """
    from repro.experiments.runner import analyze_app
    from repro.experiments.table4 import breakeven_inputs_from

    analyses = [analyze_app(name) for name in app_names]
    return {inp.name: inp for inp in breakeven_inputs_from(analyses)}


def whatif_break_even(
    replay: RunReplay,
    inputs: dict[str, object],
    knobs: WhatIfKnobs,
    model=None,
) -> WhatIfResult:
    """Replay one scenario; apps without break-even inputs are skipped."""
    from repro.core.breakeven import BreakEvenModel

    model = model or BreakEvenModel()
    baseline = WhatIfKnobs(trials=knobs.trials, seed=knobs.seed)
    result = WhatIfResult(knobs=knobs)
    for app in replay.apps:
        inp = inputs.get(app.name)
        if inp is None:
            continue

        def analyze(overhead: float) -> float:
            return model.analyze(
                inp.module, inp.profile, inp.coverage, inp.estimates, overhead
            ).live_aware_seconds

        overhead = app_overhead_seconds(app, knobs)
        baseline_overhead = app_overhead_seconds(app, baseline)
        result.apps.append(
            WhatIfAppResult(
                name=app.name,
                baseline_overhead=baseline_overhead,
                overhead=overhead,
                baseline_break_even=analyze(baseline_overhead),
                break_even=analyze(overhead),
            )
        )
    return result


# -- Table IV-style grid from the trace ----------------------------------------
def whatif_grid(
    replay: RunReplay,
    inputs: dict[str, object],
    hit_rates: Sequence[int] | None = None,
    cad_speedups: Sequence[int] | None = None,
    workers: int = 1,
    trials: int = 16,
    model=None,
):
    """Regenerate the Table IV grid from measured spans.

    Returns a :class:`repro.core.extrapolate.ExtrapolationGrid` whose
    cells are mean break-even seconds over the apps with inputs, computed
    from the replayed (not analytic) overheads.
    """
    from repro.core.breakeven import BreakEvenModel
    from repro.core.extrapolate import (
        DEFAULT_CAD_SPEEDUPS,
        DEFAULT_HIT_RATES,
        ExtrapolationGrid,
    )

    hit_rates = list(hit_rates) if hit_rates is not None else list(DEFAULT_HIT_RATES)
    cad_speedups = (
        list(cad_speedups) if cad_speedups is not None else list(DEFAULT_CAD_SPEEDUPS)
    )
    model = model or BreakEvenModel()
    apps = [a for a in replay.apps if a.name in inputs]
    grid = ExtrapolationGrid(cache_hit_rates=hit_rates, cad_speedups=cad_speedups)
    for hit in hit_rates:
        for speedup in cad_speedups:
            knobs = WhatIfKnobs(
                cache_hit_pct=float(hit),
                cad_speedup_pct=float(speedup),
                workers=workers,
                trials=trials,
            )
            values = []
            for app in apps:
                inp = inputs[app.name]
                overhead = app_overhead_seconds(app, knobs)
                values.append(
                    model.analyze(
                        inp.module,
                        inp.profile,
                        inp.coverage,
                        inp.estimates,
                        overhead,
                    ).live_aware_seconds
                )
            grid.seconds[(hit, speedup)] = _mean_finite(values)
    return grid


def analytic_grid(
    inputs: dict[str, object],
    hit_rates: Sequence[int] | None = None,
    cad_speedups: Sequence[int] | None = None,
    trials: int = 16,
):
    """Analytic Table IV grid for the same app set (cross-check baseline)."""
    from repro.core.extrapolate import extrapolate_break_even

    return extrapolate_break_even(
        sorted(inputs.values(), key=lambda inp: inp.name),
        list(hit_rates) if hit_rates is not None else None,
        list(cad_speedups) if cad_speedups is not None else None,
        trials=trials,
    )


# -- fidelity-style cross-check ------------------------------------------------
@dataclass(frozen=True)
class GridCheckCell:
    """One (hit, speedup) comparison between trace-driven and analytic."""

    hit_pct: int
    speedup_pct: int
    trace_seconds: float
    analytic_seconds: float
    tolerance: float

    @property
    def rel_error(self) -> float:
        if math.isinf(self.trace_seconds) and math.isinf(self.analytic_seconds):
            return 0.0
        if math.isinf(self.trace_seconds) or math.isinf(self.analytic_seconds):
            return math.inf
        if self.analytic_seconds == 0.0:
            return 0.0 if self.trace_seconds == 0.0 else math.inf
        return abs(self.trace_seconds - self.analytic_seconds) / abs(
            self.analytic_seconds
        )

    @property
    def passed(self) -> bool:
        return self.rel_error <= self.tolerance

    @property
    def key(self) -> str:
        return f"h{self.hit_pct}.s{self.speedup_pct}"


@dataclass
class GridCheck:
    """Cell-by-cell divergence report between the two Table IV models."""

    tolerance: float
    cells: list[GridCheckCell] = field(default_factory=list)

    @property
    def flagged(self) -> list[GridCheckCell]:
        return [c for c in self.cells if not c.passed]

    @property
    def ok(self) -> bool:
        return not self.flagged

    def render(self) -> str:
        table = Table(
            columns=["cell", "trace", "analytic", "rel err", "status"],
            title=(
                "Trace-driven vs analytic Table IV "
                f"(tolerance {self.tolerance:.1%})"
            ),
        )
        for cell in self.cells:
            err = (
                f"{cell.rel_error:.3%}"
                if math.isfinite(cell.rel_error)
                else "inf"
            )
            table.add_row(
                [
                    f"hit {cell.hit_pct}% / CAD +{cell.speedup_pct}%",
                    _fmt_break_even(cell.trace_seconds),
                    _fmt_break_even(cell.analytic_seconds),
                    err,
                    "ok" if cell.passed else "DIVERGED",
                ]
            )
        table.add_footer(
            [
                f"{len(self.cells)} cells",
                "",
                "",
                "",
                "ok" if self.ok else f"{len(self.flagged)} diverged",
            ]
        )
        return table.render()


def check_grids(trace_grid, analytic, tolerance: float = DEFAULT_GRID_TOLERANCE) -> GridCheck:
    """Compare two Table IV grids cell-by-cell (must share axes)."""
    if (
        trace_grid.cache_hit_rates != analytic.cache_hit_rates
        or trace_grid.cad_speedups != analytic.cad_speedups
    ):
        raise ValueError("grids have different axes; cannot cross-check")
    check = GridCheck(tolerance=tolerance)
    for hit in trace_grid.cache_hit_rates:
        for speedup in trace_grid.cad_speedups:
            check.cells.append(
                GridCheckCell(
                    hit_pct=hit,
                    speedup_pct=speedup,
                    trace_seconds=trace_grid.at(hit, speedup),
                    analytic_seconds=analytic.at(hit, speedup),
                    tolerance=tolerance,
                )
            )
    return check


# -- manifest block ------------------------------------------------------------
def _round_or_none(value: float, digits: int = 6):
    return round(value, digits) if math.isfinite(value) else None


def scenario_block(result: WhatIfResult) -> dict:
    """``whatif.scenario`` manifest payload for one knob combination."""
    return {
        "knobs": {
            "cache_hit_pct": result.knobs.cache_hit_pct,
            "cad_speedup_pct": result.knobs.cad_speedup_pct,
            "stage_speedup_pct": dict(result.knobs.stage_speedup_pct),
            "workers": result.knobs.workers,
            "trials": result.knobs.trials,
        },
        "break_even_mean": _round_or_none(result.break_even_mean),
        "baseline_break_even_mean": _round_or_none(
            result.baseline_break_even_mean
        ),
        "apps": {
            app.name: {
                "overhead": _round_or_none(app.overhead),
                "break_even": _round_or_none(app.break_even),
                "baseline_break_even": _round_or_none(app.baseline_break_even),
            }
            for app in result.apps
        },
    }


def grid_block(trace_grid, check: GridCheck, workers: int = 1) -> dict:
    """``whatif.grid`` + ``whatif.check`` manifest payload."""
    return {
        "grid": {
            "workers": workers,
            "cache_hit_rates": list(trace_grid.cache_hit_rates),
            "cad_speedups": list(trace_grid.cad_speedups),
            "cells": {
                f"h{hit}.s{speedup}": _round_or_none(
                    trace_grid.at(hit, speedup)
                )
                for hit in trace_grid.cache_hit_rates
                for speedup in trace_grid.cad_speedups
            },
        },
        "check": {
            "tolerance": check.tolerance,
            "checked": len(check.cells),
            "flagged": len(check.flagged),
            "flagged_cells": [c.key for c in check.flagged],
        },
    }


# -- fleet-mix what-if replay --------------------------------------------------
def whatif_mix(
    mix_block: dict,
    slots: int | None = None,
    policy: str | None = None,
    store_root=None,
) -> dict:
    """Replay a recorded fleet-mix grid under different slot counts/policies.

    *mix_block* is the ``mix`` block of a ``repro mix --ledger`` manifest.
    The traces are rebuilt bit-identically from the recorded (preset,
    events, seed) triple, the specialization profiles are re-derived from
    the app registry, and every requested cell re-simulates on the
    virtual clock. With no overrides the recorded grid replays as-is; the
    first recorded cell doubles as an **identity check** — its replayed
    fleet break-even must match the recorded value exactly, proving the
    replay runs the same simulation the manifest recorded.

    Returns a nested-dict report safe to attach as ``whatif.mix`` (every
    numeric cell is virtual-clock deterministic; gated at 1e-9).
    """
    import os
    import shutil
    import tempfile

    from repro.mix.profiles import build_app_profiles
    from repro.mix.simulator import simulate_cell
    from repro.mix.trace import build_trace, preset_config

    recorded_cells = mix_block.get("cells") or {}
    if not recorded_cells:
        raise ValueError("manifest mix block has no recorded cells")
    events = int(mix_block["events"])
    seed = int(mix_block["seed"])
    presets = list(recorded_cells)
    recorded_policies = list(next(iter(recorded_cells.values())))
    recorded_caps = sorted(
        int(ckey.lstrip("c"))
        for ckey in next(iter(next(iter(recorded_cells.values())).values()))
    )
    policies = [policy] if policy else recorded_policies
    capacities = [slots] if slots else recorded_caps

    owns_store = store_root is None
    if owns_store:
        store_root = tempfile.mkdtemp(prefix="repro-whatif-mix-")
    try:
        profiles = build_app_profiles()
        traces = {
            preset: build_trace(preset_config(preset, events=events, seed=seed))
            for preset in presets
        }

        def cell(preset: str, pol: str, cap: int) -> dict:
            result = simulate_cell(
                profiles,
                traces[preset],
                pol,
                cap,
                os.path.join(store_root, f"{preset}-{pol}-{cap}"),
                mix_name=preset,
            ).as_dict()
            return {
                "fleet_break_even_seconds": result["fleet_break_even_seconds"],
                "mean_occupancy_pct": result["mean_occupancy_pct"],
                "slot_loads": result["slots"]["loads"],
                "slot_reloads": result["slots"]["reloads"],
                "slot_evictions": result["slots"]["evictions"],
                "cross_app_hits": result["store"]["cross_app_hits"],
            }

        # Identity check against the first recorded cell.
        id_preset = presets[0]
        id_policy = recorded_policies[0]
        id_ckey = next(iter(recorded_cells[id_preset][id_policy]))
        id_cap = int(id_ckey.lstrip("c"))
        recorded_be = recorded_cells[id_preset][id_policy][id_ckey][
            "fleet_break_even_seconds"
        ]
        replayed_be = cell(id_preset, id_policy, id_cap)[
            "fleet_break_even_seconds"
        ]
        identity = {
            "preset_policy_capacity": f"{id_preset}/{id_policy}/{id_cap}",
            "recorded_break_even_seconds": recorded_be,
            "replayed_break_even_seconds": replayed_be,
            "identical": replayed_be == recorded_be,
        }

        cells: dict = {}
        for preset in presets:
            for pol in policies:
                for cap in capacities:
                    replayed = cell(preset, pol, cap)
                    recorded = (
                        recorded_cells.get(preset, {})
                        .get(pol, {})
                        .get(f"c{cap:02d}")
                    )
                    if recorded is not None:
                        replayed["recorded_break_even_seconds"] = recorded[
                            "fleet_break_even_seconds"
                        ]
                    cells.setdefault(preset, {}).setdefault(pol, {})[
                        f"c{cap:02d}"
                    ] = replayed
    finally:
        if owns_store:
            shutil.rmtree(store_root, ignore_errors=True)

    return {
        "events": events,
        "seed": seed,
        "overrides": {"slots": slots, "policy": policy},
        "identity": identity,
        "cells": cells,
    }


def render_whatif_mix(report: dict) -> str:
    """Human-readable table for ``repro whatif --slots/--policy``."""
    overrides = report.get("overrides") or {}
    parts = []
    if overrides.get("slots"):
        parts.append(f"slots={overrides['slots']}")
    if overrides.get("policy"):
        parts.append(f"policy={overrides['policy']}")
    table = Table(
        columns=["mix", "policy", "slots", "evict", "reloads", "fleet-BE(s)", "recorded"],
        title=(
            "Fleet-mix what-if replay"
            + (f" ({', '.join(parts)})" if parts else " (identity)")
        ),
    )
    for preset, policies in report["cells"].items():
        for pol, caps in policies.items():
            for ckey in sorted(caps):
                c = caps[ckey]
                be = c["fleet_break_even_seconds"]
                recorded = c.get("recorded_break_even_seconds")
                table.add_row(
                    [
                        preset,
                        pol,
                        int(ckey.lstrip("c")),
                        c["slot_evictions"],
                        c["slot_reloads"],
                        f"{be:.1f}" if be is not None else "-",
                        f"{recorded:.1f}" if recorded is not None else "-",
                    ]
                )
    lines = [table.render()]
    identity = report.get("identity") or {}
    lines.append(
        f"identity check ({identity.get('preset_policy_capacity')}): "
        + (
            "replayed == recorded"
            if identity.get("identical")
            else "MISMATCH vs recorded manifest"
        )
    )
    return "\n".join(lines)



__all__ = [
    "DEFAULT_GRID_TOLERANCE",
    "WhatIfKnobs",
    "WhatIfAppResult",
    "WhatIfResult",
    "GridCheck",
    "GridCheckCell",
    "analytic_grid",
    "app_overhead_seconds",
    "breakeven_inputs",
    "candidate_chain_seconds",
    "check_grids",
    "grid_block",
    "scenario_block",
    "whatif_break_even",
    "whatif_grid",
    "whatif_mix",
    "render_whatif_mix",
]
