"""Span-based tracing for the JIT-ISE pipeline.

The paper's central evidence is *where time goes*: Tables II and III are
per-stage wall-clock breakdowns of the ASIP specialization process. The
tracer makes every run of the reproduction inspectable the same way: each
pipeline phase opens a :class:`Span` (a named interval with attributes),
spans nest to form a tree, and the finished trace can be exported
(:mod:`repro.obs.export`) as JSON lines, a Chrome ``trace_event`` file, or
an ASCII stage-time table keyed to the paper's column names.

Two clocks coexist:

- **real time** — each span records monotonic ``perf_counter`` start/end
  timestamps (candidate search genuinely runs here, so its real time is a
  result, as in Table II's ``real [ms]`` column);
- **virtual time** — the CAD stages are modelled, so their spans carry a
  ``virtual_seconds`` attribute holding the calibrated Table III runtime.

The process-global default tracer is **disabled** until
:func:`enable_tracing` is called: a disabled tracer returns a shared no-op
span, so instrumented hot paths pay one attribute check and nothing else.

Batch experiments finish quickly enough that keeping every finished span
in memory is fine; a long-running specialization daemon
(:mod:`repro.serve`) is not, so the tracer also supports a bounded
buffer: :meth:`Tracer.configure_flush` sets a ``max_spans`` limit and,
optionally, a JSONL sink — when the buffer overflows, the oldest spans
are either appended to the sink (same schema as ``--trace`` exports, so
``repro trace``/Chrome export keep working on the flushed file) or
dropped ring-style.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One named, timed interval in the pipeline.

    Usable as a context manager; on exit it is timestamped and handed to
    its tracer. Attributes can be attached at creation, via
    :meth:`set_attr`, or after the fact (the tool flow back-fills
    ``virtual_seconds`` once the timing model has priced the stage).
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    attrs: dict = field(default_factory=dict)
    end: float | None = None
    thread: int = 0
    tracer: "Tracer | None" = field(default=None, repr=False)

    @property
    def duration(self) -> float:
        """Real elapsed seconds (to now if the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, end - self.start)

    @property
    def virtual_seconds(self) -> float | None:
        value = self.attrs.get("virtual_seconds")
        return float(value) if value is not None else None

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def set_attrs(self, **attrs) -> None:
        self.attrs.update(attrs)

    def finish(self) -> None:
        if self.end is None and self.tracer is not None:
            self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    attrs: dict = {}

    @property
    def duration(self) -> float:
        return 0.0

    @property
    def virtual_seconds(self) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        pass

    def set_attrs(self, **attrs) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe span collector.

    Parent/child nesting is tracked with a per-thread span stack, so
    concurrent pipelines (e.g. a future sharded experiment runner) produce
    correctly-parented trees without sharing state. Finished spans
    accumulate under a lock; :meth:`spans` returns a snapshot.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_spans: int | None = None,
        flush_path=None,
    ) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._next_id = itertools.count(1).__next__
        self.max_spans: int | None = None
        self.flush_path = None
        self._flush_file = None
        self.spans_flushed = 0
        self.spans_dropped = 0
        if max_spans is not None or flush_path is not None:
            self.configure_flush(flush_path, max_spans=max_spans)

    # -- recording -----------------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a span (context manager). No-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=stack[-1].span_id if stack else None,
            start=time.perf_counter(),
            attrs=dict(attrs),
            thread=threading.get_ident(),
            tracer=self,
        )
        stack.append(span)
        return span

    def event(self, name: str, **attrs):
        """Record an instantaneous (zero-duration) span."""
        span = self.span(name, **attrs)
        span.finish()
        return span

    def record_interval(self, name: str, start: float, end: float, **attrs):
        """Record an already-elapsed interval as a finished span.

        The serve plane learns how long a ticket waited in the admission
        queue only once a worker dequeues it; by then the wait is over, so
        it cannot be bracketed with :meth:`span`. This records the interval
        retroactively (parented under the innermost open span on this
        thread, e.g. the ``serve.request`` span) without touching the span
        stack.
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = getattr(self._local, "stack", None)
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=stack[-1].span_id if stack else None,
            start=start,
            attrs=dict(attrs),
            end=max(start, end),
            thread=threading.get_ident(),
            tracer=self,
        )
        with self._lock:
            self._finished.append(span)
            self._enforce_limit_locked()
        return span

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = getattr(self._local, "stack", None)
        if stack:
            # Normally `span` is on top; an exception unwinding through
            # several spans may finish them out of order — pop through.
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            self._finished.append(span)
            self._enforce_limit_locked()

    # -- long-run hygiene ----------------------------------------------------
    def configure_flush(self, flush_path=None, max_spans: int | None = None) -> None:
        """Bound the in-memory span buffer for long-running processes.

        With *flush_path* set, overflowing spans are appended to that JSONL
        file (truncated here) in the same record schema as ``--trace``
        exports; without a sink the buffer behaves as a ring and the
        oldest spans are dropped (counted in ``spans_dropped``).
        """
        with self._lock:
            if self._flush_file is not None:
                self._flush_file.close()
                self._flush_file = None
            self.max_spans = max_spans
            self.flush_path = flush_path
            self.spans_flushed = 0
            self.spans_dropped = 0
            if flush_path is not None:
                self._flush_file = open(flush_path, "w", encoding="utf-8")
            self._enforce_limit_locked()

    def _enforce_limit_locked(self) -> None:
        if self.max_spans is None or len(self._finished) <= self.max_spans:
            return
        # Evict in batches (down to half the limit) so the list splice is
        # amortised instead of per-span.
        keep = max(1, self.max_spans // 2)
        overflow = self._finished[:-keep]
        self._finished = self._finished[-keep:]
        if self._flush_file is not None:
            self._write_records_locked(overflow)
        else:
            self.spans_dropped += len(overflow)

    def _write_records_locked(self, spans) -> None:
        import json

        from repro.obs.export import span_to_dict

        for s in spans:
            self._flush_file.write(
                json.dumps(span_to_dict(s, epoch=self.epoch), sort_keys=True) + "\n"
            )
        self._flush_file.flush()
        self.spans_flushed += len(spans)

    def flush_all(self) -> int:
        """Flush every remaining in-memory span to the sink and clear.

        Returns the total number of spans written to the sink so far.
        No-op (returning 0) when no sink is configured.
        """
        with self._lock:
            if self._flush_file is None:
                return 0
            if self._finished:
                self._write_records_locked(self._finished)
                self._finished = []
            return self.spans_flushed

    def close_flush(self) -> None:
        with self._lock:
            if self._flush_file is not None:
                self._flush_file.close()
                self._flush_file = None

    # -- sharded runners -----------------------------------------------------
    @contextmanager
    def child_context(self, parent: Span | None):
        """Parent this thread's spans under *parent* for the duration.

        A worker thread has an empty span stack, so spans it opens would
        become roots; the sharded experiment runner wraps each unit of work
        in ``child_context(suite_span)`` so the per-app / per-candidate
        spans stay attached to the tree the main thread is building. The
        parent span itself is owned (and finished) by its opening thread —
        here it is only a parenting reference.
        """
        if not self.enabled or parent is None:
            yield
            return
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(parent)
        try:
            yield
        finally:
            # A leaked span may sit above the parent; pop through, like
            # _finish does when exceptions unwind several spans at once.
            while stack and stack[-1] is not parent:
                stack.pop()
            if stack:
                stack.pop()

    def absorb(self, records, parent: Span | None = None, base: float | None = None) -> int:
        """Merge exported span records from a worker process into this tracer.

        *records* are :class:`repro.obs.export.SpanRecord`-shaped objects
        (``name``/``span_id``/``parent_id``/``t0``/``t1``/``thread``/
        ``attrs``) with times relative to the worker tracer's epoch. Span
        ids are remapped onto this tracer's id space, roots are reparented
        under *parent*, and times are rebased so the absorbed subtree
        starts at *base* (a ``perf_counter`` timestamp; default: the
        fan-out is assumed to have just finished). Returns the number of
        spans absorbed.
        """
        recs = list(records)
        if not self.enabled or not recs:
            return 0
        if base is None:
            extent = max(r.t1 for r in recs)
            base = time.perf_counter() - extent
        ids = {r.span_id: self._next_id() for r in recs}
        fallback = parent.span_id if parent is not None else None
        absorbed = []
        for r in recs:
            absorbed.append(
                Span(
                    name=r.name,
                    span_id=ids[r.span_id],
                    parent_id=(
                        ids.get(r.parent_id, fallback)
                        if r.parent_id is not None
                        else fallback
                    ),
                    start=base + r.t0,
                    attrs=dict(r.attrs),
                    end=base + r.t1,
                    thread=r.thread,
                    tracer=self,
                )
            )
        with self._lock:
            self._finished.extend(absorbed)
            self._enforce_limit_locked()
        return len(absorbed)

    # -- inspection ----------------------------------------------------------
    def current_span(self) -> Span | None:
        """The innermost open span on this thread (None outside any span).

        The event log (:mod:`repro.obs.log`) uses this to stamp each record
        with the span it was emitted under, correlating log lines to the
        exported trace of the same run.
        """
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_trace_id(self) -> str | None:
        """The distributed trace id carried by the innermost span that has one.

        The serve plane stamps ``trace_id`` on its ``serve.request`` spans
        (minted by the client, W3C-traceparent style); the event log uses
        this to correlate log lines with the cross-process trace.
        """
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        for span in reversed(stack):
            trace_id = span.attrs.get("trace_id")
            if trace_id:
                return str(trace_id)
        return None

    def spans(self) -> list[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            if self._flush_file is not None:
                self._flush_file.close()
                self._flush_file = None
            self.max_spans = None
            self.flush_path = None
            self.spans_flushed = 0
            self.spans_dropped = 0
        self._local = threading.local()
        self.epoch = time.perf_counter()


# -- process-global default tracer -------------------------------------------
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer all instrumentation points use."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _default_tracer
    _default_tracer = tracer
    return tracer


def enable_tracing(reset: bool = True) -> Tracer:
    """Turn the global tracer on (clearing old spans by default)."""
    if reset:
        _default_tracer.reset()
    _default_tracer.enabled = True
    return _default_tracer


def disable_tracing() -> Tracer:
    _default_tracer.enabled = False
    return _default_tracer


def tracing_enabled() -> bool:
    return _default_tracer.enabled


def span(name: str, **attrs):
    """Convenience: open a span on the global tracer."""
    return _default_tracer.span(name, **attrs)
