"""VM execution observatory: opcode-level dispatch profiling.

Three views of one app run, feeding the ROADMAP's dispatch-optimization
work:

1. **Opcode profile** — dynamic per-opcode and opcode-digram counts plus
   virtual (PPC405) cycles per opcode, all derived post-hoc from the block
   profile (:mod:`repro.vm.profiler`), so the run itself pays nothing.
2. **Real-vs-virtual divergence** — the opt-in block sampler attributes
   wall time to blocks; comparing each block's real share against its
   virtual-cycle share (the paper's Section IV profile) shows where the
   Python interpreter disagrees with the PPC405 model — exactly the
   blocks dispatch work should attack first, per the measured-cost
   selection argument of the microarchitecture-aware ISE literature
   (PAPERS.md).
3. **Superinstruction candidates** — straight-line opcode sequences from
   hot blocks ranked by estimated dispatch savings (dynamic frequency x
   measured per-dispatch cost from :mod:`repro.vm.dispatchcost`), the VM
   analogue of the paper's Section V ISE candidate ranking. The ranked
   list persists as the ``vm.superinsn`` manifest block for the fusion PR
   to consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.ir.module import Module
from repro.util.tables import Table
from repro.vm.costmodel import PPC405_COST_MODEL, CostModel
from repro.vm.dispatchcost import DispatchCostTable, measure_dispatch_costs
from repro.vm.profiler import (
    BlockKey,
    BlockTimeSampler,
    ExecutionProfile,
    static_block_opcodes,
)

# The excluded-opcode set and n-gram lengths live in repro.vm.fusion so the
# miner and the fusion-site matcher can never disagree about what is
# fusible; re-exported here for backwards compatibility.
from repro.vm.fusion import (  # noqa: F401  (re-export)
    DEFAULT_FUSE_TOP,
    FUSION_EXCLUDED,
    FusionPlan,
    MAX_SEQ_LEN,
    MIN_SEQ_LEN,
    plan_from_candidates,
)


@dataclass
class SuperInsnCandidate:
    """One ranked superinstruction candidate."""

    sequence: tuple[str, ...]
    dynamic_count: int
    static_sites: int
    est_saved_seconds: float

    @property
    def name(self) -> str:
        return "+".join(self.sequence)


@dataclass
class DivergenceRow:
    """Real vs virtual time share of one block."""

    function: str
    block: str
    executions: int
    virtual_share: float
    real_share: float

    @property
    def delta(self) -> float:
        """Real-minus-virtual share: positive = Python-bound block."""
        return self.real_share - self.virtual_share


@dataclass
class FusionReport:
    """Measured outcome of running an app with fusion enabled.

    The count cells (sites, covered/fused instructions, dispatches
    removed, the per-sequence table, and the three ``identical`` flags)
    are deterministic; only ``wall_seconds``/``speedup`` are wall-clock.
    """

    top: int
    sites: int
    fused_instructions: int
    dispatches_removed: int
    wall_seconds: float
    speedup: float
    steps_identical: bool
    blocks_identical: bool
    virtual_identical: bool
    sequences: dict[str, dict]

    @property
    def identical(self) -> bool:
        """Observational invisibility: all three invariants hold."""
        return (
            self.steps_identical
            and self.blocks_identical
            and self.virtual_identical
        )


@dataclass
class VmProfile:
    """The observatory's full view of one profiled app run."""

    app: str
    dataset: str
    steps: int
    block_executions: int
    wall_seconds: float
    virtual_cycles: float
    virtual_seconds: float
    opcode_counts: dict[str, int]
    opcode_cycles: dict[str, float]
    digram_counts: dict[tuple[str, str], int]
    block_counts: dict[BlockKey, int]
    virtual_shares: dict[BlockKey, float]
    real_shares: dict[BlockKey, float]
    sample_count: int
    sample_interval: int
    candidates: list[SuperInsnCandidate]
    dispatch: DispatchCostTable | None = None
    fusion: FusionReport | None = None

    @property
    def instructions_per_second(self) -> float:
        return self.steps / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def opcode_real_seconds(self) -> dict[str, float]:
        """Estimated real seconds per opcode (counts x calibrated cost)."""
        if self.dispatch is None:
            return {}
        return {
            mnemonic: count * self.dispatch.seconds_for(mnemonic)
            for mnemonic, count in self.opcode_counts.items()
        }

    def divergence_rows(self) -> list[DivergenceRow]:
        """Per-block real-vs-virtual share table, worst offenders first."""
        rows = [
            DivergenceRow(
                function=key[0],
                block=key[1],
                executions=self.block_counts.get(key, 0),
                virtual_share=self.virtual_shares.get(key, 0.0),
                real_share=self.real_shares.get(key, 0.0),
            )
            for key in set(self.virtual_shares) | set(self.real_shares)
        ]
        rows.sort(key=lambda r: (-abs(r.delta), r.function, r.block))
        return rows


# -- profiling ---------------------------------------------------------------
def profile_app(
    app: str,
    dataset: str | None = None,
    sample_interval: int = 64,
    cost_model: CostModel = PPC405_COST_MODEL,
    dispatch: DispatchCostTable | None = None,
    calibrate: bool = True,
    max_candidates: int = 10,
    fuse: int = 0,
) -> VmProfile:
    """Compile *app*, run it under the sampler, and assemble the profile.

    With ``sample_interval=0`` the run is unsampled (real shares empty).
    ``dispatch`` supplies a pre-measured cost table; otherwise one is
    calibrated unless ``calibrate`` is false. With ``fuse=K > 0`` the
    profiled run's own top-K mined sequences are spliced back in and the
    app re-run fused — the closed JIT-ISE loop — and the profile gains a
    :class:`FusionReport` comparing the two runs.
    """
    from repro.apps import compile_app, get_app

    spec = get_app(app)
    compiled = compile_app(spec)
    ds = spec.dataset(dataset) if dataset else spec.train

    if dispatch is None and calibrate:
        dispatch = measure_dispatch_costs()

    sampler = (
        BlockTimeSampler(interval=sample_interval) if sample_interval > 0 else None
    )
    start = perf_counter()
    result = compiled.run(ds, sampler=sampler)
    wall = perf_counter() - start

    prof = build_profile(
        app=spec.name,
        dataset=ds.name,
        module=compiled.module,
        profile=result.profile,
        steps=result.steps,
        wall_seconds=wall,
        sampler=sampler,
        cost_model=cost_model,
        dispatch=dispatch,
        max_candidates=max_candidates,
    )
    if fuse > 0:
        prof.fusion = fuse_and_measure(
            compiled,
            ds,
            result,
            wall,
            top=fuse,
            cost_model=cost_model,
            sample_interval=sample_interval,
        )
    return prof


def fuse_and_measure(
    compiled,
    dataset,
    plain_result,
    plain_wall: float,
    top: int,
    cost_model: CostModel = PPC405_COST_MODEL,
    sample_interval: int = 0,
) -> FusionReport:
    """Splice the plain run's top-*top* sequences back in; re-run fused.

    The fused run uses the same sampler mode as the plain one so the
    speedup compares like with like. Asserts observational invisibility by
    comparing steps, per-block counts, and the virtual PPC405 clock of the
    two runs bit-for-bit (the flags land in the regression-gated
    ``vm.fusion`` manifest cells).
    """
    plan = compiled.fusion_plan(top=top, profile=plain_result.profile)
    sampler = (
        BlockTimeSampler(interval=sample_interval)
        if sample_interval > 0
        else None
    )
    start = perf_counter()
    fused = compiled.run(dataset, sampler=sampler, fusion=plan)
    fused_wall = perf_counter() - start

    module = compiled.module
    plain_counts = {
        key: p.count for key, p in plain_result.profile.blocks.items()
    }
    fused_counts = {key: p.count for key, p in fused.profile.blocks.items()}
    plain_cycles = plain_result.profile.total_cycles(module, cost_model)
    fused_cycles = fused.profile.total_cycles(module, cost_model)

    sequences: dict[str, dict] = {}
    for site in plan.all_sites():
        entry = sequences.setdefault(
            site.name, {"length": site.length, "sites": 0}
        )
        entry["sites"] += 1
    return FusionReport(
        top=top,
        sites=plan.site_count,
        fused_instructions=plan.fused_instructions,
        dispatches_removed=plan.dispatches_removed(fused.profile),
        wall_seconds=fused_wall,
        speedup=plain_wall / max(fused_wall, 1e-9),
        steps_identical=plain_result.steps == fused.steps,
        blocks_identical=plain_counts == fused_counts,
        virtual_identical=plain_cycles == fused_cycles,
        sequences=dict(sorted(sequences.items())),
    )


def build_profile(
    app: str,
    dataset: str,
    module: Module,
    profile: ExecutionProfile,
    steps: int,
    wall_seconds: float,
    sampler: BlockTimeSampler | None,
    cost_model: CostModel = PPC405_COST_MODEL,
    dispatch: DispatchCostTable | None = None,
    max_candidates: int = 10,
) -> VmProfile:
    """Assemble a :class:`VmProfile` from an already-executed run."""
    virtual_cycles = profile.total_cycles(module, cost_model)
    overhead = (
        dispatch.dispatch_overhead_seconds if dispatch is not None else 0.0
    )
    return VmProfile(
        app=app,
        dataset=dataset,
        steps=steps,
        block_executions=profile.total_block_executions,
        wall_seconds=wall_seconds,
        virtual_cycles=virtual_cycles,
        virtual_seconds=cost_model.seconds(virtual_cycles),
        opcode_counts=profile.opcode_counts(module),
        opcode_cycles=profile.opcode_cycles(module, cost_model),
        digram_counts=profile.digram_counts(module),
        block_counts={key: p.count for key, p in profile.blocks.items()},
        virtual_shares=profile.block_time_shares(module, cost_model),
        real_shares=sampler.shares() if sampler is not None else {},
        sample_count=sampler.sample_count if sampler is not None else 0,
        sample_interval=sampler.interval if sampler is not None else 0,
        candidates=mine_superinsns(
            module, profile, overhead, top=max_candidates
        ),
        dispatch=dispatch,
    )


# -- superinstruction mining -------------------------------------------------
def mine_superinsns(
    module: Module,
    profile: ExecutionProfile,
    dispatch_overhead_seconds: float,
    min_len: int = MIN_SEQ_LEN,
    max_len: int = MAX_SEQ_LEN,
    top: int = 10,
) -> list[SuperInsnCandidate]:
    """Rank straight-line opcode sequences by estimated dispatch savings.

    Fusing a length-k sequence into one handler eliminates k-1 dispatches
    per dynamic execution, so ``savings = count x (k-1) x overhead``. The
    ranking is deterministic: the measured overhead is a common factor, so
    order depends only on the integer counts (ties break on the sequence).
    Sub-sequences that occur nowhere outside an already-selected longer
    candidate are dropped — they are the same fusion opportunity counted
    twice.
    """
    composition = static_block_opcodes(module)
    stats: dict[tuple[str, ...], list[int]] = {}
    for key, prof in profile.blocks.items():
        if prof.count == 0:
            continue
        ops = composition.get(key, ())
        if prof.static_instructions != len(ops):
            # The block was structurally modified after this profile was
            # recorded — in practice, the binary patcher spliced a CUSTOM
            # in and removed the covered nodes. The recorded counts
            # describe the *old* composition, so mining the new one would
            # count sequences across the patch seam (adjacencies that
            # never executed together). Skip the block: a post-patch
            # profile of the same app mines it normally.
            continue
        for length in range(min_len, max_len + 1):
            for start in range(len(ops) - length + 1):
                seq = ops[start : start + length]
                if any(op in FUSION_EXCLUDED for op in seq):
                    continue
                entry = stats.setdefault(tuple(seq), [0, 0])
                entry[0] += prof.count
                entry[1] += 1

    ranked = sorted(
        stats.items(),
        key=lambda item: (-item[1][0] * (len(item[0]) - 1), item[0]),
    )
    selected: list[SuperInsnCandidate] = []
    for seq, (count, sites) in ranked:
        if len(selected) >= top:
            break
        if any(
            _contains(c.sequence, seq) and c.dynamic_count >= count
            for c in selected
        ):
            continue
        selected.append(
            SuperInsnCandidate(
                sequence=seq,
                dynamic_count=count,
                static_sites=sites,
                est_saved_seconds=count
                * (len(seq) - 1)
                * dispatch_overhead_seconds,
            )
        )
    return selected


def _contains(haystack: tuple[str, ...], needle: tuple[str, ...]) -> bool:
    """Whether *needle* occurs as a contiguous run inside *haystack*."""
    if len(needle) > len(haystack):
        return False
    return any(
        haystack[i : i + len(needle)] == needle
        for i in range(len(haystack) - len(needle) + 1)
    )


# -- serialization -----------------------------------------------------------
def vmprof_json(prof: VmProfile) -> dict:
    """Full machine-readable report (the ``--json`` payload)."""
    return {
        "schema": "repro-vmprof/1",
        "app": prof.app,
        "dataset": prof.dataset,
        "steps": prof.steps,
        "block_executions": prof.block_executions,
        "wall_seconds": prof.wall_seconds,
        "instructions_per_second": prof.instructions_per_second,
        "virtual_cycles": prof.virtual_cycles,
        "virtual_seconds": prof.virtual_seconds,
        "sample_count": prof.sample_count,
        "sample_interval": prof.sample_interval,
        "opcodes": dict(sorted(prof.opcode_counts.items())),
        "opcode_cycles": dict(sorted(prof.opcode_cycles.items())),
        "opcode_real_seconds": dict(sorted(prof.opcode_real_seconds().items())),
        "digrams": {
            "+".join(pair): count
            for pair, count in top_digrams(prof, len(prof.digram_counts))
        },
        "divergence": [
            {
                "function": row.function,
                "block": row.block,
                "executions": row.executions,
                "virtual_share": row.virtual_share,
                "real_share": row.real_share,
                "delta": row.delta,
            }
            for row in prof.divergence_rows()
        ],
        "superinsn": [
            {
                "sequence": candidate.name,
                "length": len(candidate.sequence),
                "dynamic_count": candidate.dynamic_count,
                "static_sites": candidate.static_sites,
                "est_saved_seconds": candidate.est_saved_seconds,
            }
            for candidate in prof.candidates
        ],
        "dispatch": prof.dispatch.to_dict() if prof.dispatch else None,
        "fusion": (
            {
                "top": prof.fusion.top,
                "sites": prof.fusion.sites,
                "fused_instructions": prof.fusion.fused_instructions,
                "dispatches_removed": prof.fusion.dispatches_removed,
                "wall_seconds": prof.fusion.wall_seconds,
                "speedup": prof.fusion.speedup,
                "steps_identical": prof.fusion.steps_identical,
                "blocks_identical": prof.fusion.blocks_identical,
                "virtual_identical": prof.fusion.virtual_identical,
                "sequences": prof.fusion.sequences,
            }
            if prof.fusion is not None
            else None
        ),
    }


def vm_manifest_block(prof: VmProfile, top_digrams_n: int = 20) -> dict:
    """The ``vm`` run-ledger manifest block.

    Count cells (steps, opcode/digram/superinsn counts, virtual clocks)
    are deterministic and gated at 1e-9 by the regression sentinel; the
    measured cells (``wall_seconds``, ``dispatch.*``, ``*saved_ms``,
    ``sampled.*``) carry informational tolerances until ``--history``
    noise bands promote them.
    """
    digrams = {
        "+".join(pair): count
        for pair, count in top_digrams(prof, top_digrams_n)
    }
    superinsn = {
        candidate.name: {
            "rank": rank,
            "length": len(candidate.sequence),
            "dynamic_count": candidate.dynamic_count,
            "static_sites": candidate.static_sites,
            "saved_ms": candidate.est_saved_seconds * 1e3,
        }
        for rank, candidate in enumerate(prof.candidates, start=1)
    }
    block: dict = {
        "app": prof.app,
        "dataset": prof.dataset,
        "steps": prof.steps,
        "block_executions": prof.block_executions,
        "virtual_cycles": prof.virtual_cycles,
        "virtual_seconds": prof.virtual_seconds,
        "wall_seconds": prof.wall_seconds,
        "instructions_per_second": prof.instructions_per_second,
        "opcodes": dict(sorted(prof.opcode_counts.items())),
        "digrams": digrams,
        "superinsn": superinsn,
        "sampled": {
            "interval": prof.sample_interval,
            "samples": prof.sample_count,
        },
    }
    if prof.dispatch is not None:
        block["dispatch"] = {
            f"{name}_ns": seconds * 1e9
            for name, seconds in sorted(prof.dispatch.class_seconds.items())
        }
    if prof.fusion is not None:
        # vm.fusion.* cells are deterministic (mining + matching are pure
        # functions of the profile) and regression-gated at 1e-9, with the
        # three *_identical flags as 0/1 sentinels for the bit-identity
        # invariant; the measured vm.fused.* cells stay informational.
        block["fusion"] = {
            "top": prof.fusion.top,
            "sites": prof.fusion.sites,
            "fused_instructions": prof.fusion.fused_instructions,
            "dispatches_removed": prof.fusion.dispatches_removed,
            "steps_identical": int(prof.fusion.steps_identical),
            "blocks_identical": int(prof.fusion.blocks_identical),
            "virtual_identical": int(prof.fusion.virtual_identical),
            "sequences": {
                name: dict(entry)
                for name, entry in prof.fusion.sequences.items()
            },
        }
        block["fused"] = {
            "wall_seconds": prof.fusion.wall_seconds,
            "speedup": prof.fusion.speedup,
        }
    return block


def top_digrams(
    prof: VmProfile, top: int
) -> list[tuple[tuple[str, str], int]]:
    """Digrams by descending dynamic count (deterministic tie-break)."""
    ranked = sorted(prof.digram_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


# -- rendering ---------------------------------------------------------------
def render_vmprof(prof: VmProfile, top: int = 12) -> str:
    """ASCII report: opcodes on both clocks, digrams, divergence, miner."""
    sections: list[str] = []
    sections.append(
        f"vmprof: {prof.app}/{prof.dataset} - {prof.steps:,} instructions in "
        f"{prof.wall_seconds:.3f}s real "
        f"({prof.instructions_per_second / 1e6:.2f} M instr/s), "
        f"{prof.virtual_seconds * 1e3:.2f}ms virtual "
        f"({prof.virtual_cycles:,.0f} PPC405 cycles)"
    )

    real_by_op = prof.opcode_real_seconds()
    total_cycles = sum(prof.opcode_cycles.values()) or 1.0
    total_real = sum(real_by_op.values()) or 1.0
    table = Table(
        ["opcode", "count", "virt cycles", "virt %", "real est ms", "real %"],
        title=f"Top opcodes (by estimated real time, top {top})",
    )
    ranked_ops = sorted(
        prof.opcode_counts,
        key=lambda op: (-real_by_op.get(op, 0.0), -prof.opcode_counts[op], op),
    )
    for op in ranked_ops[:top]:
        cycles = prof.opcode_cycles.get(op, 0.0)
        real = real_by_op.get(op, 0.0)
        table.add_row(
            [
                op,
                f"{prof.opcode_counts[op]:,}",
                f"{cycles:,.0f}",
                f"{100 * cycles / total_cycles:.1f}",
                f"{real * 1e3:.2f}" if real_by_op else "-",
                f"{100 * real / total_real:.1f}" if real_by_op else "-",
            ]
        )
    sections.append(table.render())

    digram_table = Table(
        ["digram", "count"], title=f"Top opcode digrams (top {top})"
    )
    for pair, count in top_digrams(prof, top):
        digram_table.add_row(["+".join(pair), f"{count:,}"])
    sections.append(digram_table.render())

    if prof.real_shares:
        div_table = Table(
            ["function/block", "execs", "virt %", "real %", "delta pp"],
            title=(
                "Real-vs-virtual divergence (sampled, "
                f"{prof.sample_count} samples @ every "
                f"{prof.sample_interval} blocks)"
            ),
        )
        for row in prof.divergence_rows()[:top]:
            div_table.add_row(
                [
                    f"{row.function}/{row.block}",
                    f"{row.executions:,}",
                    f"{100 * row.virtual_share:.1f}",
                    f"{100 * row.real_share:.1f}",
                    f"{100 * row.delta:+.1f}",
                ]
            )
        sections.append(div_table.render())

    if prof.candidates:
        miner = Table(
            ["rank", "sequence", "dyn count", "sites", "est saved ms"],
            title="Superinstruction candidates (dispatch savings)",
        )
        for rank, candidate in enumerate(prof.candidates, start=1):
            miner.add_row(
                [
                    rank,
                    candidate.name,
                    f"{candidate.dynamic_count:,}",
                    candidate.static_sites,
                    f"{candidate.est_saved_seconds * 1e3:.2f}",
                ]
            )
        sections.append(miner.render())

    if prof.dispatch is not None:
        disp = Table(
            ["class", "ns/dispatch"],
            title="Measured dispatch cost (this host)",
        )
        for name, seconds in sorted(
            prof.dispatch.class_seconds.items(), key=lambda kv: -kv[1]
        ):
            disp.add_row([name, f"{seconds * 1e9:.0f}"])
        sections.append(disp.render())

    if prof.fusion is not None:
        fus = prof.fusion
        fusion_table = Table(
            ["sequence", "length", "sites"],
            title=(
                f"Fused superinstructions (top {fus.top}: {fus.sites} sites, "
                f"{fus.dispatches_removed:,} dispatches removed)"
            ),
        )
        for name, entry in fus.sequences.items():
            fusion_table.add_row([name, entry["length"], entry["sites"]])
        sections.append(fusion_table.render())
        sections.append(
            f"fused run: {fus.wall_seconds:.3f}s real "
            f"({fus.speedup:.2f}x vs plain); outputs/blocks/virtual clock "
            + ("bit-identical" if fus.identical else "DRIFTED")
        )

    return "\n\n".join(sections)
