"""Service-level objectives and error-budget burn alerts for the serve plane.

The paper's Section VI frames specialization as worthwhile only when its
overhead amortizes — the break-even time of Table IV. A serving
deployment (Section III's online premise) needs that framed as an
*objective*, not a point-in-time readout: this module declares SLOs over
the per-request records the daemon writes to ``requests.jsonl`` (warm
break-even p95, queue-reject rate, dedup efficiency, request error rate),
accounts an error budget per objective, and raises Google-SRE-style
multi-window burn-rate alerts (a *fast* burn over a short window pages; a
sustained *slow* burn tickets). Alerts are appended to ``alerts.jsonl``
in the run directory, correlated with the run id and the span id of the
offending request so they resolve against the same run's stitched trace.

Each objective classifies every request record as *good*, *bad*, or *not
applicable*; the objective holds when the good fraction stays at or above
``target``. The error budget is ``1 - target`` and the burn rate is the
observed bad fraction divided by that budget — burn 1.0 spends the budget
exactly at the sustainable rate, burn 20 exhausts it 20x too fast.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

#: Fast-burn (page) threshold: the classic 14.4x over short+long windows.
FAST_BURN = 14.4
#: Slow-burn (ticket) threshold over the long window only.
SLOW_BURN = 6.0


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over the request stream.

    *good* names a classifier (see ``_CLASSIFIERS``); *target* is the
    required good fraction in (0, 1); *threshold* parameterizes the
    classifier where one applies (the break-even bound, in virtual
    seconds). Windows are in the ``t_offset`` clock of requests.jsonl
    (seconds since daemon start).
    """

    name: str
    good: str
    target: float
    threshold: float | None = None
    fast_window: float = 60.0
    slow_window: float = 300.0
    fast_burn: float = FAST_BURN
    slow_burn: float = SLOW_BURN
    description: str = ""


def _good_break_even(record: dict, obj: SloObjective):
    if record.get("status") != "ok":
        return None
    be = record.get("break_even_seconds")
    if be is None:
        return None
    bound = obj.threshold if obj.threshold is not None else math.inf
    return float(be) <= bound


def _good_admitted(record: dict, obj: SloObjective):
    return record.get("status") != "rejected"


def _good_completed(record: dict, obj: SloObjective):
    if record.get("status") == "rejected":
        return None
    return record.get("status") == "ok"


def _good_dedup(record: dict, obj: SloObjective):
    if record.get("status") != "ok":
        return None
    candidates = record.get("candidates")
    hits = record.get("cache_hits")
    if candidates is None or hits is None:
        return None
    if not candidates:
        return True
    return (hits or 0) + (record.get("shared") or 0) > 0


_CLASSIFIERS = {
    "break_even_under": _good_break_even,
    "admitted": _good_admitted,
    "completed": _good_completed,
    "dedup_hit": _good_dedup,
}


def default_objectives(break_even_threshold: float = 3600.0) -> tuple:
    """The serve plane's four stock objectives.

    The break-even bound defaults to one hour of application runtime —
    within the "several hours" Table IV deems practical for the embedded
    suite; tighten per deployment (or deliberately, to demo a burn).
    """
    return (
        SloObjective(
            name="break_even_p95",
            good="break_even_under",
            target=0.95,
            threshold=break_even_threshold,
            description=(
                "95% of completed requests break even within "
                f"{break_even_threshold:g}s of app runtime (Table IV)"
            ),
        ),
        SloObjective(
            name="queue_reject_rate",
            good="admitted",
            target=0.50,
            description="at most half of arrivals are turned away by admission control",
        ),
        SloObjective(
            name="dedup_efficiency",
            good="dedup_hit",
            target=0.25,
            description=(
                "at least a quarter of completed requests reuse a cached or "
                "deduplicated bitstream (Section VI-A)"
            ),
        ),
        SloObjective(
            name="error_rate",
            good="completed",
            target=0.99,
            description="99% of admitted requests complete without error",
        ),
    )


def apply_objective_spec(objectives: tuple, spec: str) -> tuple:
    """Override (or add) one objective from a ``name:key=value,...`` spec.

    Numeric fields are parsed as floats; ``good`` and ``description`` stay
    strings. Overriding a stock objective keeps its other fields; naming a
    new objective requires at least ``good`` and ``target``.
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"objective spec {spec!r} has no name")
    overrides: dict = {}
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"objective spec field {part!r} is not key=value")
        key = key.strip()
        if key in ("good", "description"):
            overrides[key] = value.strip()
        elif key in (
            "target",
            "threshold",
            "fast_window",
            "slow_window",
            "fast_burn",
            "slow_burn",
        ):
            overrides[key] = float(value)
        else:
            raise ValueError(f"unknown objective field {key!r}")
    existing = {obj.name: obj for obj in objectives}
    if name in existing:
        updated = replace(existing[name], **overrides)
        return tuple(updated if obj.name == name else obj for obj in objectives)
    if "good" not in overrides or "target" not in overrides:
        raise ValueError(
            f"new objective {name!r} needs at least good=<classifier> and target=<frac>"
        )
    if overrides["good"] not in _CLASSIFIERS:
        raise ValueError(
            f"unknown classifier {overrides['good']!r} "
            f"(have: {', '.join(sorted(_CLASSIFIERS))})"
        )
    return objectives + (SloObjective(name=name, **overrides),)


@dataclass
class ObjectiveStatus:
    """Evaluation of one objective over the full record stream + windows."""

    objective: SloObjective
    total: int = 0
    good: int = 0
    bad: int = 0
    good_fraction: float | None = None
    budget_remaining: float | None = None  # fraction of error budget left
    burn_overall: float = 0.0
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    fast_total: int = 0
    slow_total: int = 0
    alert: dict | None = None

    @property
    def breached(self) -> bool:
        """Budget exhausted or a page-severity alert is firing."""
        if self.alert is not None and self.alert.get("severity") == "page":
            return True
        return (
            self.budget_remaining is not None and self.budget_remaining <= 0.0
        )


@dataclass
class SloReport:
    """All objectives evaluated at one instant over one record stream."""

    now: float
    results: list[ObjectiveStatus] = field(default_factory=list)

    @property
    def alerts(self) -> list[dict]:
        return [r.alert for r in self.results if r.alert is not None]

    @property
    def breached(self) -> bool:
        return any(r.breached for r in self.results)

    def summary(self) -> dict:
        """Compact JSON-safe dict keyed by objective name (manifests, top)."""
        out = {}
        for r in self.results:
            out[r.objective.name] = {
                "target": r.objective.target,
                "total": r.total,
                "good": r.good,
                "bad": r.bad,
                "budget_remaining_pct": (
                    round(100.0 * r.budget_remaining, 2)
                    if r.budget_remaining is not None
                    else None
                ),
                "burn_fast": round(r.burn_fast, 3),
                "burn_slow": round(r.burn_slow, 3),
                "alert": r.alert.get("kind") if r.alert else None,
            }
        return out


def evaluate(records, objectives=None, now: float | None = None) -> SloReport:
    """Evaluate *objectives* over requests.jsonl-shaped *records*.

    ``now`` anchors the rolling windows on the records' ``t_offset`` clock
    and defaults to the latest offset seen, so a finished run is evaluated
    as of its last request.
    """
    objectives = tuple(objectives) if objectives is not None else default_objectives()
    records = list(records)
    offsets = [
        float(r.get("t_offset") or 0.0) for r in records
    ]
    if now is None:
        now = max(offsets, default=0.0)
    report = SloReport(now=now)
    for obj in objectives:
        classify = _CLASSIFIERS.get(obj.good)
        if classify is None:
            raise ValueError(f"objective {obj.name!r}: unknown classifier {obj.good!r}")
        status = ObjectiveStatus(objective=obj)
        last_bad: dict | None = None
        fast_bad = slow_bad = 0
        for record, t in zip(records, offsets):
            verdict = classify(record, obj)
            if verdict is None:
                continue
            status.total += 1
            if verdict:
                status.good += 1
            else:
                status.bad += 1
                last_bad = record
            in_fast = t >= now - obj.fast_window
            in_slow = t >= now - obj.slow_window
            if in_fast:
                status.fast_total += 1
                fast_bad += 0 if verdict else 1
            if in_slow:
                status.slow_total += 1
                slow_bad += 0 if verdict else 1
        budget = 1.0 - obj.target
        if status.total and budget > 0:
            bad_frac = status.bad / status.total
            status.good_fraction = status.good / status.total
            status.burn_overall = bad_frac / budget
            status.budget_remaining = 1.0 - status.burn_overall
        if status.fast_total and budget > 0:
            status.burn_fast = (fast_bad / status.fast_total) / budget
        if status.slow_total and budget > 0:
            status.burn_slow = (slow_bad / status.slow_total) / budget
        status.alert = _alert_for(status, last_bad)
        report.results.append(status)
    return report


def _alert_for(status: ObjectiveStatus, last_bad: dict | None) -> dict | None:
    """Multi-window burn-rate alert decision for one evaluated objective.

    A page requires the fast burn threshold to hold over *both* windows
    (the long window confirms it is not a blip); a sustained slow burn
    over the long window alone raises a ticket.
    """
    obj = status.objective
    kind = severity = None
    if (
        status.fast_total
        and status.slow_total
        and status.burn_fast >= obj.fast_burn
        and status.burn_slow >= obj.fast_burn
    ):
        kind, severity = "fast_burn", "page"
    elif status.slow_total and status.burn_slow >= obj.slow_burn:
        kind, severity = "slow_burn", "ticket"
    if kind is None:
        return None
    alert = {
        "objective": obj.name,
        "kind": kind,
        "severity": severity,
        "target": obj.target,
        "burn_fast": round(status.burn_fast, 3),
        "burn_slow": round(status.burn_slow, 3),
        "fast_window_s": obj.fast_window,
        "slow_window_s": obj.slow_window,
        "budget_remaining_pct": (
            round(100.0 * status.budget_remaining, 2)
            if status.budget_remaining is not None
            else None
        ),
    }
    if last_bad is not None:
        alert["trace_id"] = last_bad.get("trace_id")
        alert["span_id"] = last_bad.get("span_id")
        alert["request_id"] = last_bad.get("request_id")
    return alert


# Package-level alias: ``repro.obs.evaluate_slo`` (the bare name is too
# generic to re-export).
evaluate_slo = evaluate


def read_requests(path) -> list[dict]:
    """Load requests.jsonl (skipping unparseable lines)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def write_alerts(path, alerts, run_id: str | None = None) -> Path:
    """Append *alerts* to an alerts.jsonl, stamping run id + wall time."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stamp = time.time()
    with open(path, "a", encoding="utf-8") as fh:
        for alert in alerts:
            record = {"ts": round(stamp, 3), "run_id": run_id}
            record.update(alert)
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def render_slo(report: SloReport, run_id: str | None = None) -> str:
    """ASCII objective table with budget + burn columns."""
    header = "SLO evaluation" + (f" — {run_id}" if run_id else "")
    lines = [header, ""]
    lines.append(
        f"{'objective':<20} {'target':>7} {'good/total':>12} "
        f"{'budget left':>11} {'burn fast':>9} {'burn slow':>9}  status"
    )
    for r in report.results:
        if r.total:
            budget = (
                f"{100.0 * r.budget_remaining:.1f}%"
                if r.budget_remaining is not None
                else "-"
            )
            ratio = f"{r.good}/{r.total}"
        else:
            budget, ratio = "-", "0/0"
        if r.alert is not None:
            status = r.alert["severity"].upper() + f" ({r.alert['kind']})"
        elif r.breached:
            status = "BREACHED"
        else:
            status = "ok"
        lines.append(
            f"{r.objective.name:<20} {100.0 * r.objective.target:>6.1f}% "
            f"{ratio:>12} {budget:>11} {r.burn_fast:>9.2f} "
            f"{r.burn_slow:>9.2f}  {status}"
        )
    pages = sum(1 for a in report.alerts if a["severity"] == "page")
    tickets = sum(1 for a in report.alerts if a["severity"] == "ticket")
    lines.append("")
    lines.append(
        f"alerts: {pages} page, {tickets} ticket "
        f"(windows anchored at t={report.now:.1f}s)"
    )
    return "\n".join(lines)
