"""Observability: span tracing, metrics, and trace export.

The paper's results are per-stage time breakdowns (Tables II/III); this
package makes every run of the reproduction produce the same shape of
evidence on demand:

- :mod:`repro.obs.tracer` — thread-safe span tracer with nested
  parent/child spans and a process-global default that is a no-op until
  enabled (zero overhead on hot paths);
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms behind a :class:`MetricsRegistry`;
- :mod:`repro.obs.export` — JSONL round-trip, Chrome ``trace_event``
  dump, and ASCII stage-table / timeline renderers keyed to the paper's
  stage names;
- :mod:`repro.obs.profile` — span trace folded into a hierarchical
  self-time/total-time profile tree with collapsed-stack flamegraph
  export and a top-N hot-path table;
- :mod:`repro.obs.heat` — per-basic-block heat annotations (profile
  counts x cost model) rendered through the IR printer, kernel blocks
  flagged (lazy import: pulls the IR/VM layers);
- :mod:`repro.obs.fidelity` — golden-reference harness comparing a run's
  tables cell-by-cell against the paper's published values, emitting a
  ``BENCH_*.json`` report (lazy import: pulls the experiments layer);
- :mod:`repro.obs.log` — leveled structured event log (JSONL), every
  record stamped with the active run id and tracer span id;
- :mod:`repro.obs.ledger` — append-only run ledger: each recorded run
  becomes a durable ``manifest.json`` (+ trace + event log) under
  ``.repro-runs/``;
- :mod:`repro.obs.regress` — regression sentinel comparing two ledger
  manifests cell-by-cell under configurable tolerances, repeat-run
  noise bands, and history-derived noise bands;
- :mod:`repro.obs.slo` — declarative SLOs with error-budget accounting
  and multi-window burn-rate alerts over a serve run's request records;
- :mod:`repro.obs.history` — fleet history: per-cell time series over
  every ledger run (live + gc-compacted), robust anomaly detection, and
  noise-band derivation for the regression sentinel;
- :mod:`repro.obs.critpath` — critical-path analyzer reconstructing the
  specialization DAG from a recorded span trace (CPM on both clocks,
  per-stage slack, Amdahl-style break-even headroom table);
- :mod:`repro.obs.whatif` — trace-driven what-if engine replaying a
  recorded run under hypothetical knobs (cache hit rate, CAD speedups,
  parallel CAD workers) and cross-checking its Table IV-style grid
  against the analytic model (lazy import: pulls the experiments layer
  when deriving break-even inputs).

Enable both at once with :func:`enable` (the CLI's ``--trace`` /
``--metrics`` flags call this).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_enabled,
    render_snapshot,
    set_metrics,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)
from repro.obs.export import (
    PAPER_STAGES,
    PAPER_STAGE_LABELS,
    TABLE3_SPAN_NAMES,
    SpanRecord,
    chrome_trace,
    export_tracer,
    read_jsonl,
    render_stage_table,
    render_timeline,
    stage_table,
    tracer_records,
    validate_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import Profile, ProfileNode, build_profile
from repro.obs.log import (
    LEVELS,
    EventLog,
    disable_logging,
    enable_logging,
    get_log,
    log_enabled,
    log_event,
    read_log,
    render_tail,
    set_log,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    MANIFEST_SCHEMA,
    RunLedger,
    RunRecorder,
    abandon_run,
    current_run,
    finish_run,
    fold_stages,
    prune_runs,
    scalars_from_analyses,
    start_run,
)
from repro.obs.regress import (
    CellDelta,
    RegressionReport,
    compare_manifests,
    flatten_cells,
    median_mad,
    parse_tolerances,
)

# The heat and fidelity layers sit *above* the substrate: they import the
# IR/VM/experiments packages, which themselves import repro.obs — so they
# are exposed lazily (PEP 562) to keep `import repro.obs` light and
# cycle-free from any entry point.
_LAZY_EXPORTS = {
    "BlockHeat": "repro.obs.heat",
    "HeatMap": "repro.obs.heat",
    "compute_heat": "repro.obs.heat",
    "heat_table": "repro.obs.heat",
    "render_heat": "repro.obs.heat",
    "CellCheck": "repro.obs.fidelity",
    "FidelityReport": "repro.obs.fidelity",
    "default_report_path": "repro.obs.fidelity",
    "fidelity_from_analyses": "repro.obs.fidelity",
    "run_fidelity": "repro.obs.fidelity",
    "AppReplay": "repro.obs.critpath",
    "CandidateReplay": "repro.obs.critpath",
    "CriticalPathAnalysis": "repro.obs.critpath",
    "HeadroomTable": "repro.obs.critpath",
    "RunReplay": "repro.obs.critpath",
    "analyze_critical_path": "repro.obs.critpath",
    "critpath_block": "repro.obs.critpath",
    "headroom_table": "repro.obs.critpath",
    "render_critical_path": "repro.obs.critpath",
    "table3_summary": "repro.obs.critpath",
    "SloObjective": "repro.obs.slo",
    "SloReport": "repro.obs.slo",
    "ObjectiveStatus": "repro.obs.slo",
    "apply_objective_spec": "repro.obs.slo",
    "default_objectives": "repro.obs.slo",
    "evaluate_slo": "repro.obs.slo",
    "read_requests": "repro.obs.slo",
    "render_slo": "repro.obs.slo",
    "write_alerts": "repro.obs.slo",
    "Anomaly": "repro.obs.history",
    "append_history": "repro.obs.history",
    "build_series": "repro.obs.history",
    "collect_entries": "repro.obs.history",
    "derive_noise_bands": "repro.obs.history",
    "detect_anomalies": "repro.obs.history",
    "load_history": "repro.obs.history",
    "render_anomalies": "repro.obs.history",
    "render_trend": "repro.obs.history",
    "trend_report": "repro.obs.history",
    "GridCheck": "repro.obs.whatif",
    "GridCheckCell": "repro.obs.whatif",
    "WhatIfKnobs": "repro.obs.whatif",
    "WhatIfResult": "repro.obs.whatif",
    "analytic_grid": "repro.obs.whatif",
    "breakeven_inputs": "repro.obs.whatif",
    "check_grids": "repro.obs.whatif",
    "grid_block": "repro.obs.whatif",
    "scenario_block": "repro.obs.whatif",
    "whatif_break_even": "repro.obs.whatif",
    "whatif_grid": "repro.obs.whatif",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def enable(tracing: bool = True, metrics: bool = True) -> None:
    """Turn on tracing and/or metrics collection for this process."""
    if tracing:
        enable_tracing()
    if metrics:
        enable_metrics()


def disable() -> None:
    disable_tracing()
    disable_metrics()


__all__ = [
    "Anomaly",
    "AppReplay",
    "ObjectiveStatus",
    "SloObjective",
    "SloReport",
    "append_history",
    "apply_objective_spec",
    "build_series",
    "collect_entries",
    "default_objectives",
    "derive_noise_bands",
    "detect_anomalies",
    "evaluate_slo",
    "load_history",
    "read_requests",
    "render_anomalies",
    "render_slo",
    "render_trend",
    "trend_report",
    "write_alerts",
    "BlockHeat",
    "CandidateReplay",
    "CellCheck",
    "CellDelta",
    "CriticalPathAnalysis",
    "GridCheck",
    "GridCheckCell",
    "HeadroomTable",
    "RunReplay",
    "WhatIfKnobs",
    "WhatIfResult",
    "analytic_grid",
    "analyze_critical_path",
    "breakeven_inputs",
    "check_grids",
    "critpath_block",
    "grid_block",
    "headroom_table",
    "prune_runs",
    "render_critical_path",
    "scenario_block",
    "table3_summary",
    "whatif_break_even",
    "whatif_grid",
    "Counter",
    "DEFAULT_LEDGER_DIR",
    "EventLog",
    "LEVELS",
    "MANIFEST_SCHEMA",
    "RegressionReport",
    "RunLedger",
    "RunRecorder",
    "abandon_run",
    "compare_manifests",
    "current_run",
    "disable_logging",
    "enable_logging",
    "finish_run",
    "flatten_cells",
    "fold_stages",
    "get_log",
    "log_enabled",
    "log_event",
    "median_mad",
    "parse_tolerances",
    "read_log",
    "render_tail",
    "scalars_from_analyses",
    "set_log",
    "start_run",
    "FidelityReport",
    "Gauge",
    "HeatMap",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PAPER_STAGES",
    "PAPER_STAGE_LABELS",
    "Profile",
    "ProfileNode",
    "TABLE3_SPAN_NAMES",
    "Span",
    "SpanRecord",
    "Tracer",
    "build_profile",
    "chrome_trace",
    "compute_heat",
    "default_report_path",
    "fidelity_from_analyses",
    "heat_table",
    "render_heat",
    "run_fidelity",
    "tracer_records",
    "disable",
    "disable_metrics",
    "disable_tracing",
    "enable",
    "enable_metrics",
    "enable_tracing",
    "export_tracer",
    "get_metrics",
    "get_tracer",
    "metrics_enabled",
    "read_jsonl",
    "render_snapshot",
    "render_stage_table",
    "render_timeline",
    "set_metrics",
    "set_tracer",
    "span",
    "stage_table",
    "tracing_enabled",
    "validate_trace",
    "write_chrome_trace",
    "write_jsonl",
]
