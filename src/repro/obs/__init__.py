"""Observability: span tracing, metrics, and trace export.

The paper's results are per-stage time breakdowns (Tables II/III); this
package makes every run of the reproduction produce the same shape of
evidence on demand:

- :mod:`repro.obs.tracer` — thread-safe span tracer with nested
  parent/child spans and a process-global default that is a no-op until
  enabled (zero overhead on hot paths);
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms behind a :class:`MetricsRegistry`;
- :mod:`repro.obs.export` — JSONL round-trip, Chrome ``trace_event``
  dump, and ASCII stage-table / timeline renderers keyed to the paper's
  stage names.

Enable both at once with :func:`enable` (the CLI's ``--trace`` /
``--metrics`` flags call this).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_enabled,
    render_snapshot,
    set_metrics,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)
from repro.obs.export import (
    PAPER_STAGES,
    PAPER_STAGE_LABELS,
    TABLE3_SPAN_NAMES,
    SpanRecord,
    chrome_trace,
    export_tracer,
    read_jsonl,
    render_stage_table,
    render_timeline,
    stage_table,
    validate_trace,
    write_chrome_trace,
    write_jsonl,
)


def enable(tracing: bool = True, metrics: bool = True) -> None:
    """Turn on tracing and/or metrics collection for this process."""
    if tracing:
        enable_tracing()
    if metrics:
        enable_metrics()


def disable() -> None:
    disable_tracing()
    disable_metrics()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PAPER_STAGES",
    "PAPER_STAGE_LABELS",
    "TABLE3_SPAN_NAMES",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "disable",
    "disable_metrics",
    "disable_tracing",
    "enable",
    "enable_metrics",
    "enable_tracing",
    "export_tracer",
    "get_metrics",
    "get_tracer",
    "metrics_enabled",
    "read_jsonl",
    "render_snapshot",
    "render_stage_table",
    "render_timeline",
    "set_metrics",
    "set_tracer",
    "span",
    "stage_table",
    "tracing_enabled",
    "validate_trace",
    "write_chrome_trace",
    "write_jsonl",
]
