"""Trace export and rendering.

Three output formats for a finished trace:

- **JSON lines** (:func:`write_jsonl` / :func:`read_jsonl`): one span per
  line, losslessly round-trippable — the on-disk format behind the CLI's
  ``--trace FILE`` flag and the ``repro trace`` replay subcommand;
- **Chrome trace_event** (:func:`chrome_trace`): loadable in
  ``chrome://tracing`` / Perfetto for interactive flame views;
- **ASCII** (:func:`render_stage_table`, :func:`render_timeline`): a
  per-stage time table keyed to the paper's Table II/III column names,
  and an indented span-tree timeline.

Stage aggregation understands the pipeline's two clocks: real
``perf_counter`` durations for phases that genuinely run (candidate
search), and the ``virtual_seconds`` attribute for the modelled CAD
stages, whose virtual totals are what Tables II/III report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable, Sequence

from repro.obs.tracer import Span, Tracer
from repro.util.tables import Table

#: Span-name -> paper column-name taxonomy (Tables II and III). The CAD
#: stage names follow the real tools they model: the paper's "Syn" is the
#: syntax check, "Xst" the XST synthesis run.
PAPER_STAGES: tuple[tuple[str, str], ...] = (
    ("search", "Search"),
    ("cad.c2v", "C2V"),
    ("cad.syntax", "Syn"),
    ("cad.synthesis", "Xst"),
    ("cad.translate", "Tra"),
    ("cad.map", "Map"),
    ("cad.par", "PAR"),
    ("cad.bitgen", "Bitgen"),
    ("icap.reconfigure", "ICAP"),
)

PAPER_STAGE_LABELS: dict[str, str] = dict(PAPER_STAGES)

#: The Table III columns proper, in paper order (span names).
TABLE3_SPAN_NAMES: tuple[str, ...] = (
    "cad.c2v",
    "cad.syntax",
    "cad.synthesis",
    "cad.translate",
    "cad.map",
    "cad.par",
    "cad.bitgen",
)


@dataclass
class SpanRecord:
    """One span as loaded back from an exported trace."""

    name: str
    span_id: int
    parent_id: int | None
    t0: float
    t1: float
    thread: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0)

    @property
    def virtual_seconds(self) -> float | None:
        value = self.attrs.get("virtual_seconds")
        return float(value) if value is not None else None


# -- serialization -------------------------------------------------------------
def span_to_dict(span: Span, epoch: float = 0.0) -> dict:
    """JSON-safe dict for one finished span, times relative to *epoch*."""
    end = span.end if span.end is not None else span.start
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "t0": round(span.start - epoch, 9),
        "t1": round(end - epoch, 9),
        "thread": span.thread,
        "attrs": _json_safe(span.attrs),
    }


def _json_safe(value):
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_jsonl(
    spans: Iterable[Span], path_or_file, epoch: float | None = None
) -> int:
    """Write spans as JSON lines; returns the number of spans written."""
    spans = list(spans)
    if epoch is None:
        epoch = min((s.start for s in spans), default=0.0)
    lines = [json.dumps(span_to_dict(s, epoch)) for s in spans]
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(text)
    return len(lines)


def export_tracer(tracer: Tracer, path_or_file) -> int:
    """Export all finished spans of *tracer*, relative to its epoch."""
    return write_jsonl(tracer.spans(), path_or_file, epoch=tracer.epoch)


def tracer_records(tracer: Tracer) -> list[SpanRecord]:
    """In-memory :class:`SpanRecord` view of a tracer's finished spans.

    Same shape a JSONL round-trip would produce (times relative to the
    tracer's epoch), without touching disk — the profile builder
    (:mod:`repro.obs.profile`) consumes this directly.
    """
    epoch = tracer.epoch
    return [
        SpanRecord(
            name=s.name,
            span_id=s.span_id,
            parent_id=s.parent_id,
            t0=s.start - epoch,
            t1=(s.end if s.end is not None else s.start) - epoch,
            thread=s.thread,
            attrs=dict(s.attrs),
        )
        for s in tracer.spans()
    ]


def read_jsonl(path_or_file) -> list[SpanRecord]:
    """Load a JSONL trace back into :class:`SpanRecord` objects."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as fh:
            text = fh.read()
    records: list[SpanRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON ({exc})") from None
        records.append(
            SpanRecord(
                name=str(obj.get("name", "")),
                span_id=int(obj.get("span_id", 0)),
                parent_id=(
                    int(obj["parent_id"]) if obj.get("parent_id") is not None else None
                ),
                t0=float(obj.get("t0", 0.0)),
                t1=float(obj.get("t1", 0.0)),
                thread=int(obj.get("thread", 0)),
                attrs=dict(obj.get("attrs") or {}),
            )
        )
    return records


def validate_trace(records: Sequence[SpanRecord]) -> list[str]:
    """Schema-check a loaded trace; returns a list of problems (empty = ok)."""
    errors: list[str] = []
    ids = set()
    for rec in records:
        where = f"span {rec.span_id} ({rec.name!r})"
        if not rec.name:
            errors.append(f"{where}: empty name")
        if rec.span_id <= 0:
            errors.append(f"{where}: span_id must be positive")
        elif rec.span_id in ids:
            errors.append(f"{where}: duplicate span_id")
        ids.add(rec.span_id)
        if rec.t1 < rec.t0:
            errors.append(f"{where}: ends before it starts (t1 < t0)")
    for rec in records:
        if rec.parent_id is not None and rec.parent_id not in ids:
            errors.append(
                f"span {rec.span_id} ({rec.name!r}): "
                f"unknown parent_id {rec.parent_id}"
            )
    return errors


# -- Chrome trace_event --------------------------------------------------------
def chrome_trace(records: Sequence[SpanRecord], snapshot: dict | None = None) -> dict:
    """Chrome ``trace_event`` document (complete 'X' events, µs units).

    With a metrics *snapshot* (the ``{"counters": ..., "gauges": ...}``
    shape of :meth:`repro.obs.metrics.MetricsRegistry.snapshot`), counter
    and gauge values are appended as ``"ph": "C"`` counter events so cache
    hit/miss and candidate accept/reject rates render as counter tracks
    alongside the spans in Perfetto. Counters are monotonic from zero, so
    each gets a zero sample at the trace start and its final value at the
    trace extent; gauges only get their final sample (intermediate values
    were not recorded).
    """
    events = []
    for rec in records:
        events.append(
            {
                "name": PAPER_STAGE_LABELS.get(rec.name, rec.name),
                "cat": rec.name.split(".", 1)[0],
                "ph": "X",
                "ts": rec.t0 * 1e6,
                "dur": rec.duration * 1e6,
                "pid": 1,
                "tid": rec.thread,
                "args": rec.attrs,
            }
        )
    if snapshot:
        extent = max((rec.t1 for rec in records), default=0.0) * 1e6

        def counter_event(name: str, ts: float, value) -> dict:
            return {
                "name": name,
                "cat": "metrics",
                "ph": "C",
                "ts": ts,
                "pid": 1,
                "args": {"value": value},
            }

        for name, value in sorted((snapshot.get("counters") or {}).items()):
            if not isinstance(value, (int, float)):
                continue
            events.append(counter_event(name, 0.0, 0))
            events.append(counter_event(name, extent, value))
        for name, value in sorted((snapshot.get("gauges") or {}).items()):
            if not isinstance(value, (int, float)):
                continue
            events.append(counter_event(name, extent, value))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    records: Sequence[SpanRecord], path_or_file, snapshot: dict | None = None
) -> None:
    doc = chrome_trace(records, snapshot=snapshot)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)


# -- ASCII renderings ----------------------------------------------------------
def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 0.001 and value != 0.0:
        return f"{value * 1000:.3f} ms"
    if value < 1.0:
        return f"{value * 1000:.2f} ms"
    return f"{value:.2f} s"


def stage_table(records: Sequence[SpanRecord]) -> Table:
    """Aggregate a trace into a per-stage time table (paper taxonomy first).

    Rows follow the order of :data:`PAPER_STAGES` for stages present in
    the trace; any other span names follow, sorted by real time spent.
    Real time is the measured ``perf_counter`` interval; virtual time sums
    the ``virtual_seconds`` attributes (the modelled Table II/III values).
    """
    by_name: dict[str, list[SpanRecord]] = {}
    for rec in records:
        by_name.setdefault(rec.name, []).append(rec)

    table = Table(
        columns=["stage", "spans", "real", "virtual"],
        title="Per-stage times",
    )
    paper_names = [name for name, _ in PAPER_STAGES if name in by_name]
    other_names = sorted(
        (n for n in by_name if n not in PAPER_STAGE_LABELS),
        key=lambda n: -sum(r.duration for r in by_name[n]),
    )

    total_real = 0.0
    total_virtual = 0.0
    any_virtual = False
    for name in paper_names + other_names:
        group = by_name[name]
        real = sum(r.duration for r in group)
        virtuals = [r.virtual_seconds for r in group if r.virtual_seconds is not None]
        virtual = sum(virtuals) if virtuals else None
        label = PAPER_STAGE_LABELS.get(name)
        display = f"{label} [{name}]" if label else name
        table.add_row(
            [display, len(group), _fmt_seconds(real), _fmt_seconds(virtual)]
        )
        total_real += real
        if virtual is not None:
            total_virtual += virtual
            any_virtual = True
    table.add_footer(
        [
            "total",
            sum(len(g) for g in by_name.values()),
            _fmt_seconds(total_real),
            _fmt_seconds(total_virtual if any_virtual else None),
        ]
    )
    return table


def render_stage_table(records: Sequence[SpanRecord]) -> str:
    return stage_table(records).render()


def render_timeline(records: Sequence[SpanRecord], width: int = 40) -> str:
    """Indented span tree with proportional bars over the real time axis."""
    if not records:
        return "(empty trace)"
    t_min = min(r.t0 for r in records)
    t_max = max(r.t1 for r in records)
    extent = max(t_max - t_min, 1e-9)

    children: dict[int | None, list[SpanRecord]] = {}
    ids = {r.span_id for r in records}
    for rec in records:
        # Treat spans with a missing parent (partial trace) as roots.
        parent = rec.parent_id if rec.parent_id in ids else None
        children.setdefault(parent, []).append(rec)
    for group in children.values():
        group.sort(key=lambda r: (r.t0, r.span_id))

    name_width = min(
        48, max(len(r.name) + 2 * _depth(r, records) for r in records) + 2
    )
    lines: list[str] = []

    def emit(rec: SpanRecord, depth: int) -> None:
        lo = int((rec.t0 - t_min) / extent * width)
        hi = max(lo + 1, int((rec.t1 - t_min) / extent * width))
        bar = " " * lo + "#" * (hi - lo)
        label = ("  " * depth + rec.name).ljust(name_width)
        timing = _fmt_seconds(rec.duration)
        if rec.virtual_seconds is not None:
            timing += f"  (virt {_fmt_seconds(rec.virtual_seconds)})"
        lines.append(f"{label} |{bar.ljust(width)}| {timing}")
        for child in children.get(rec.span_id, []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)


def _depth(rec: SpanRecord, records: Sequence[SpanRecord]) -> int:
    by_id = {r.span_id: r for r in records}
    depth = 0
    cur = rec
    while cur.parent_id is not None and cur.parent_id in by_id and depth < 32:
        cur = by_id[cur.parent_id]
        depth += 1
    return depth
