"""VHDL syntax checker for the structural subset the datapath generator emits.

The first CAD stage ("Check Syntax", 4.22 s constant in Table III). This is
a real recursive-descent parser of the generated subset: library clauses,
entity with port list, architecture with component declarations, signal
declarations (optionally initialised), component instantiations with port
maps, and concurrent signal assignments. It returns the parsed interface so
synthesis can cross-check component usage against the netlist database.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class VhdlSyntaxError(Exception):
    """Raised when generated VHDL does not parse."""


@dataclass
class VhdlPort:
    name: str
    direction: str  # "in" | "out"
    width: int


@dataclass
class VhdlInstance:
    label: str
    component: str
    port_map: dict[str, str] = field(default_factory=dict)


@dataclass
class VhdlDesign:
    """Parsed structural design."""

    entity: str
    ports: list[VhdlPort] = field(default_factory=list)
    components: dict[str, list[VhdlPort]] = field(default_factory=dict)
    signals: dict[str, int] = field(default_factory=dict)  # name -> width
    instances: list[VhdlInstance] = field(default_factory=list)
    assignments: list[tuple[str, str]] = field(default_factory=list)

    def port(self, name: str) -> VhdlPort:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(name)


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>--[^\n]*)
      | (?P<hex>x"[0-9a-fA-F]+")
      | (?P<bin>"[01]+")
      | (?P<bit>'[01]')
      | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<num>\d+)
      | (?P<arrow><=|=>)
      | (?P<assign>:=)
      | (?P<punct>[();:,.])
    )
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if not match:
            rest = source[pos : pos + 20]
            if rest.strip() == "":
                break
            raise VhdlSyntaxError(f"unexpected VHDL text near {rest!r}")
        pos = match.end()
        if match.lastgroup != "comment":
            tokens.append(match.group().strip())
    return [t for t in tokens if t]


class VhdlSyntaxChecker:
    """Parses the structural VHDL subset and validates its consistency."""

    def check(self, source: str) -> VhdlDesign:
        self.tokens = _tokenize(source)
        self.pos = 0
        self._skip_context_clauses()
        design = self._parse_entity()
        self._parse_architecture(design)
        self._validate(design)
        return design

    # -- token helpers ---------------------------------------------------------
    def _peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def _next(self) -> str:
        tok = self._peek()
        if not tok:
            raise VhdlSyntaxError("unexpected end of file")
        self.pos += 1
        return tok

    def _expect(self, expected: str) -> str:
        tok = self._next()
        if tok.lower() != expected.lower():
            raise VhdlSyntaxError(f"expected {expected!r}, found {tok!r}")
        return tok

    def _accept(self, expected: str) -> bool:
        if self._peek().lower() == expected.lower():
            self.pos += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------
    def _skip_context_clauses(self) -> None:
        while self._peek().lower() in ("library", "use"):
            while self._next() != ";":
                pass

    def _parse_type(self) -> int:
        tok = self._next().lower()
        if tok == "std_logic":
            return 1
        if tok == "std_logic_vector":
            self._expect("(")
            high = int(self._next())
            self._expect("downto")
            low = int(self._next())
            self._expect(")")
            if low != 0 or high < 0:
                raise VhdlSyntaxError(f"unsupported vector range {high}..{low}")
            return high + 1
        raise VhdlSyntaxError(f"unsupported type {tok!r}")

    def _parse_port_list(self) -> list[VhdlPort]:
        ports: list[VhdlPort] = []
        self._expect("port")
        self._expect("(")
        while True:
            name = self._next()
            self._expect(":")
            direction = self._next().lower()
            if direction not in ("in", "out"):
                raise VhdlSyntaxError(f"bad port direction {direction!r}")
            width = self._parse_type()
            ports.append(VhdlPort(name, direction, width))
            if self._accept(")"):
                break
            self._expect(";")
        self._expect(";")
        return ports

    def _parse_entity(self) -> VhdlDesign:
        self._expect("entity")
        name = self._next()
        self._expect("is")
        design = VhdlDesign(entity=name)
        design.ports = self._parse_port_list()
        self._expect("end")
        self._accept("entity")
        end_name = self._next()
        if end_name != name:
            raise VhdlSyntaxError(
                f"entity end name {end_name!r} does not match {name!r}"
            )
        self._expect(";")
        return design

    def _parse_architecture(self, design: VhdlDesign) -> None:
        self._expect("architecture")
        self._next()  # architecture name
        self._expect("of")
        ename = self._next()
        if ename != design.entity:
            raise VhdlSyntaxError(
                f"architecture of {ename!r} does not match entity {design.entity!r}"
            )
        self._expect("is")
        # declarations
        while True:
            tok = self._peek().lower()
            if tok == "component":
                self._parse_component(design)
            elif tok == "signal":
                self._parse_signal(design)
            elif tok == "begin":
                self._next()
                break
            else:
                raise VhdlSyntaxError(f"unexpected declaration {tok!r}")
        # statements
        while True:
            tok = self._peek()
            if tok.lower() == "end":
                self._next()
                self._accept("architecture")
                self._next()  # arch name
                self._expect(";")
                break
            self._parse_statement(design)

    def _parse_component(self, design: VhdlDesign) -> None:
        self._expect("component")
        name = self._next()
        if name in design.components:
            raise VhdlSyntaxError(f"duplicate component declaration {name!r}")
        ports = self._parse_port_list()
        self._expect("end")
        self._expect("component")
        self._expect(";")
        design.components[name] = ports

    def _parse_signal(self, design: VhdlDesign) -> None:
        self._expect("signal")
        name = self._next()
        self._expect(":")
        width = self._parse_type()
        if self._accept(":="):
            literal = self._next()
            self._validate_literal(literal, width)
        self._expect(";")
        if name in design.signals:
            raise VhdlSyntaxError(f"duplicate signal {name!r}")
        design.signals[name] = width

    @staticmethod
    def _validate_literal(literal: str, width: int) -> None:
        if literal.startswith('x"'):
            digits = len(literal) - 3
            if digits * 4 != width:
                raise VhdlSyntaxError(
                    f"hex literal {literal} does not match width {width}"
                )
        elif literal.startswith('"'):
            if len(literal) - 2 != width:
                raise VhdlSyntaxError(
                    f"binary literal {literal} does not match width {width}"
                )
        elif literal.startswith("'"):
            if width != 1:
                raise VhdlSyntaxError("bit literal on vector signal")
        else:
            raise VhdlSyntaxError(f"unsupported initialiser {literal!r}")

    def _parse_statement(self, design: VhdlDesign) -> None:
        label_or_target = self._next()
        if self._accept(":"):
            component = self._next()
            inst = VhdlInstance(label=label_or_target, component=component)
            self._expect("port")
            self._expect("map")
            self._expect("(")
            while True:
                formal = self._next()
                self._expect("=>")
                actual = self._next()
                inst.port_map[formal] = actual
                if self._accept(")"):
                    break
                self._expect(",")
            self._expect(";")
            design.instances.append(inst)
        else:
            self._expect("<=")
            source = self._next()
            self._expect(";")
            design.assignments.append((label_or_target, source))

    # -- semantic validation ---------------------------------------------------
    def _validate(self, design: VhdlDesign) -> None:
        port_names = {p.name for p in design.ports}

        def width_of(name: str) -> int | None:
            if name in design.signals:
                return design.signals[name]
            for p in design.ports:
                if p.name == name:
                    return p.width
            return None

        for inst in design.instances:
            comp = design.components.get(inst.component)
            if comp is None:
                raise VhdlSyntaxError(
                    f"instance {inst.label} uses undeclared component "
                    f"{inst.component!r}"
                )
            comp_ports = {p.name: p for p in comp}
            for formal, actual in inst.port_map.items():
                if formal not in comp_ports:
                    raise VhdlSyntaxError(
                        f"{inst.label}: component {inst.component} has no port "
                        f"{formal!r}"
                    )
                w = width_of(actual)
                if w is None:
                    raise VhdlSyntaxError(
                        f"{inst.label}: actual {actual!r} is not a signal or port"
                    )
                if w != comp_ports[formal].width:
                    raise VhdlSyntaxError(
                        f"{inst.label}: width mismatch on {formal} "
                        f"({w} vs {comp_ports[formal].width})"
                    )
            missing = set(comp_ports) - set(inst.port_map)
            if missing:
                raise VhdlSyntaxError(
                    f"{inst.label}: unconnected ports {sorted(missing)}"
                )
        for target, source in design.assignments:
            if target not in port_names and target not in design.signals:
                raise VhdlSyntaxError(f"assignment to unknown target {target!r}")
            if source not in design.signals and source not in port_names:
                raise VhdlSyntaxError(f"assignment from unknown source {source!r}")
            tw = design.signals.get(target)
            if tw is None:
                tw = design.port(target).width if target in port_names else None
            sw = design.signals.get(source)
            if sw is None and source in port_names:
                sw = design.port(source).width
            if tw is not None and sw is not None and tw != sw:
                raise VhdlSyntaxError(
                    f"assignment width mismatch {target}({tw}) <= {source}({sw})"
                )
