"""The complete per-candidate CAD tool flow (Figure 2, phases 2 and 3).

Chains the Netlist Generation phase (PivPav: VHDL generation, netlist
extraction, project creation — the C2V constant) and the Instruction
Implementation phase (syntax check, synthesis, translate, map, place &
route, bitstream generation) into one call that returns the partial
bitstream plus per-stage virtual runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.bitgen import BitstreamGenerator, PartialBitstream
from repro.fpga.device import FpgaDevice, VIRTEX4_FX100
from repro.fpga.placer import Placement, Placer
from repro.fpga.project import CadProject
from repro.fpga.router import RoutedDesign, Router
from repro.fpga.synthesis import Synthesizer
from repro.fpga.syntax import VhdlSyntaxChecker
from repro.fpga.techmap import MappedDesign, Mapper
from repro.fpga.timingmodel import CadTimingModel, StageTimes
from repro.fpga.translate import Translator
from repro.ise.candidate import Candidate
from repro.pivpav.netlistcache import NetlistCache
from repro.pivpav.vhdlgen import DatapathGenerator, GeneratedVhdl


@dataclass
class ImplementationResult:
    """Everything produced by implementing one candidate in hardware."""

    candidate: Candidate
    vhdl: GeneratedVhdl
    bitstream: PartialBitstream
    times: StageTimes
    mapped: MappedDesign
    placement: Placement
    routed: RoutedDesign

    @property
    def entity_name(self) -> str:
        return self.vhdl.entity_name


@dataclass
class CadToolFlow:
    """Configured end-to-end implementation flow."""

    device: FpgaDevice = VIRTEX4_FX100
    timing: CadTimingModel | None = None
    netlist_cache: NetlistCache = field(default_factory=NetlistCache)
    datapath_generator: DatapathGenerator = field(default_factory=DatapathGenerator)

    def __post_init__(self) -> None:
        if self.timing is None:
            self.timing = CadTimingModel(device=self.device)

    def implement(self, candidate: Candidate) -> ImplementationResult:
        """Run the full flow for one candidate."""
        # Phase 2: Netlist Generation (PivPav).
        vhdl = self.datapath_generator.generate(candidate)
        project = CadProject(name=vhdl.entity_name, device=self.device)
        project.add_vhdl(f"{vhdl.entity_name}.vhd", vhdl.source)
        for core_name, netlist in self.netlist_cache.extract_all(
            vhdl.core_names
        ).items():
            project.add_core_netlist(core_name, netlist)
        project.configure_defaults()
        project.top_entity = vhdl.entity_name

        # Phase 3: Instruction Implementation.
        design = VhdlSyntaxChecker().check(vhdl.source)
        synthesized = Synthesizer().synthesize(design, project)
        database = Translator().translate(synthesized, self.device)
        mapped = Mapper().map(database)
        placement = Placer().place(mapped, self.device.region)
        routed = Router().route(mapped, placement, self.device.region)
        bitstream = BitstreamGenerator().generate(
            vhdl.entity_name, mapped, placement, self.device
        )

        times = self.timing.stage_times(
            entity=vhdl.entity_name,
            lut_count=mapped.lut_count,
            dsp_count=mapped.dsp_count,
            bram_count=mapped.bram_count,
            component_count=len(vhdl.core_names),
        )
        return ImplementationResult(
            candidate=candidate,
            vhdl=vhdl,
            bitstream=bitstream,
            times=times,
            mapped=mapped,
            placement=placement,
            routed=routed,
        )
