"""The complete per-candidate CAD tool flow (Figure 2, phases 2 and 3).

Chains the Netlist Generation phase (PivPav: VHDL generation, netlist
extraction, project creation — the C2V constant) and the Instruction
Implementation phase (syntax check, synthesis, translate, map, place &
route, bitstream generation) into one call that returns the partial
bitstream plus per-stage virtual runtimes.

Each stage runs under a tracer span (``cad.c2v`` … ``cad.bitgen``) so a
trace of one run reconstructs Table III; the modelled stage runtime is
back-filled onto each span as the ``virtual_seconds`` attribute once the
timing model has priced the candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.bitgen import BitstreamGenerator, PartialBitstream
from repro.fpga.device import FpgaDevice, VIRTEX4_FX100
from repro.fpga.placer import Placement, Placer
from repro.fpga.project import CadProject
from repro.fpga.router import RoutedDesign, Router
from repro.fpga.synthesis import Synthesizer
from repro.fpga.syntax import VhdlSyntaxChecker
from repro.fpga.techmap import MappedDesign, Mapper
from repro.fpga.timingmodel import CadTimingModel, StageTimes
from repro.fpga.translate import Translator
from repro.ise.candidate import Candidate
from repro.obs import get_log, get_metrics, get_tracer
from repro.pivpav.netlistcache import NetlistCache
from repro.pivpav.vhdlgen import DatapathGenerator, GeneratedVhdl


@dataclass
class ImplementationResult:
    """Everything produced by implementing one candidate in hardware."""

    candidate: Candidate
    vhdl: GeneratedVhdl
    bitstream: PartialBitstream
    times: StageTimes
    mapped: MappedDesign
    placement: Placement
    routed: RoutedDesign

    @property
    def entity_name(self) -> str:
        return self.vhdl.entity_name


@dataclass
class CadToolFlow:
    """Configured end-to-end implementation flow."""

    device: FpgaDevice = VIRTEX4_FX100
    timing: CadTimingModel | None = None
    netlist_cache: NetlistCache = field(default_factory=NetlistCache)
    datapath_generator: DatapathGenerator = field(default_factory=DatapathGenerator)

    def __post_init__(self) -> None:
        if self.timing is None:
            self.timing = CadTimingModel(device=self.device)

    def implement(self, candidate: Candidate) -> ImplementationResult:
        """Run the full flow for one candidate."""
        tracer = get_tracer()
        registry = get_metrics()
        if registry.enabled:
            # Counts *virtual work actually performed*: a persistent-cache
            # hit (repro.core.cache) skips implement() entirely, so a warm
            # rerun's manifest shows this counter dropping.
            registry.counter("cad.implementations").inc()
        with tracer.span("cad.implement", candidate=candidate.key):
            # Phase 2: Netlist Generation (PivPav).
            with tracer.span("cad.c2v") as sp_c2v:
                vhdl = self.datapath_generator.generate(candidate)
                project = CadProject(name=vhdl.entity_name, device=self.device)
                project.add_vhdl(f"{vhdl.entity_name}.vhd", vhdl.source)
                for core_name, netlist in self.netlist_cache.extract_all(
                    vhdl.core_names
                ).items():
                    project.add_core_netlist(core_name, netlist)
                project.configure_defaults()
                project.top_entity = vhdl.entity_name
                sp_c2v.set_attrs(
                    entity=vhdl.entity_name, cores=len(vhdl.core_names)
                )

            # Phase 3: Instruction Implementation.
            with tracer.span("cad.syntax") as sp_syntax:
                design = VhdlSyntaxChecker().check(vhdl.source)
            with tracer.span("cad.synthesis") as sp_synthesis:
                synthesized = Synthesizer().synthesize(design, project)
            with tracer.span("cad.translate") as sp_translate:
                database = Translator().translate(synthesized, self.device)
            with tracer.span("cad.map") as sp_map:
                mapped = Mapper().map(database)
                sp_map.set_attrs(
                    luts=mapped.lut_count,
                    dsps=mapped.dsp_count,
                    brams=mapped.bram_count,
                )
            with tracer.span("cad.par") as sp_par:
                placement = Placer().place(mapped, self.device.region)
                routed = Router().route(mapped, placement, self.device.region)
            with tracer.span("cad.bitgen") as sp_bitgen:
                bitstream = BitstreamGenerator().generate(
                    vhdl.entity_name, mapped, placement, self.device
                )
                sp_bitgen.set_attr("bytes", bitstream.size_bytes)

            times = self.timing.stage_times(
                entity=vhdl.entity_name,
                lut_count=mapped.lut_count,
                dsp_count=mapped.dsp_count,
                bram_count=mapped.bram_count,
                component_count=len(vhdl.core_names),
            )
            # Back-fill the modelled Table III runtimes onto the stage spans.
            sp_c2v.set_attr("virtual_seconds", times.c2v)
            sp_syntax.set_attr("virtual_seconds", times.syn)
            sp_synthesis.set_attr("virtual_seconds", times.xst)
            sp_translate.set_attr("virtual_seconds", times.tra)
            sp_map.set_attr("virtual_seconds", times.map)
            sp_par.set_attr("virtual_seconds", times.par)
            sp_bitgen.set_attr("virtual_seconds", times.bitgen)
            log = get_log()
            if log.enabled:
                # One completion record per CAD stage, correlated to the
                # stage's own (already closed) span id; emitted after the
                # timing model has priced the candidate so each record
                # carries its Table III virtual runtime.
                for stage, span, seconds in (
                    ("c2v", sp_c2v, times.c2v),
                    ("syntax", sp_syntax, times.syn),
                    ("synthesis", sp_synthesis, times.xst),
                    ("translate", sp_translate, times.tra),
                    ("map", sp_map, times.map),
                    ("par", sp_par, times.par),
                    ("bitgen", sp_bitgen, times.bitgen),
                ):
                    log.emit(
                        "cad.stage",
                        level="debug",
                        span_id=span.span_id or None,
                        stage=stage,
                        candidate=candidate.key,
                        virtual_seconds=round(seconds, 6),
                    )
        return ImplementationResult(
            candidate=candidate,
            vhdl=vhdl,
            bitstream=bitstream,
            times=times,
            mapped=mapped,
            placement=placement,
            routed=routed,
        )
