"""Routing estimate.

A channel-capacity router model: each net contributes demand along its
bounding box (uniform distribution assumption); per-channel congestion and a
net-delay estimate (distance-proportional plus congestion penalty) are
computed. Routing fails only on gross capacity overflow, which for
datapath-sized designs in a dedicated region does not happen — matching the
paper, which never reports PAR failures, only long runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.device import PartialRegion
from repro.fpga.placer import Placement
from repro.fpga.techmap import MappedDesign


class RoutingError(Exception):
    """Raised on channel-capacity overflow."""


@dataclass
class RoutedDesign:
    """Routing result: wirelength, congestion and timing estimates."""

    total_wirelength: float
    max_channel_utilization: float
    critical_delay_ns: float
    net_count: int

    @property
    def routable(self) -> bool:
        return self.max_channel_utilization <= 1.0


@dataclass
class Router:
    """Bounding-box congestion router model."""

    channel_capacity: float = 48.0  # tracks per CLB channel (V4-ish)
    delay_per_clb_ns: float = 0.35
    congestion_delay_factor: float = 2.0

    def route(
        self, design: MappedDesign, placement: Placement, region: PartialRegion
    ) -> RoutedDesign:
        cols, rows = region.cols, region.rows
        demand = np.zeros((cols, rows), dtype=float)
        total_wl = 0.0
        max_net_span = 0.0

        for net in design.nets:
            xs = [placement.locations[c][0] for c in net]
            ys = [placement.locations[c][1] for c in net]
            x0, x1 = min(xs), max(xs)
            y0, y1 = min(ys), max(ys)
            span = (x1 - x0) + (y1 - y0)
            total_wl += span
            max_net_span = max(max_net_span, span)
            area = max(1, (x1 - x0 + 1) * (y1 - y0 + 1))
            demand[x0 : x1 + 1, y0 : y1 + 1] += span / area

        utilization = float(demand.max()) / self.channel_capacity if design.nets else 0.0
        if utilization > 1.5:
            raise RoutingError(
                f"channel utilization {utilization:.2f} exceeds capacity"
            )
        congestion_penalty = 1.0 + self.congestion_delay_factor * max(
            0.0, utilization - 0.7
        )
        critical_delay = max_net_span * self.delay_per_clb_ns * congestion_penalty
        return RoutedDesign(
            total_wirelength=total_wl,
            max_channel_utilization=utilization,
            critical_delay_ns=critical_delay,
            net_count=len(design.nets),
        )
