"""Technology mapping (map stand-in).

Packs the flat netlist's primitives into slice-like cells: LUT4+FDRE pairs
share a cell when connected (the classic LUT/FF packing), DSP48 and RAMB16
occupy dedicated cells. The mapper is connectivity-greedy: it prefers to
pack a flip-flop with the LUT that drives it, which reduces inter-cell nets
and gives the placer a meaningful problem.

Stands in for the Xilinx ``map`` stage of the paper's CAD flow; its
reported runtime is modelled after Table III by :mod:`repro.fpga.timingmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.translate import GenericDatabase


@dataclass
class MappedCell:
    """One placeable cell (slice / DSP site / BRAM site)."""

    index: int
    kind: str  # "SLICE" | "DSP" | "BRAM" | "IOB"
    members: list[int] = field(default_factory=list)  # primitive indices


@dataclass
class MappedDesign:
    """Mapping result: cells plus inter-cell nets."""

    cells: list[MappedCell]
    # nets as lists of cell indices (deduplicated, >=2 cells each)
    nets: list[list[int]]
    lut_count: int
    ff_count: int
    dsp_count: int
    bram_count: int

    @property
    def cell_count(self) -> int:
        return len(self.cells)


class Mapper:
    """Greedy connectivity-aware packer."""

    def map(self, database: GenericDatabase) -> MappedDesign:
        netlist = database.netlist
        cell_of_prim: dict[int, int] = {}
        cells: list[MappedCell] = []

        def new_cell(kind: str) -> MappedCell:
            cell = MappedCell(index=len(cells), kind=kind)
            cells.append(cell)
            return cell

        counts = {"LUT4": 0, "FDRE": 0, "DSP48": 0, "RAMB16": 0}

        # Pass 1: find LUT -> FF driving pairs for packing.
        # A LUT's output pin is pin 4; if that net feeds exactly one FDRE
        # data pin (pin 0), pack them together.
        lut_of_ff: dict[int, int] = {}
        for net, conns in netlist.nets.items():
            driver_lut = None
            ff_sinks = []
            other_sinks = 0
            for prim_idx, pin_idx in conns:
                if prim_idx < 0:
                    other_sinks += 1
                    continue
                prim = netlist.primitives[prim_idx]
                if prim.kind == "LUT4" and pin_idx == 4:
                    driver_lut = prim_idx
                elif prim.kind == "FDRE" and pin_idx == 0:
                    ff_sinks.append(prim_idx)
                else:
                    other_sinks += 1
            if driver_lut is not None and len(ff_sinks) == 1 and other_sinks == 0:
                lut_of_ff[ff_sinks[0]] = driver_lut

        # Pass 2: create cells.
        for prim_idx, prim in enumerate(netlist.primitives):
            if prim_idx in cell_of_prim:
                continue
            if prim.kind == "LUT4":
                counts["LUT4"] += 1
                cell = new_cell("SLICE")
                cell.members.append(prim_idx)
                cell_of_prim[prim_idx] = cell.index
            elif prim.kind == "FDRE":
                counts["FDRE"] += 1
                partner = lut_of_ff.get(prim_idx)
                if partner is not None and partner in cell_of_prim:
                    cell = cells[cell_of_prim[partner]]
                    if len(cell.members) < 2:
                        cell.members.append(prim_idx)
                        cell_of_prim[prim_idx] = cell.index
                        continue
                cell = new_cell("SLICE")
                cell.members.append(prim_idx)
                cell_of_prim[prim_idx] = cell.index
            elif prim.kind == "DSP48":
                counts["DSP48"] += 1
                cell = new_cell("DSP")
                cell.members.append(prim_idx)
                cell_of_prim[prim_idx] = cell.index
            elif prim.kind == "RAMB16":
                counts["RAMB16"] += 1
                cell = new_cell("BRAM")
                cell.members.append(prim_idx)
                cell_of_prim[prim_idx] = cell.index
            elif prim.kind == "IOBUF":
                cell = new_cell("IOB")
                cell.members.append(prim_idx)
                cell_of_prim[prim_idx] = cell.index
            else:  # pragma: no cover - unknown primitive kinds are a bug
                raise ValueError(f"unmappable primitive kind {prim.kind}")

        # Pass 3: inter-cell nets.
        nets: list[list[int]] = []
        for conns in netlist.nets.values():
            touched: list[int] = []
            seen: set[int] = set()
            for prim_idx, _pin in conns:
                if prim_idx < 0:
                    continue
                cell_idx = cell_of_prim[prim_idx]
                if cell_idx not in seen:
                    seen.add(cell_idx)
                    touched.append(cell_idx)
            if len(touched) >= 2:
                nets.append(touched)

        return MappedDesign(
            cells=cells,
            nets=nets,
            lut_count=counts["LUT4"],
            ff_count=counts["FDRE"],
            dsp_count=counts["DSP48"],
            bram_count=counts["RAMB16"],
        )
