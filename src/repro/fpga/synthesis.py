"""Synthesis (Xst stand-in).

"Since all the netlists for all hardware components are retrieved from a
database there is no need to re-synthesize them. The synthesis process thus
has to generate a netlist just for the top level module." (Section V-C)

Synthesis here elaborates the parsed VHDL design: it checks every component
against the project's pre-extracted core netlists, builds the top-level
netlist (port buffers + glue), and merges the core netlists into it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.project import CadProject
from repro.fpga.syntax import VhdlDesign
from repro.pivpav.netlist import Netlist


class SynthesisError(Exception):
    """Raised when elaboration fails (missing cores, dangling nets)."""


@dataclass
class SynthesizedDesign:
    """Output of synthesis: the flat top-level netlist plus statistics."""

    netlist: Netlist
    instance_count: int
    glue_luts: int


class Synthesizer:
    """Builds the top-level netlist from a checked VHDL design."""

    def synthesize(self, design: VhdlDesign, project: CadProject) -> SynthesizedDesign:
        top = Netlist(design.entity)

        # Port buffers: each entity port becomes an IOB-like primitive at
        # the region boundary (FCB interface registers in Woolcano terms).
        for port in design.ports:
            idx = top.add_primitive("IOBUF", f"{design.entity}/{port.name}_buf")
            top.connect(port.name, idx, 0)
            top.add_port(port.name)

        # Instance glue: each instance's port-map nets exist in the top.
        glue_luts = 0
        for inst in design.instances:
            if inst.component not in project.core_netlists:
                raise SynthesisError(
                    f"component {inst.component!r} has no netlist in the project"
                )
            # One glue LUT per port-map connection beyond clk models the
            # boundary routing/logic Xst introduces for the top module.
            for formal, actual in inst.port_map.items():
                if formal == "clk":
                    continue
                idx = top.add_primitive("LUT4", f"glue/{inst.label}/{formal}")
                top.connect(actual, idx, 0)
                top.connect(f"{inst.label}.{formal}", idx, 4)
                glue_luts += 1

        # Continuous assignments become route-through LUTs.
        for target, source in design.assignments:
            idx = top.add_primitive("LUT4", f"assign/{target}")
            top.connect(source, idx, 0)
            top.connect(target, idx, 4)
            glue_luts += 1

        # Merge pre-synthesized core netlists (the netlist cache bypass).
        merged = top
        for inst in design.instances:
            core_nl = project.core_netlists[inst.component]
            merged = merged.merged_with(core_nl, inst.label)

        # Sanity: every assignment source must be driven somewhere.
        driven = set(merged.nets)
        for target, source in design.assignments:
            if source not in driven:
                raise SynthesisError(f"net {source!r} has no driver")

        return SynthesizedDesign(
            netlist=merged,
            instance_count=len(design.instances),
            glue_luts=glue_luts,
        )
