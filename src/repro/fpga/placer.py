"""Placement: simulated annealing inside the partial region.

Minimises total half-perimeter wirelength (HPWL) of the inter-cell nets on
the region's CLB grid. Deterministically seeded per design so results are
reproducible. If the design does not fit the region, placement fails — the
Woolcano region is sized for custom-instruction datapaths, not arbitrary
logic.

Stands in for the placement half of the paper's ``par`` stage, whose
runtime share Table III and Section V-C quantify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.fpga.device import PartialRegion
from repro.fpga.techmap import MappedDesign
from repro.util.rng import DeterministicRng


class PlacementError(Exception):
    """Raised when a design cannot be placed in the region."""


@dataclass
class Placement:
    """Result of placement: cell index -> (col, row) plus quality metrics."""

    locations: dict[int, tuple[int, int]]
    initial_wirelength: float
    final_wirelength: float
    moves_attempted: int
    moves_accepted: int

    @property
    def improvement(self) -> float:
        if self.initial_wirelength <= 0:
            return 0.0
        return 1.0 - self.final_wirelength / self.initial_wirelength


@dataclass
class Placer:
    """Simulated-annealing placer.

    ``moves_per_cell`` bounds the annealing effort; the default is sized so
    the largest candidate datapaths place in well under a second while still
    achieving a measurable wirelength improvement (asserted by tests).
    """

    moves_per_cell: int = 40
    initial_temperature_factor: float = 0.5
    seed: int = 0

    def place(self, design: MappedDesign, region: PartialRegion) -> Placement:
        n_cells = design.cell_count
        if n_cells == 0:
            return Placement({}, 0.0, 0.0, 0, 0)
        if n_cells > region.cell_capacity:
            raise PlacementError(
                f"design needs {n_cells} cells, region holds "
                f"{region.cell_capacity}"
            )
        rng = DeterministicRng(f"placer/{n_cells}/{len(design.nets)}", self.seed)

        # Initial placement: row-major packing.
        cols = region.cols
        rows = region.rows
        per_site = region.cells_per_clb
        sites = cols * rows * per_site
        locations: dict[int, tuple[int, int]] = {}
        site_of_cell: dict[int, int] = {}
        cell_at_site: dict[int, int] = {}
        for cell in design.cells:
            site = len(site_of_cell)
            site_of_cell[cell.index] = site
            cell_at_site[site] = cell.index

        def site_xy(site: int) -> tuple[int, int]:
            clb = site // per_site
            return (clb % cols, clb // cols)

        # Net -> cells; cell -> nets index for incremental cost.
        nets = design.nets
        nets_of_cell: dict[int, list[int]] = {}
        for ni, net in enumerate(nets):
            for cell_idx in net:
                nets_of_cell.setdefault(cell_idx, []).append(ni)

        def net_hpwl(net: list[int]) -> float:
            xs = []
            ys = []
            for cell_idx in net:
                x, y = site_xy(site_of_cell[cell_idx])
                xs.append(x)
                ys.append(y)
            return (max(xs) - min(xs)) + (max(ys) - min(ys))

        total = sum(net_hpwl(net) for net in nets)
        initial = total

        anneal_moves = self.moves_per_cell * n_cells
        greedy_moves = anneal_moves // 2  # final zero-temperature refinement
        n_moves = anneal_moves + greedy_moves
        temperature = max(1.0, self.initial_temperature_factor * math.sqrt(total + 1))
        cooling = 0.95 ** (1.0 / max(1, anneal_moves // 100))
        accepted = 0

        cell_indices = [c.index for c in design.cells]
        for move_no in range(n_moves):
            greedy = move_no >= anneal_moves
            cell_idx = cell_indices[int(rng.integers(0, n_cells))]
            old_site = site_of_cell[cell_idx]
            new_site = int(rng.integers(0, sites))
            if new_site == old_site:
                continue
            other = cell_at_site.get(new_site)

            affected = set(nets_of_cell.get(cell_idx, ()))
            if other is not None:
                affected |= set(nets_of_cell.get(other, ()))
            before = sum(net_hpwl(nets[ni]) for ni in affected)

            # swap / move
            site_of_cell[cell_idx] = new_site
            cell_at_site[new_site] = cell_idx
            if other is not None:
                site_of_cell[other] = old_site
                cell_at_site[old_site] = other
            else:
                del cell_at_site[old_site]

            after = sum(net_hpwl(nets[ni]) for ni in affected)
            delta = after - before
            if delta <= 0 or (
                not greedy and rng.random() < math.exp(-delta / temperature)
            ):
                total += delta
                accepted += 1
            else:
                # revert
                site_of_cell[cell_idx] = old_site
                cell_at_site[old_site] = cell_idx
                if other is not None:
                    site_of_cell[other] = new_site
                    cell_at_site[new_site] = other
                else:
                    del cell_at_site[new_site]
            temperature = max(0.01, temperature * cooling)

        for cell in design.cells:
            locations[cell.index] = site_xy(site_of_cell[cell.index])
        return Placement(
            locations=locations,
            initial_wirelength=float(initial),
            final_wirelength=float(total),
            moves_attempted=n_moves,
            moves_accepted=accepted,
        )
