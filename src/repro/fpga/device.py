"""FPGA device models.

The paper targets a Xilinx Virtex-4 FX100 ("a rather large device" — the
constant tool-flow overheads scale with device capacity, Section VI-B).
Custom instructions are implemented inside a fixed *partial reconfiguration
region* of the fabric next to the PowerPC block.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PartialRegion:
    """A rectangular reconfigurable region (in CLB coordinates)."""

    name: str
    origin_col: int
    origin_row: int
    cols: int
    rows: int
    # How many mapped cells (model-scale slices) fit per CLB site.
    cells_per_clb: int = 4

    @property
    def clb_count(self) -> int:
        return self.cols * self.rows

    @property
    def cell_capacity(self) -> int:
        return self.clb_count * self.cells_per_clb


@dataclass(frozen=True)
class FpgaDevice:
    """A Virtex-4-style device model."""

    name: str
    clb_cols: int
    clb_rows: int
    luts_per_clb: int
    dsp_blocks: int
    bram_blocks: int
    ppc_cores: int
    config_frame_bytes: int
    frames_per_clb_col: int
    region: PartialRegion

    @property
    def total_luts(self) -> int:
        return self.clb_cols * self.clb_rows * self.luts_per_clb

    @property
    def total_clbs(self) -> int:
        return self.clb_cols * self.clb_rows

    def full_bitstream_bytes(self) -> int:
        return self.clb_cols * self.frames_per_clb_col * self.config_frame_bytes

    def partial_bitstream_bytes(self) -> int:
        """Size of a partial bitstream covering the region's columns.

        Virtex-4 configuration is frame-based and column-oriented: a partial
        bitstream must contain every frame of each touched column.
        """
        return self.region.cols * self.frames_per_clb_col * self.config_frame_bytes


# Virtex-4 FX100: 42k slices / 84k LUTs arranged (model) as 192 x 56 CLBs,
# 160 DSP48, 376 BRAM, 2 PPC405 cores. Frame geometry approximates the
# XC4VFX100's 41-word frames (164 bytes).
VIRTEX4_FX100 = FpgaDevice(
    name="xc4vfx100",
    clb_cols=56,
    clb_rows=192,
    luts_per_clb=8,
    dsp_blocks=160,
    bram_blocks=376,
    ppc_cores=2,
    config_frame_bytes=164,
    frames_per_clb_col=1312,
    region=PartialRegion(
        name="ci_region",
        origin_col=36,
        origin_row=64,
        cols=16,
        rows=48,
        cells_per_clb=4,
    ),
)

# A smaller device for the Section VI-B discussion (faster constant stages).
VIRTEX4_FX20 = FpgaDevice(
    name="xc4vfx20",
    clb_cols=36,
    clb_rows=64,
    luts_per_clb=8,
    dsp_blocks=32,
    bram_blocks=68,
    ppc_cores=1,
    config_frame_bytes=164,
    frames_per_clb_col=832,
    region=PartialRegion(
        name="ci_region",
        origin_col=20,
        origin_row=16,
        cols=12,
        rows=32,
        cells_per_clb=4,
    ),
)
