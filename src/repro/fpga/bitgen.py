"""Partial bitstream generation.

Produces the configuration frames for the region columns touched by the
placed design. Virtex-4 configuration is column/frame based: a partial
bitstream must include *every* frame of each touched column, which is why
Bitgen's runtime is constant per device/region and dominates the constant
overheads (85 % of them, Table III) — the EAPR flow reads back and
re-serialises the whole region regardless of how little logic changed.

The in-memory payload materialises only a deterministic excerpt of each
column's frames (``MATERIALIZED_FRAMES_PER_COL``); the full nominal size is
reported separately so hundreds of candidate bitstreams fit in RAM. The
excerpt is a function of the placement, so two identical candidates produce
byte-identical bitstreams (the property the bitstream cache relies on) and
any placement difference changes the checksum.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.fpga.device import FpgaDevice
from repro.fpga.placer import Placement
from repro.fpga.techmap import MappedDesign

_SYNC_WORD = b"\xaa\x99\x55\x66"

MATERIALIZED_FRAMES_PER_COL = 4


@dataclass(frozen=True)
class PartialBitstream:
    """A generated partial-reconfiguration bitstream."""

    entity: str
    data: bytes
    frame_count: int
    column_count: int
    nominal_size_bytes: int  # size the real EAPR flow would write

    @property
    def size_bytes(self) -> int:
        """Nominal on-disk size (frames x frame bytes + header)."""
        return self.nominal_size_bytes

    @property
    def checksum(self) -> str:
        return hashlib.sha256(self.data).hexdigest()[:16]


class BitstreamGenerator:
    """Serialises a placed design into partial configuration frames."""

    def generate(
        self,
        entity: str,
        design: MappedDesign,
        placement: Placement,
        device: FpgaDevice,
    ) -> PartialBitstream:
        region = device.region
        frame_bytes = device.config_frame_bytes
        frames_per_col = device.frames_per_clb_col

        # Deterministic frame contents derived from the cells placed in the
        # column — same placement, same bitstream (cache-friendly).
        cells_by_col: dict[int, list[int]] = {c: [] for c in range(region.cols)}
        for cell_idx, (col, row) in placement.locations.items():
            cells_by_col.setdefault(col, []).append(cell_idx * 131071 + row)

        chunks: list[bytes] = [_SYNC_WORD]
        header = f"{entity}:{device.name}:{region.name}".encode()
        chunks.append(len(header).to_bytes(2, "big"))
        chunks.append(header)
        frame_count = 0
        materialized = min(frames_per_col, MATERIALIZED_FRAMES_PER_COL)
        for col in range(region.cols):
            seed = hashlib.blake2b(
                f"{entity}/{col}/{sorted(cells_by_col.get(col, []))}".encode(),
                digest_size=32,
            ).digest()
            needed = materialized * frame_bytes
            material = bytearray()
            counter = 0
            while len(material) < needed:
                material.extend(
                    hashlib.blake2b(
                        seed + counter.to_bytes(4, "big"), digest_size=64
                    ).digest()
                )
                counter += 1
            chunks.append(bytes(material[:needed]))
            frame_count += frames_per_col
        data = b"".join(chunks)
        nominal = (
            len(_SYNC_WORD)
            + 2
            + len(header)
            + frame_count * frame_bytes
        )
        return PartialBitstream(
            entity=entity,
            data=data,
            frame_count=frame_count,
            column_count=region.cols,
            nominal_size_bytes=nominal,
        )
