"""FPGA CAD tool-flow simulator (Xilinx ISE 12.2 EAPR stand-in).

Implements the Instruction Implementation phase of the paper's Figure 2 as
an executable mini-CAD flow: VHDL syntax check -> synthesis -> translate ->
technology mapping -> place-and-route -> partial bitstream generation.

The algorithms run for real at model scale (the paper's tools are closed
and orders of magnitude slower); the *reported* stage runtimes come from
:mod:`repro.fpga.timingmodel`, calibrated to the constant overheads of the
paper's Table III and the map/PAR ranges of Section V-C. This keeps the
relationships the paper analyses (overhead proportional to candidate count,
Bitgen ~85 % of constant cost, PAR/map ratio 1.4-2.5x) intact while staying
deterministic and fast.
"""

from repro.fpga.device import FpgaDevice, VIRTEX4_FX100, PartialRegion
from repro.fpga.project import CadProject
from repro.fpga.syntax import VhdlSyntaxChecker, VhdlSyntaxError
from repro.fpga.synthesis import Synthesizer, SynthesisError
from repro.fpga.translate import Translator
from repro.fpga.techmap import Mapper, MappedDesign
from repro.fpga.placer import Placer, Placement
from repro.fpga.router import Router, RoutedDesign
from repro.fpga.bitgen import BitstreamGenerator, PartialBitstream
from repro.fpga.timingmodel import CadTimingModel, StageTimes
from repro.fpga.toolflow import CadToolFlow, ImplementationResult

__all__ = [
    "FpgaDevice",
    "VIRTEX4_FX100",
    "PartialRegion",
    "CadProject",
    "VhdlSyntaxChecker",
    "VhdlSyntaxError",
    "Synthesizer",
    "SynthesisError",
    "Translator",
    "Mapper",
    "MappedDesign",
    "Placer",
    "Placement",
    "Router",
    "RoutedDesign",
    "BitstreamGenerator",
    "PartialBitstream",
    "CadTimingModel",
    "StageTimes",
    "CadToolFlow",
    "ImplementationResult",
]
