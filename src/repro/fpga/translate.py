"""Translate (ngdbuild stand-in).

"All netlists and constraint files are consolidated into a single database"
(Section V-C). Translation flattens the synthesized design with the region
constraints into the generic database the mapper consumes, and runs design
rule checks (dangling inputs, multiple drivers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.device import FpgaDevice
from repro.fpga.synthesis import SynthesizedDesign
from repro.pivpav.netlist import Netlist


class TranslateError(Exception):
    """Design-rule-check failure during translation."""


@dataclass
class GenericDatabase:
    """The translated design: flat netlist + constraints (NGD equivalent)."""

    netlist: Netlist
    constraints: dict[str, str] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)


class Translator:
    """Merges netlists and constraints; performs DRC."""

    def translate(
        self, design: SynthesizedDesign, device: FpgaDevice
    ) -> GenericDatabase:
        netlist = design.netlist
        warnings: list[str] = []

        # DRC 1: a net must not have more than one driver. By construction
        # drivers are output pins (the last pin of each primitive); we check
        # via pin-position convention: output pin index is >= 4 for LUT4,
        # 2 for FDRE, 6 for DSP48, 4 for RAMB16, 0 for IOBUF/ports.
        out_pin_min = {"LUT4": 4, "FDRE": 2, "DSP48": 6, "RAMB16": 4, "IOBUF": 0}
        for net, conns in netlist.nets.items():
            drivers = 0
            for prim_idx, pin_idx in conns:
                if prim_idx < 0:
                    continue  # port connection
                kind = netlist.primitives[prim_idx].kind
                if kind == "IOBUF":
                    continue
                if pin_idx >= out_pin_min.get(kind, 99):
                    drivers += 1
            if drivers > 1:
                raise TranslateError(f"net {net!r} has {drivers} drivers")
            if drivers == 0 and not net.startswith("io") and len(conns) > 1:
                warnings.append(f"net {net!r} is undriven")

        constraints = {
            "AREA_GROUP": device.region.name,
            "RANGE": (
                f"CLB_X{device.region.origin_col}Y{device.region.origin_row}:"
                f"CLB_X{device.region.origin_col + device.region.cols - 1}"
                f"Y{device.region.origin_row + device.region.rows - 1}"
            ),
            "MODE": "RECONFIG",
        }
        return GenericDatabase(
            netlist=netlist, constraints=constraints, warnings=warnings
        )
