"""CAD project: the in-memory equivalent of a Xilinx ISE project directory.

"PivPav creates an FPGA CAD project for Xilinx ISE, sets up the parameters
of the FPGA, and adds the VHDL and the netlist files." (Section III)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.device import FpgaDevice, VIRTEX4_FX100
from repro.pivpav.netlist import Netlist


@dataclass
class CadProject:
    """A project bundles sources, core netlists and device settings."""

    name: str
    device: FpgaDevice = VIRTEX4_FX100
    vhdl_files: dict[str, str] = field(default_factory=dict)  # filename -> text
    core_netlists: dict[str, Netlist] = field(default_factory=dict)
    settings: dict[str, str] = field(default_factory=dict)
    top_entity: str = ""

    def add_vhdl(self, filename: str, source: str) -> None:
        if filename in self.vhdl_files:
            raise ValueError(f"duplicate VHDL file {filename!r} in project")
        self.vhdl_files[filename] = source

    def add_core_netlist(self, core_name: str, netlist: Netlist) -> None:
        self.core_netlists[core_name] = netlist

    def configure_defaults(self) -> None:
        """Default tool settings as the PivPav TCL scripting would set them."""
        self.settings.setdefault("family", "virtex4")
        self.settings.setdefault("device", self.device.name)
        self.settings.setdefault("speed_grade", "-10")
        self.settings.setdefault("opt_mode", "speed")
        self.settings.setdefault("opt_level", "1")
        self.settings.setdefault("flow", "eapr")  # Early Access Partial Reconfig

    @property
    def file_count(self) -> int:
        return len(self.vhdl_files) + len(self.core_netlists)
