"""Virtual wall-clock model of the CAD tool flow, calibrated to Table III.

The paper's measured stage runtimes on a Dell T3500 workstation with the
Xilinx ISE 12.2 EAPR flow:

=========  ==========  =======
stage      mean [s]    stdev
=========  ==========  =======
C2V        3.22        0.10
Syn        4.22        0.10
Xst        10.60       0.23
Tra        8.99        1.22
Bitgen     151.00      2.43
=========  ==========  =======

plus variable stages: Map 40-456 s and PAR 56-728 s depending on candidate
complexity, with PAR/Map between 1.4x (small) and 2.5x (large).

The model reproduces the means, the (deterministic, seeded) spread, the
complexity scaling, and the device dependence of the constant stages
(Section VI-B: a smaller device would shrink them; Bitgen scales with the
region's configuration volume).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import FpgaDevice, VIRTEX4_FX100
from repro.pivpav.netlist import NETLIST_SCALE
from repro.util.rng import DeterministicRng

# Reference complexity: effective LUT count at which Map hits its maximum.
_REF_EFF_LUTS = 5500.0

#: Version of the calibrated timing model. Part of the persistent
#: bitstream-cache key (:mod:`repro.core.cache`): recalibrating the model
#: must invalidate every cached implementation, because the cached
#: :class:`StageTimes` were priced under the old constants. Bump on any
#: change to the stage-time formulas or their calibration constants.
TIMING_MODEL_VERSION = 1


@dataclass(frozen=True)
class StageTimes:
    """Virtual runtimes (seconds) of each tool-flow stage for one candidate."""

    c2v: float
    syn: float
    xst: float
    tra: float
    map: float
    par: float
    bitgen: float

    @property
    def constant_sum(self) -> float:
        """Sum of the candidate-independent stages (Table III's Sum)."""
        return self.c2v + self.syn + self.xst + self.tra + self.bitgen

    @property
    def total(self) -> float:
        return self.constant_sum + self.map + self.par

    def scaled(self, factor: float) -> "StageTimes":
        """Uniformly scaled times (the 'faster CAD tool flow' of Table IV)."""
        return StageTimes(
            c2v=self.c2v * factor,
            syn=self.syn * factor,
            xst=self.xst * factor,
            tra=self.tra * factor,
            map=self.map * factor,
            par=self.par * factor,
            bitgen=self.bitgen * factor,
        )


@dataclass(frozen=True)
class CadTimingModel:
    """Produces per-candidate virtual stage times."""

    device: FpgaDevice = VIRTEX4_FX100
    c2v_mean: float = 3.22
    c2v_std: float = 0.10
    syn_mean: float = 4.22
    syn_std: float = 0.10
    xst_mean: float = 10.60
    xst_std: float = 0.23
    tra_mean: float = 8.99
    tra_std: float = 1.22
    bitgen_mean: float = 151.00
    bitgen_std: float = 2.43
    map_min: float = 40.0
    map_max: float = 456.0
    par_min: float = 56.0
    par_max: float = 728.0
    par_ratio_min: float = 1.4
    par_ratio_max: float = 2.5
    full_bitgen_mean: float = 41.0  # non-EAPR full-device bitstream

    def _device_scale(self) -> float:
        """Constant stages scale with device capacity (Section VI-B)."""
        return self.device.total_clbs / VIRTEX4_FX100.total_clbs

    def _bitgen_scale(self) -> float:
        """Bitgen scales with the region's configuration volume."""
        ref = VIRTEX4_FX100.partial_bitstream_bytes()
        return self.device.partial_bitstream_bytes() / ref

    @staticmethod
    def effective_luts(lut_count: int, dsp_count: int, bram_count: int) -> float:
        """Full-scale complexity measure from model-scale mapped counts."""
        return (
            lut_count * NETLIST_SCALE
            + 50.0 * dsp_count
            + 40.0 * bram_count
        )

    def stage_times(
        self,
        entity: str,
        lut_count: int,
        dsp_count: int = 0,
        bram_count: int = 0,
        component_count: int = 1,
    ) -> StageTimes:
        rng = DeterministicRng(f"cadtiming/{entity}")

        def noisy(mean: float, std: float) -> float:
            return max(0.1, mean + std * float(rng.normal()))

        dscale = self._device_scale()
        eff = self.effective_luts(lut_count, dsp_count, bram_count)
        complexity = min(1.0, max(0.0, (eff - 50.0) / _REF_EFF_LUTS))

        # Xst "changes only with the number of hardware components".
        xst = noisy(self.xst_mean, self.xst_std) * dscale + 0.05 * component_count

        map_time = (
            self.map_min + (self.map_max - self.map_min) * complexity
        ) * (1.0 + 0.04 * float(rng.normal()))
        par_ratio = self.par_ratio_min + (
            self.par_ratio_max - self.par_ratio_min
        ) * complexity
        par_time = map_time * par_ratio * (1.0 + 0.04 * float(rng.normal()))
        # The paper's observed PAR range is 56-728 s; PAR saturates earlier
        # than map x ratio would suggest for the very largest candidates.
        par_time = min(par_time, self.par_max)
        map_time = min(map_time, self.map_max)

        return StageTimes(
            c2v=noisy(self.c2v_mean, self.c2v_std),
            syn=noisy(self.syn_mean, self.syn_std) * dscale,
            xst=xst,
            tra=noisy(self.tra_mean, self.tra_std) * dscale,
            map=max(1.0, map_time),
            par=max(1.0, par_time),
            bitgen=noisy(self.bitgen_mean, self.bitgen_std) * self._bitgen_scale(),
        )

    def full_bitstream_seconds(self) -> float:
        """Creating a full (non-EAPR) system bitstream (~41 s, Section V-C)."""
        return self.full_bitgen_mean * self._device_scale()
