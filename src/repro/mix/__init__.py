"""Fleet workload-mix simulation — Table IV under slot contention.

The paper prices just-in-time instruction-set extension for one
application at a time (Tables II-IV); this package asks what happens
when a *fleet* of applications shares one reconfigurable machine. A
deterministic, seeded trace of application invocations
(:mod:`repro.mix.trace`) replays against frozen per-application
specialization profiles (:mod:`repro.mix.profiles`) through the real
slot pool, eviction policies, ICAP model and shared bitstream store
(:mod:`repro.mix.simulator`), producing per-cell break-even times —
"a Table IV for fleets" — swept over mix entropy, eviction policy and
slot capacity by :func:`repro.obs.bench.run_mix_bench`.
"""

from repro.mix.profiles import (
    DEFAULT_APPS,
    AppMixProfile,
    SlotCandidate,
    build_app_profiles,
    build_profile,
)
from repro.mix.simulator import AppCellStats, CellResult, simulate_cell
from repro.mix.trace import (
    MIX_PRESETS,
    MixEvent,
    MixTraceConfig,
    build_trace,
    empirical_entropy,
    mix_entropy,
    preset_config,
)

__all__ = [
    "MIX_PRESETS",
    "DEFAULT_APPS",
    "AppCellStats",
    "AppMixProfile",
    "CellResult",
    "MixEvent",
    "MixTraceConfig",
    "SlotCandidate",
    "build_app_profiles",
    "build_profile",
    "build_trace",
    "empirical_entropy",
    "mix_entropy",
    "preset_config",
    "simulate_cell",
]
