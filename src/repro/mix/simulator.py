"""Slot-contention replay of one workload-mix trace (the fleet Table IV).

One *cell* of the fleet grid replays a deterministic trace of
application invocations (:mod:`repro.mix.trace`) against a shared
machine: a fixed pool of custom-instruction slots
(:class:`repro.woolcano.slots.CustomInstructionSlots`) under one
eviction policy, a fleet-wide :class:`repro.serve.store.SharedBitstreamStore`
namespace, and the paper's ICAP reconfiguration model. Per event, the
invoked application wants its top-value configurations resident:

- a configuration already resident (possibly loaded by *another*
  application with the same structural signature) is a slot hit —
  cross-application sharing at the hardware level;
- otherwise the fleet store is consulted: a miss charges the modelled
  CAD flow (Table III) and stores the bitstream, a hit charges nothing
  (Section VI-A's accounting) — hits served across applications are
  counted by the store's ``cross_app_hits``;
- loading into a full pool evicts a victim per the cell's policy, and
  the (re)load pays the ICAP write (Section V); an instruction evicted
  and needed again is a *reload*, the contention cost this simulator
  exists to expose.

Each application's mean charged overhead per invocation feeds the
paper's break-even model (Table IV), yielding a per-app and
events-weighted fleet break-even for the cell. Every number here runs
on the virtual clock, so identical (trace, policy, capacity) inputs
reproduce bit-identically — the ``regress-mix`` guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite
from pathlib import Path

from repro.core.breakeven import BreakEvenModel
from repro.fpga.device import VIRTEX4_FX100
from repro.mix.profiles import AppMixProfile
from repro.mix.trace import MixEvent
from repro.obs import get_tracer
from repro.serve.store import SharedBitstreamStore
from repro.woolcano.reconfig import IcapModel
from repro.woolcano.slots import CustomInstructionSlots


@dataclass
class AppCellStats:
    """Per-application accounting within one grid cell."""

    events: int = 0
    slot_hits: int = 0
    slot_loads: int = 0
    reloads: int = 0
    store_hits: int = 0
    store_misses: int = 0
    cad_seconds: float = 0.0
    icap_seconds: float = 0.0
    overhead_seconds: float = 0.0
    break_even_seconds: float | None = None

    @property
    def store_hit_rate(self) -> float:
        lookups = self.store_hits + self.store_misses
        return self.store_hits / lookups if lookups else 0.0

    @property
    def slot_hit_rate(self) -> float:
        wants = self.slot_hits + self.slot_loads
        return self.slot_hits / wants if wants else 0.0

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "slot_hits": self.slot_hits,
            "slot_loads": self.slot_loads,
            "reloads": self.reloads,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_hit_rate": round(self.store_hit_rate, 9),
            "slot_hit_rate": round(self.slot_hit_rate, 9),
            "cad_seconds": round(self.cad_seconds, 9),
            "icap_seconds": round(self.icap_seconds, 9),
            "overhead_seconds": round(self.overhead_seconds, 9),
            "break_even_seconds": (
                round(self.break_even_seconds, 9)
                if self.break_even_seconds is not None
                else None
            ),
        }


@dataclass
class CellResult:
    """One (mix, policy, capacity) cell of the fleet grid."""

    mix_name: str
    policy: str
    capacity: int
    events: int
    apps: dict[str, AppCellStats] = field(default_factory=dict)
    slots: dict = field(default_factory=dict)
    store: dict = field(default_factory=dict)
    mean_occupancy_pct: float = 0.0
    fleet_break_even_seconds: float | None = None

    def as_dict(self) -> dict:
        return {
            "mix": self.mix_name,
            "policy": self.policy,
            "capacity": self.capacity,
            "events": self.events,
            "fleet_break_even_seconds": (
                round(self.fleet_break_even_seconds, 9)
                if self.fleet_break_even_seconds is not None
                else None
            ),
            "mean_occupancy_pct": round(self.mean_occupancy_pct, 6),
            "slots": self.slots,
            "store": self.store,
            "apps": {
                name: stats.as_dict() for name, stats in sorted(self.apps.items())
            },
        }


def simulate_cell(
    profiles: dict[str, AppMixProfile],
    trace: list[MixEvent],
    policy: str,
    capacity: int,
    store_root,
    mix_name: str = "custom",
    icap: IcapModel | None = None,
) -> CellResult:
    """Replay *trace* under (*policy*, *capacity*) with a cold fleet store."""
    icap = icap or IcapModel()
    store = SharedBitstreamStore(Path(store_root))
    tenants = {name: store.tenant("fleet", app=name) for name in profiles}
    slots = CustomInstructionSlots(capacity=capacity, policy=policy)
    result = CellResult(
        mix_name=mix_name, policy=policy, capacity=capacity, events=len(trace)
    )
    # Fleet-wide UDI numbering: one custom id per structural signature, so
    # two applications wanting the same configuration share a resident
    # instruction instead of thrashing the slot.
    fleet_ids: dict[int, int] = {}
    occupancy_sum = 0.0
    with get_tracer().span(
        "mix.cell", mix=mix_name, policy=policy, capacity=capacity
    ):
        for event in trace:
            profile = profiles[event.app]
            stats = result.apps.setdefault(event.app, AppCellStats())
            stats.events += 1
            tenant = tenants[event.app]
            for config in profile.wanted(capacity):
                fleet_id = fleet_ids.setdefault(
                    config.signature, len(fleet_ids)
                )
                if slots.is_loaded(fleet_id):
                    slots.touch(fleet_id)
                    stats.slot_hits += 1
                    continue
                key = tenant.key_for(config.candidate, VIRTEX4_FX100)
                impl = tenant.get(key, config.candidate)
                if impl is None:
                    stats.store_misses += 1
                    stats.cad_seconds += config.toolflow_seconds
                    stats.overhead_seconds += config.toolflow_seconds
                    tenant.put(key, config.implementation)
                else:
                    stats.store_hits += 1
                was_evicted = slots.was_evicted(fleet_id)
                reconf = icap.reconfigure(
                    fleet_id,
                    config.bitstream,
                    reason="reload" if was_evicted else "load",
                )
                stats.icap_seconds += reconf.seconds
                stats.overhead_seconds += reconf.seconds
                slots.load(
                    fleet_id,
                    config.signature,
                    config.bitstream,
                    value=config.value,
                    owner=event.app,
                )
                stats.slot_loads += 1
                if was_evicted:
                    stats.reloads += 1
            occupancy_sum += slots.occupancy_pct()

    # Table IV, fleet edition: each application's break-even uses its
    # *mean* charged overhead per invocation under this mix — contention
    # (reloads) and store sharing move it in opposite directions.
    model = BreakEvenModel()
    weighted = 0.0
    weight_events = 0
    for name, stats in result.apps.items():
        profile = profiles[name]
        estimates = [
            est
            for config in profile.wanted(capacity)
            for est in config.estimates
        ]
        mean_overhead = stats.overhead_seconds / max(1, stats.events)
        analysis = model.analyze(
            profile.module,
            profile.profile,
            profile.coverage,
            estimates,
            mean_overhead,
        )
        be = analysis.live_aware_seconds
        if isfinite(be):
            stats.break_even_seconds = be
            weighted += be * stats.events
            weight_events += stats.events
    if weight_events:
        result.fleet_break_even_seconds = weighted / weight_events
    result.mean_occupancy_pct = occupancy_sum / max(1, len(trace))
    result.slots = slots.stats()
    result.store = store.combined_stats()
    result.store.pop("root", None)  # per-cell scratch dir, not a result
    result.store.pop("bytes", None)  # host pickle sizes, not modelled data
    return result
