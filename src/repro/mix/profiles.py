"""Per-application specialization profiles for the fleet-mix simulator.

Replaying a thousand-event workload mix must not re-run the paper's
Figure 2 pipeline per event: one invocation of an already-specialized
application pays (at most) bitstream-store lookups and ICAP reloads, not
a fresh candidate search. This module therefore runs the ASIP
specialization process (search + modelled CAD flow, Tables II/III)
**once per application** and freezes what the simulator needs:

- the selected candidates folded by structural signature (structurally
  equal candidates share one hardware configuration, hence one slot and
  one store entry);
- each configuration's modelled CAD cost (charged on a store miss), its
  partial bitstream (its ICAP reload cost), and its *benefit density* —
  saved cycles per invocation per second of reload cost, the score the
  break-even-aware eviction policy ranks victims by;
- the module/profile/coverage triple the Table IV break-even model
  (:class:`repro.core.breakeven.BreakEvenModel`) needs to price the
  fleet-level overhead each cell charges the application.

Everything frozen here is virtual-clock deterministic; only the
candidate-search wall time is measured, and it is reported as an
informational cell, never folded into the simulated overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.asip_sp import AsipSpecializationProcess
from repro.ise.pruning import PruningFilter
from repro.ise.selection import CandidateSearch
from repro.obs import get_tracer
from repro.woolcano.machine import WoolcanoMachine
from repro.woolcano.reconfig import IcapModel

#: Applications the fleet grid replays by default (the embedded suite).
DEFAULT_APPS = ("fft", "adpcm", "sor", "whetstone")


@dataclass
class SlotCandidate:
    """One hardware configuration an application wants resident."""

    signature: int
    candidate: object  # repro.ise.candidate.Candidate (store key input)
    implementation: object  # ImplementationResult (store payload)
    bitstream: object  # PartialBitstream (ICAP reload cost input)
    toolflow_seconds: float  # modelled CAD cost on a store miss
    reload_seconds: float  # ICAP write cost per (re)load
    saved_cycles: float  # per invocation, summed over equal candidates
    value: float  # benefit density: saved_cycles / reload_seconds
    estimates: list  # CandidateEstimate list folded into this signature


@dataclass
class AppMixProfile:
    """Frozen per-application state the mix replay charges against."""

    name: str
    search_seconds: float  # measured wall clock (informational only)
    candidates: list[SlotCandidate]  # sorted by descending value
    module: object
    profile: object  # training ExecutionProfile
    coverage: object  # CoverageAnalysis

    @property
    def toolflow_seconds(self) -> float:
        return sum(c.toolflow_seconds for c in self.candidates)

    def wanted(self, capacity: int) -> list[SlotCandidate]:
        """The top-*capacity* configurations by benefit density.

        A machine with fewer slots than the application has candidates
        runs the overflow in software: those configurations are neither
        loaded nor counted toward the application's speedup.
        """
        return self.candidates[: max(0, capacity)]


def build_profile(
    name: str,
    module,
    train,
    coverage,
    icap: IcapModel | None = None,
) -> AppMixProfile:
    """Run the specialization process for one app and freeze the result.

    *module* / *train* / *coverage* are the app's compiled module,
    training :class:`~repro.vm.profiler.ExecutionProfile` and
    :class:`~repro.core.coverage.CoverageAnalysis` — exactly the triple
    :func:`repro.serve.worker.app_context` provides for registry apps.
    """
    icap = icap or IcapModel()
    machine = WoolcanoMachine()
    process = AsipSpecializationProcess(
        search=CandidateSearch(
            pruning=PruningFilter(), cost_model=machine.cost_model
        ),
        jobs=1,
    )
    report = process.run(module, train)
    by_signature: dict[int, SlotCandidate] = {}
    for ci in report.implementations:
        est = ci.estimate
        cand = est.candidate
        count = train.count_of(cand.function, cand.block)
        saved = max(0.0, est.cycles_saved) * count
        entry = by_signature.get(cand.signature)
        if entry is None:
            bitstream = ci.implementation.bitstream
            reload_seconds = (
                icap.setup_seconds
                + bitstream.size_bytes / icap.bytes_per_second
            )
            by_signature[cand.signature] = SlotCandidate(
                signature=cand.signature,
                candidate=cand,
                implementation=ci.implementation,
                bitstream=bitstream,
                toolflow_seconds=ci.times.total,
                reload_seconds=reload_seconds,
                saved_cycles=saved,
                value=0.0,
                estimates=[est],
            )
        else:
            entry.saved_cycles += saved
            entry.estimates.append(est)
    candidates = list(by_signature.values())
    for entry in candidates:
        entry.value = entry.saved_cycles / max(1e-12, entry.reload_seconds)
    candidates.sort(key=lambda c: (-c.value, c.signature))
    return AppMixProfile(
        name=name,
        search_seconds=report.search.search_seconds,
        candidates=candidates,
        module=module,
        profile=train,
        coverage=coverage,
    )


def build_app_profiles(
    apps: tuple[str, ...] = DEFAULT_APPS,
    icap: IcapModel | None = None,
) -> dict[str, AppMixProfile]:
    """Run the specialization process once per registry app."""
    icap = icap or IcapModel()
    tracer = get_tracer()
    profiles: dict[str, AppMixProfile] = {}
    for name in apps:
        from repro.serve.worker import app_context

        with tracer.span("mix.profile", app=name):
            ctx = app_context(name)
            profiles[name] = build_profile(
                name, ctx.module, ctx.train, ctx.coverage, icap
            )
    return profiles
