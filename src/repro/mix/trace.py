"""Deterministic workload-mix traces for the fleet simulator.

The paper's Table IV prices specialization for one application at a
time; a fleet sees a *mix* of applications whose arrivals contend for
the reconfigurable slot pool. A trace here is a seeded, weighted
sequence of application invocations: the draw uses the same
inverse-transform protocol as the serve-plane load generator
(:mod:`repro.serve.loadgen`), so identical (mix, seed, events) inputs
produce bit-identical traces on every machine — the property the
``regress-mix`` gate and the what-if replays rely on.

Mix *entropy* (normalised Shannon entropy of the weight distribution)
is the knob that turns a single-application workload (entropy 0, the
paper's regime) into a uniform fleet (entropy 1): the benchmark grid
sweeps it alongside slot capacity and eviction policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.rng import DeterministicRng

#: Named weight distributions over the embedded suite. ``uniform``
#: maximises mix entropy; ``skewed`` models one dominant tenant app with
#: a long tail (the common production shape).
MIX_PRESETS: dict[str, tuple[tuple[str, float], ...]] = {
    "uniform": (
        ("fft", 1.0),
        ("adpcm", 1.0),
        ("sor", 1.0),
        ("whetstone", 1.0),
    ),
    "skewed": (
        ("fft", 8.0),
        ("adpcm", 2.0),
        ("sor", 1.0),
        ("whetstone", 1.0),
    ),
}


@dataclass(frozen=True)
class MixEvent:
    """One application invocation in a trace."""

    seq: int
    app: str


@dataclass
class MixTraceConfig:
    """Everything needed to (re)build one trace bit-identically."""

    name: str
    mix: tuple[tuple[str, float], ...]
    events: int = 120
    seed: int = 0

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ValueError(f"events must be >= 1, got {self.events}")
        if not self.mix:
            raise ValueError("mix must name at least one application")
        for app, weight in self.mix:
            if weight <= 0.0:
                raise ValueError(f"app {app!r} has non-positive weight {weight}")


def preset_config(
    name: str, events: int = 120, seed: int = 0
) -> MixTraceConfig:
    """A :class:`MixTraceConfig` for one named preset."""
    if name not in MIX_PRESETS:
        raise ValueError(
            f"unknown mix preset {name!r} "
            f"(expected one of {', '.join(sorted(MIX_PRESETS))})"
        )
    return MixTraceConfig(name=name, mix=MIX_PRESETS[name], events=events, seed=seed)


def mix_entropy(mix: tuple[tuple[str, float], ...]) -> float:
    """Normalised Shannon entropy of the weight distribution in [0, 1]."""
    weights = [w for _, w in mix if w > 0.0]
    if len(weights) < 2:
        return 0.0
    total = sum(weights)
    h = -sum((w / total) * math.log2(w / total) for w in weights)
    return h / math.log2(len(weights))


def empirical_entropy(trace: list[MixEvent]) -> float:
    """Normalised Shannon entropy of the apps actually drawn."""
    counts: dict[str, int] = {}
    for event in trace:
        counts[event.app] = counts.get(event.app, 0) + 1
    return mix_entropy(tuple(counts.items()))


def build_trace(config: MixTraceConfig) -> list[MixEvent]:
    """Deterministic weighted app sequence for *config*."""
    rng = DeterministicRng(f"mix/{config.name}", config.seed)
    total = sum(weight for _, weight in config.mix)
    trace: list[MixEvent] = []
    for seq in range(config.events):
        draw = rng.random() * total
        cumulative = 0.0
        app = config.mix[-1][0]
        for name, weight in config.mix:
            cumulative += weight
            if draw < cumulative:
                app = name
                break
        trace.append(MixEvent(seq=seq, app=app))
    return trace
