"""End-to-end JIT ISE system (Figure 1).

:class:`JitIseSystem` drives one application through the complete flow:

1. compile source to bitcode (traditional-compiler half of Figure 1),
2. execute on the VM with profiling,
3. run the ASIP specialization process concurrently (modelled: the VM keeps
   executing at software speed until the bitstreams are ready),
4. **adapt**: reconfigure the fabric and patch the binary to use the new
   custom instructions,
5. re-execute and verify output equivalence; report speedups and overheads.

Also provides textual renderings of the paper's two structural figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.asip_sp import AsipSpecializationProcess, SpecializationReport
from repro.frontend.compiler import CompilationResult
from repro.ir.verifier import verify_module
from repro.obs import get_log, get_tracer
from repro.vm.interpreter import ExecutionResult, Interpreter
from repro.vm.jitruntime import JitRuntimeModel, RuntimeEstimate
from repro.vm.patcher import BinaryPatcher
from repro.woolcano.machine import AsipSpeedup, WoolcanoMachine


@dataclass
class AdaptationResult:
    """Outcome of the adaptation phase for one application."""

    compilation: CompilationResult
    baseline: ExecutionResult
    adapted: ExecutionResult
    runtime: RuntimeEstimate
    specialization: SpecializationReport
    speedup: AsipSpeedup
    output_equal: bool

    @property
    def asip_ratio(self) -> float:
        return self.speedup.ratio


@dataclass
class JitIseSystem:
    """A configured just-in-time instruction-set-extension system."""

    asip_sp: AsipSpecializationProcess = field(
        default_factory=AsipSpecializationProcess
    )
    machine: WoolcanoMachine = field(default_factory=WoolcanoMachine)
    runtime_model: JitRuntimeModel = field(default_factory=JitRuntimeModel)

    def run_application(
        self,
        compilation: CompilationResult,
        entry: str = "main",
        args: list | None = None,
        dataset_size: int = 0,
        dataset_seed: int = 1,
    ) -> AdaptationResult:
        module = compilation.module
        tracer = get_tracer()
        log = get_log()
        with tracer.span("pipeline.run", app=module.name, entry=entry):
            # VM execution with profiling (the "VM" path of Figure 1).
            with tracer.span("pipeline.baseline") as sp:
                baseline = Interpreter(
                    module, dataset_size=dataset_size, dataset_seed=dataset_seed
                ).run(entry, args)
                sp.set_attr("steps", baseline.steps)
                if log.enabled:
                    log.emit(
                        "pipeline.phase",
                        phase="baseline",
                        app=module.name,
                        steps=baseline.steps,
                    )
            runtime = self.runtime_model.estimate(module, baseline.profile)

            # ASIP specialization runs concurrently with execution.
            with tracer.span("pipeline.specialize"):
                report = self.asip_sp.run(module, baseline.profile)
                if log.enabled:
                    log.emit(
                        "pipeline.phase",
                        phase="specialize",
                        app=module.name,
                        candidates=report.candidate_count,
                        failed=len(report.failed),
                    )

            # Speedup accounting must read the *unpatched* module (the patched
            # one contains CUSTOM instructions the base cost model cannot
            # price).
            speedup = self.machine.speedup(
                module,
                baseline.profile,
                [ci.estimate for ci in report.implementations],
            )

            # Adaptation: patch the binary to use the custom instructions.
            with tracer.span("pipeline.adapt") as sp:
                patcher = BinaryPatcher()
                patcher.patch_module(
                    module,
                    [ci.estimate.candidate for ci in report.implementations],
                )
                sp.set_attr("custom_instructions", report.candidate_count)
                if log.enabled:
                    log.emit(
                        "pipeline.phase",
                        phase="adapt",
                        app=module.name,
                        custom_instructions=report.candidate_count,
                    )
            with tracer.span("pipeline.verify") as sp:
                verify_module(module)
                interp = Interpreter(
                    module, dataset_size=dataset_size, dataset_seed=dataset_seed
                )
                patcher.install(interp)
                adapted = interp.run(entry, args)
                output_equal = baseline.output == adapted.output
                sp.set_attr("output_equal", output_equal)
                if log.enabled:
                    log.emit(
                        "pipeline.phase",
                        level="info" if output_equal else "error",
                        phase="verify",
                        app=module.name,
                        output_equal=output_equal,
                    )
        return AdaptationResult(
            compilation=compilation,
            baseline=baseline,
            adapted=adapted,
            runtime=runtime,
            specialization=report,
            speedup=speedup,
            output_equal=baseline.output == adapted.output,
        )


FIGURE1 = """\
                 source code
                      |
        +-------------+--------------+
        |                            |
  Traditional Compiler (TC)     bitcode (IR)
  - static translation               |
  - tools: linker, assembler    Virtual Machine (VM)
        |                       - interpretation (eval)
   machine code                 - dynamic translation (JIT)
        |                       - info: runtime, profile
   CPU execution                - optimizations: hotspot, ...
                                     |
                         +-----------+-----------+
                         |                       |
                   CPU execution        ASIP Specialization
                (PowerPC-405 core)           Process
                         |                       |
                         +-----------------------+
                                     |
                    Woolcano architecture: PowerPC-405
                    + HW Custom Instructions (CI)
"""

FIGURE2 = """\
  bitcode (IR)
      |
  [ Candidate Search ]
      |  Pruner (@50pS3L)
      |  Identification (ISE algorithms: MAXMISO)
      |  Estimation (PivPav)
      |  Selection
      v
  [ PivPav Netlist Generation ]        (struct. VHDL)
      |  Generate VHDL
      |  Extract Netlists
      |  Create Project
      v
  [ PivPav Instruction Impl. ]
      |  Check Syntax
      |  Synthesis
      |  Translate
      |  Map & PAR
      v
  [ Partial Reconfiguration ] -> Bitstream
"""


def render_figure1() -> str:
    """Textual rendering of the paper's Figure 1 (tool-flow overview)."""
    return FIGURE1


def render_figure2() -> str:
    """Textual rendering of the paper's Figure 2 (ASIP-SP phases)."""
    return FIGURE2
