"""Break-even time models (Section V-D).

The break-even time is "the minimal time each application needs to execute
before the overheads caused by the ASIP-SP process are compensated".

Two models, as in the paper:

- **simple**: fixed input size, the application is executed repeatedly;
  break-even after ``overhead / saved_per_run`` runs.
- **live-aware** (the paper's "more sophisticated approach"): instead of
  re-running, the application processes *more input data*, so additional
  runtime is spent only in the **live** blocks (coverage class LIVE); the
  const and dead parts execute once. Savings therefore accrue at the rate
  at which the live code saves time, which is why the paper's Table IV
  values "do not scale linearly" with cache hits / CAD speedups.

Formally (live-aware): let the profiled run on the ASIP spend ``C_a``
seconds in const code and save at rate ``r`` per second of accelerated live
execution (``r = t_live_cpu / t_live_asip - 1``). After total ASIP
execution time ``t >= C_a``, accumulated savings are
``S(t) = (C_c - C_a) + r (t - C_a)``; break-even is ``S(t) = O``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.module import Module
from repro.profiling.coverage import BlockClass, CoverageAnalysis
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import ExecutionProfile, static_block_costs
from repro.pivpav.estimator import CandidateEstimate


@dataclass(frozen=True)
class BreakEvenAnalysis:
    """Break-even results for one application."""

    overhead_seconds: float
    simple_runs: float  # number of fixed-input runs until break-even
    simple_seconds: float  # execution time until break-even, simple model
    live_aware_seconds: float  # the paper's headline number
    live_savings_rate: float  # r in the model above
    const_cpu_seconds: float
    const_asip_seconds: float

    @property
    def reachable(self) -> bool:
        """False when the ASIP never amortizes (no live savings)."""
        return math.isfinite(self.live_aware_seconds)


@dataclass
class BreakEvenModel:
    """Computes break-even times from profile + coverage + candidate set."""

    cost_model: CostModel = PPC405_COST_MODEL

    def analyze(
        self,
        module: Module,
        profile: ExecutionProfile,
        coverage: CoverageAnalysis,
        estimates: list[CandidateEstimate],
        overhead_seconds: float,
    ) -> BreakEvenAnalysis:
        cm = self.cost_model
        costs = static_block_costs(module, cm)

        saved_per_block: dict[tuple[str, str], float] = {}
        for est in estimates:
            key = (est.candidate.function, est.candidate.block)
            saved_per_block[key] = saved_per_block.get(key, 0.0) + max(
                0.0, est.sw_cycles - est.hw_cycles
            )

        live_cpu = live_asip = 0.0
        const_cpu = const_asip = 0.0
        for key, prof in profile.blocks.items():
            cost = costs.get(key)
            if cost is None or prof.count == 0:
                continue
            cpu_cycles = prof.count * cost
            asip_cycles = prof.count * max(1.0, cost - saved_per_block.get(key, 0.0))
            cls = coverage.classes.get(key, BlockClass.CONST)
            if cls is BlockClass.LIVE:
                live_cpu += cpu_cycles
                live_asip += asip_cycles
            else:
                const_cpu += cpu_cycles
                const_asip += asip_cycles

        live_cpu_s = cm.seconds(live_cpu)
        live_asip_s = cm.seconds(live_asip)
        const_cpu_s = cm.seconds(const_cpu)
        const_asip_s = cm.seconds(const_asip)

        # Simple model: whole-run savings, repeated runs.
        total_cpu_s = live_cpu_s + const_cpu_s
        total_asip_s = live_asip_s + const_asip_s
        saved_per_run = total_cpu_s - total_asip_s
        if saved_per_run > 1e-12:
            runs = overhead_seconds / saved_per_run
            simple_seconds = runs * total_asip_s
        else:
            runs = math.inf
            simple_seconds = math.inf

        # Live-aware model.
        if live_asip_s > 1e-12 and live_cpu_s > live_asip_s:
            rate = live_cpu_s / live_asip_s - 1.0
            first_run_const_savings = const_cpu_s - const_asip_s
            remaining = overhead_seconds - first_run_const_savings
            if remaining <= 0:
                live_aware = const_asip_s  # amortized within the first run
            else:
                live_aware = const_asip_s + remaining / rate
        else:
            rate = 0.0
            live_aware = math.inf

        return BreakEvenAnalysis(
            overhead_seconds=overhead_seconds,
            simple_runs=runs,
            simple_seconds=simple_seconds,
            live_aware_seconds=live_aware,
            live_savings_rate=rate,
            const_cpu_seconds=const_cpu_s,
            const_asip_seconds=const_asip_s,
        )
