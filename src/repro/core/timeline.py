"""Wall-clock timeline of concurrent JIT specialization (extension).

The paper's break-even analysis treats the ASIP-SP as a lump cost. Figure 1
however shows the specialization running *concurrently* with the executing
application, with custom instructions activated as their bitstreams become
ready. This module simulates that timeline:

- at t=0 the application starts processing input on the VM;
- the candidate search completes within milliseconds; the CAD flow then
  implements candidates one after another (the paper's tool flow is
  single-threaded), each taking its virtual stage time;
- whenever a bitstream completes, the fabric is reconfigured and the
  corresponding custom instruction activates, raising the application's
  processing rate (live-code model);
- two accounting scenarios:

  * **dedicated host** — the CAD tools run on a separate workstation (the
    paper's setup). The application never slows down; break-even is when
    the accumulated *saved* execution time equals the total tool cost
    (the paper's amortization question, but with incremental activation).
  * **self-hosted** — CAD tools share the CPU with the application, which
    runs at a reduced share until specialization finishes. Break-even is
    the wall-clock crossover against a never-specialized baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.asip_sp import SpecializationReport
from repro.ir.module import Module
from repro.profiling.coverage import BlockClass, CoverageAnalysis
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import ExecutionProfile, static_block_costs


@dataclass(frozen=True)
class TimelineEvent:
    """One event on the specialization timeline."""

    time: float  # wall-clock seconds since application start
    kind: str  # "search" | "bitstream" | "activate" | "break_even"
    detail: str


@dataclass
class TimelineResult:
    """Outcome of a timeline simulation."""

    events: list[TimelineEvent]
    specialization_done: float  # when the last candidate activated
    final_rate: float  # steady-state work rate relative to baseline (>1)
    # Dedicated-host accounting: when do accumulated savings repay the cost?
    dedicated_break_even: float  # math.inf if never
    # Self-hosted accounting: wall-clock crossover vs. never specializing.
    self_hosted_break_even: float  # math.inf if never

    def event_log(self) -> str:
        lines = []
        for ev in self.events:
            lines.append(f"t={ev.time:10.2f}s  {ev.kind:10s}  {ev.detail}")
        return "\n".join(lines)


@dataclass
class TimelineSimulator:
    """Simulates the concurrent JIT specialization timeline."""

    cost_model: CostModel = PPC405_COST_MODEL
    # CPU share left to the application while it hosts the CAD tools.
    self_hosted_app_share: float = 0.5

    def simulate(
        self,
        module: Module,
        profile: ExecutionProfile,
        coverage: CoverageAnalysis,
        report: SpecializationReport,
    ) -> TimelineResult:
        cm = self.cost_model
        costs = static_block_costs(module, cm)

        # Live-code execution time of one profiled workload unit, per
        # incremental candidate set (candidates activate in CAD order).
        live_base = 0.0
        for key, prof in profile.blocks.items():
            if coverage.classes.get(key) is BlockClass.LIVE and key in costs:
                live_base += prof.count * costs[key]
        live_base_s = cm.seconds(live_base)

        events: list[TimelineEvent] = []
        search_s = report.search.search_seconds
        events.append(
            TimelineEvent(
                search_s,
                "search",
                f"candidate search done: {report.candidate_count} candidates",
            )
        )

        # Rate factor after activating the first k candidates: baseline
        # live time divided by accelerated live time.
        saved_per_block: dict[tuple[str, str], float] = {}
        rate_after: list[float] = []
        ready_at: list[float] = []
        t = search_s
        for ci in report.implementations:
            t += ci.times.total
            est = ci.estimate
            key = (est.candidate.function, est.candidate.block)
            if coverage.classes.get(key) is BlockClass.LIVE:
                saved_per_block[key] = saved_per_block.get(key, 0.0) + max(
                    0.0, est.cycles_saved
                )
            live_asip = 0.0
            for bkey, prof in profile.blocks.items():
                if coverage.classes.get(bkey) is not BlockClass.LIVE:
                    continue
                cost = costs.get(bkey)
                if cost is None:
                    continue
                live_asip += prof.count * max(
                    1.0, cost - saved_per_block.get(bkey, 0.0)
                )
            live_asip_s = cm.seconds(live_asip)
            rate = live_base_s / live_asip_s if live_asip_s > 0 else 1.0
            ready_at.append(t)
            rate_after.append(rate)
            events.append(
                TimelineEvent(
                    t,
                    "bitstream",
                    f"candidate #{est.candidate.index} "
                    f"({est.candidate.function}/{est.candidate.block}) ready",
                )
            )
            events.append(
                TimelineEvent(
                    t, "activate", f"live-code rate now {rate:.3f}x baseline"
                )
            )

        final_rate = rate_after[-1] if rate_after else 1.0
        done = ready_at[-1] if ready_at else search_s

        dedicated = self._dedicated_break_even(
            ready_at, rate_after, report, events
        )
        self_hosted = self._self_hosted_break_even(
            ready_at, rate_after, done, events
        )
        return TimelineResult(
            events=sorted(events, key=lambda e: (e.time, e.kind)),
            specialization_done=done,
            final_rate=final_rate,
            dedicated_break_even=dedicated,
            self_hosted_break_even=self_hosted,
        )

    # -- accounting ------------------------------------------------------------
    @staticmethod
    def _segments(ready_at: list[float], rate_after: list[float]):
        """Piecewise-constant rate segments: (start, end, rate)."""
        segments = []
        prev_t = 0.0
        prev_rate = 1.0
        for t, rate in zip(ready_at, rate_after):
            segments.append((prev_t, t, prev_rate))
            prev_t, prev_rate = t, rate
        segments.append((prev_t, math.inf, prev_rate))
        return segments

    def _dedicated_break_even(
        self,
        ready_at: list[float],
        rate_after: list[float],
        report: SpecializationReport,
        events: list[TimelineEvent],
    ) -> float:
        """Savings integrate as (1 - 1/rate) per wall-clock second."""
        cost = report.total_overhead_seconds
        saved = 0.0
        for start, end, rate in self._segments(ready_at, rate_after):
            save_rate = 1.0 - 1.0 / rate if rate > 1.0 else 0.0
            if save_rate <= 0.0:
                continue
            span = end - start
            if math.isinf(span):
                remaining = cost - saved
                t_be = start + remaining / save_rate
                events.append(
                    TimelineEvent(
                        t_be, "break_even", "tool cost amortized (dedicated host)"
                    )
                )
                return t_be
            segment_saving = save_rate * span
            if saved + segment_saving >= cost:
                t_be = start + (cost - saved) / save_rate
                events.append(
                    TimelineEvent(
                        t_be, "break_even", "tool cost amortized (dedicated host)"
                    )
                )
                return t_be
            saved += segment_saving
        return math.inf

    def _self_hosted_break_even(
        self,
        ready_at: list[float],
        rate_after: list[float],
        done: float,
        events: list[TimelineEvent],
    ) -> float:
        """Crossover of cumulative work vs. a never-specialized baseline.

        While the CAD tools run (t < done), the application only gets
        ``self_hosted_app_share`` of the CPU; afterwards it runs at the full
        accelerated rate. Baseline runs at rate 1 throughout.
        """
        share = self.self_hosted_app_share
        work = 0.0
        deficit_time = None
        for start, end, rate in self._segments(ready_at, rate_after):
            effective = rate * (share if start < done else 1.0)
            span = (min(end, done) if start < done else end) - start
            # split segments at `done` boundary
            boundaries = sorted({start, min(end, done), end})
            for s, e in zip(boundaries, boundaries[1:]):
                if e <= s:
                    continue
                eff = rate * (share if s < done else 1.0)
                if math.isinf(e):
                    if eff <= 1.0:
                        return math.inf
                    t_be = s + (s - work) / (eff - 1.0)
                    events.append(
                        TimelineEvent(
                            t_be, "break_even", "caught up with baseline (self-hosted)"
                        )
                    )
                    return t_be
                # baseline work at time e is e; ours is work + eff*(e-s)
                if work + eff * (e - s) >= e and eff > 1.0:
                    t_be = (work - s * eff) / (1.0 - eff)
                    if s <= t_be <= e:
                        events.append(
                            TimelineEvent(
                                t_be,
                                "break_even",
                                "caught up with baseline (self-hosted)",
                            )
                        )
                        return t_be
                work += eff * (e - s)
        return math.inf
