"""Cache x faster-CAD extrapolation (Section VI-C, Table IV).

For each (cache hit rate, CAD speedup) pair, recompute the average
break-even time of the embedded applications: the cache removes whole
candidate generation times (randomly selected, averaged over trials), the
faster CAD flow scales the remaining overhead linearly, and the break-even
model then maps the reduced overhead to a (non-linear) break-even time via
the block-frequency information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.breakeven import BreakEvenModel
from repro.core.cache import CacheSimulation


@dataclass
class AppBreakEvenInputs:
    """Per-application inputs needed to recompute break-even times."""

    name: str
    module: object  # repro.ir.Module
    profile: object  # ExecutionProfile
    coverage: object  # CoverageAnalysis
    estimates: list  # list[CandidateEstimate]
    report: object  # SpecializationReport
    search_seconds: float
    reconfig_seconds: float


@dataclass
class ExtrapolationGrid:
    """Table IV: rows = cache hit rate, cols = CAD speedup."""

    cache_hit_rates: list[int]
    cad_speedups: list[int]
    # seconds[(hit, speedup)] -> average break-even seconds
    seconds: dict[tuple[int, int], float] = field(default_factory=dict)

    def at(self, hit_pct: int, speedup_pct: int) -> float:
        return self.seconds[(hit_pct, speedup_pct)]


DEFAULT_HIT_RATES = [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]
DEFAULT_CAD_SPEEDUPS = [0, 30, 60, 90]


def extrapolate_break_even(
    apps: list[AppBreakEvenInputs],
    hit_rates: list[int] | None = None,
    cad_speedups: list[int] | None = None,
    model: BreakEvenModel | None = None,
    trials: int = 16,
) -> ExtrapolationGrid:
    """Compute the Table IV grid for a set of applications."""
    hit_rates = hit_rates if hit_rates is not None else DEFAULT_HIT_RATES
    cad_speedups = (
        cad_speedups if cad_speedups is not None else DEFAULT_CAD_SPEEDUPS
    )
    model = model or BreakEvenModel()
    sim = CacheSimulation()

    grid = ExtrapolationGrid(cache_hit_rates=hit_rates, cad_speedups=cad_speedups)
    for hit in hit_rates:
        for speedup in cad_speedups:
            factor = 1.0 - speedup / 100.0
            values = []
            for app in apps:
                toolflow = sim.average_effective_seconds(app.report, hit, trials)
                overhead = (
                    app.search_seconds
                    + toolflow * factor
                    + app.reconfig_seconds
                )
                analysis = model.analyze(
                    app.module,
                    app.profile,
                    app.coverage,
                    app.estimates,
                    overhead,
                )
                values.append(analysis.live_aware_seconds)
            finite = [v for v in values if math.isfinite(v)]
            grid.seconds[(hit, speedup)] = (
                sum(finite) / len(finite) if finite else math.inf
            )
    return grid
