"""The paper's primary contribution: the just-in-time ASIP specialization
process and its cost/benefit analysis.

- :mod:`repro.core.asip_sp` — the three-phase ASIP-SP of Figure 2
  (candidate search, netlist generation, instruction implementation),
  producing per-candidate bitstreams and aggregate runtime overheads;
- :mod:`repro.core.pipeline` — the end-to-end JIT tool flow of Figure 1
  (VM execution, concurrent specialization, adaptation via binary patching);
- :mod:`repro.core.breakeven` — break-even time models (Section V-D);
- :mod:`repro.core.cache` — partial-bitstream caching (Section VI-A);
- :mod:`repro.core.extrapolate` — cache x faster-CAD extrapolation
  (Section VI-C, Table IV).
"""

from repro.core.asip_sp import (
    AsipSpecializationProcess,
    CandidateImplementation,
    SpecializationReport,
)
from repro.core.breakeven import BreakEvenAnalysis, BreakEvenModel
from repro.core.cache import BitstreamCache, CacheSimulation
from repro.core.extrapolate import ExtrapolationGrid, extrapolate_break_even
from repro.core.pipeline import JitIseSystem, AdaptationResult, render_figure1, render_figure2
from repro.core.timeline import TimelineEvent, TimelineResult, TimelineSimulator

__all__ = [
    "AsipSpecializationProcess",
    "CandidateImplementation",
    "SpecializationReport",
    "BreakEvenAnalysis",
    "BreakEvenModel",
    "BitstreamCache",
    "CacheSimulation",
    "ExtrapolationGrid",
    "extrapolate_break_even",
    "JitIseSystem",
    "AdaptationResult",
    "render_figure1",
    "render_figure2",
    "TimelineEvent",
    "TimelineResult",
    "TimelineSimulator",
]
