"""The ASIP specialization process (Figure 2).

Orchestrates the three phases for one application:

1. **Candidate Search** (:class:`repro.ise.CandidateSearch`): pruning,
   identification, estimation, selection — measured wall clock, reported
   in milliseconds;
2. **Netlist Generation** + 3. **Instruction Implementation**
   (:class:`repro.fpga.CadToolFlow`): per selected candidate, produce the
   partial bitstream — virtual wall clock, reported per stage.

Structurally identical candidates (same signature) are implemented once and
shared; the paper's per-candidate accounting still charges each candidate,
matching its assumption that every candidate runs through the CAD flow
(the bitstream cache of Section VI-A is modelled separately and *does*
deduplicate charges).

Two optional accelerators, both default-off so the paper-faithful serial
behaviour is unchanged:

- ``jobs > 1`` fans the CAD implementation of unique candidates across a
  thread pool (the assembly loop stays serial in ``custom_id`` order, so
  reports, spans-per-stage counts, and ICAP events are identical to a
  serial run);
- ``bitstream_cache`` (a :class:`repro.core.cache.PersistentBitstreamCache`)
  is consulted before the tool flow and populated after it, turning
  Section VI-A's hypothetical cache into a measured cross-run one.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fpga.placer import PlacementError
from repro.fpga.router import RoutingError
from repro.fpga.toolflow import CadToolFlow, ImplementationResult
from repro.fpga.timingmodel import StageTimes
from repro.ir.module import Module
from repro.ise.selection import CandidateSearch, CandidateSearchResult
from repro.obs import get_log, get_metrics, get_tracer
from repro.pivpav.estimator import CandidateEstimate
from repro.vm.profiler import ExecutionProfile
from repro.woolcano.reconfig import IcapModel, ReconfigurationEvent

if TYPE_CHECKING:  # pragma: no cover - cache imports this module
    from repro.core.cache import PersistentBitstreamCache


@dataclass
class CandidateImplementation:
    """One candidate with its hardware implementation and accounting."""

    estimate: CandidateEstimate
    implementation: ImplementationResult
    shared_with_signature: bool  # True if reused a structurally equal impl.
    from_cache: bool = False  # True if served by the persistent cache.

    @property
    def times(self) -> StageTimes:
        return self.implementation.times


@dataclass
class SpecializationReport:
    """Aggregate outcome of the ASIP-SP for one application."""

    search: CandidateSearchResult
    implementations: list[CandidateImplementation]
    reconfigurations: list[ReconfigurationEvent]
    # Candidates whose CAD implementation failed (e.g. too large for the
    # partial region): (estimate, error message). Their software fallback
    # keeps the application correct; they contribute no overhead/savings.
    failed: list[tuple[CandidateEstimate, str]] = field(default_factory=list)

    # -- aggregate overheads (Table II columns) ------------------------------
    @property
    def candidate_count(self) -> int:
        return len(self.implementations)

    @property
    def const_seconds(self) -> float:
        """Sum of constant stages over all candidates ("const" column)."""
        return sum(ci.times.constant_sum for ci in self.implementations)

    @property
    def map_seconds(self) -> float:
        return sum(ci.times.map for ci in self.implementations)

    @property
    def par_seconds(self) -> float:
        return sum(ci.times.par for ci in self.implementations)

    @property
    def toolflow_seconds(self) -> float:
        """Total hardware-generation overhead ("sum" column)."""
        return self.const_seconds + self.map_seconds + self.par_seconds

    @property
    def reconfiguration_seconds(self) -> float:
        return sum(ev.seconds for ev in self.reconfigurations)

    @property
    def total_overhead_seconds(self) -> float:
        """Everything between 'program starts' and 'ASIP ready'."""
        return (
            self.search.search_seconds
            + self.toolflow_seconds
            + self.reconfiguration_seconds
        )


@dataclass
class AsipSpecializationProcess:
    """Configured ASIP-SP pipeline."""

    search: CandidateSearch = field(default_factory=CandidateSearch)
    toolflow: CadToolFlow = field(default_factory=CadToolFlow)
    icap: IcapModel = field(default_factory=IcapModel)
    bitstream_cache: "PersistentBitstreamCache | None" = None
    jobs: int = 1

    def _cache_key(self, est: CandidateEstimate) -> str:
        assert self.bitstream_cache is not None
        return self.bitstream_cache.key_for(est.candidate, self.toolflow.device)

    def _prefetch(
        self, selected: list[CandidateEstimate], sp_run
    ) -> dict[int, "ImplementationResult | Exception"]:
        """Implement unique first-occurrence candidates on a thread pool.

        Returns ``signature -> result-or-CAD-error``. Candidates already
        served by the persistent cache are skipped (via the *non-counting*
        :meth:`~repro.core.cache.PersistentBitstreamCache.contains` probe,
        so hit/miss accounting stays identical to a serial run). A failing
        candidate's exception is recorded once and consumed by its first
        occurrence in the assembly loop; later occurrences of the same
        failing signature re-run the flow inline, exactly as serial does.
        """
        cache = self.bitstream_cache
        pending: dict[int, CandidateEstimate] = {}
        for est in selected:
            sig = est.candidate.signature
            if sig in pending:
                continue
            if cache is not None and cache.contains(self._cache_key(est)):
                continue
            pending[sig] = est
        if not pending:
            return {}
        tracer = get_tracer()

        def work(est: CandidateEstimate):
            # Parent this worker thread's cad.* spans under asip_sp.run.
            with tracer.child_context(sp_run):
                try:
                    return self.toolflow.implement(est.candidate)
                except (PlacementError, RoutingError) as exc:
                    return exc

        results: dict[int, ImplementationResult | Exception] = {}
        with ThreadPoolExecutor(
            max_workers=min(self.jobs, len(pending))
        ) as pool:
            futures = {
                sig: pool.submit(work, est) for sig, est in pending.items()
            }
            for sig, fut in futures.items():
                results[sig] = fut.result()
        return results

    def run(self, module: Module, profile: ExecutionProfile) -> SpecializationReport:
        tracer = get_tracer()
        log = get_log()
        cache = self.bitstream_cache
        with tracer.span("asip_sp.run", module=module.name) as sp_run:
            search_result = self.search.run(module, profile)

            prebuilt: dict[int, ImplementationResult | Exception] = {}
            if self.jobs > 1 and len(search_result.selected) > 1:
                prebuilt = self._prefetch(search_result.selected, sp_run)

            implementations: list[CandidateImplementation] = []
            reconfigurations: list[ReconfigurationEvent] = []
            failed: list[tuple[CandidateEstimate, str]] = []
            by_signature: dict[int, ImplementationResult] = {}
            cache_hits = 0
            for custom_id, est in enumerate(search_result.selected):
                sig = est.candidate.signature
                shared = sig in by_signature
                with tracer.span(
                    "asip_sp.candidate",
                    candidate=est.candidate.key,
                    custom_id=custom_id,
                    size=est.candidate.size,
                    shared=shared,
                ) as sp_cand:
                    cached = False
                    if shared:
                        impl = by_signature[sig]
                    else:
                        impl = None
                        if cache is not None:
                            impl = cache.get(self._cache_key(est), est.candidate)
                            cached = impl is not None
                        if impl is None:
                            built = prebuilt.pop(sig, None)
                            if isinstance(built, Exception):
                                built_exc: Exception | None = built
                            else:
                                built_exc = None
                                impl = built
                        else:
                            built_exc = None
                        if impl is None and built_exc is None:
                            try:
                                impl = self.toolflow.implement(est.candidate)
                            except (PlacementError, RoutingError) as exc:
                                built_exc = exc
                        if built_exc is not None:
                            # CAD failure: software fallback keeps the
                            # application correct.
                            failed.append((est, str(built_exc)))
                            sp_cand.set_attr("failed", True)
                            if log.enabled:
                                log.emit(
                                    "asip.candidate",
                                    level="warning",
                                    decision="failed",
                                    candidate=est.candidate.key,
                                    custom_id=custom_id,
                                    error=str(built_exc),
                                )
                            continue
                        if cache is not None and not cached:
                            cache.put(self._cache_key(est), impl)
                        if cached:
                            cache_hits += 1
                        by_signature[sig] = impl
                    sp_cand.set_attrs(
                        failed=False, cached=cached,
                        virtual_seconds=impl.times.total,
                    )
                    if log.enabled:
                        log.emit(
                            "asip.candidate",
                            decision="implemented",
                            candidate=est.candidate.key,
                            custom_id=custom_id,
                            shared=shared,
                            cached=cached,
                            virtual_seconds=round(impl.times.total, 6),
                        )
                    implementations.append(
                        CandidateImplementation(
                            estimate=est,
                            implementation=impl,
                            shared_with_signature=shared,
                            from_cache=cached,
                        )
                    )
                    reconfigurations.append(
                        self.icap.reconfigure(custom_id, impl.bitstream)
                    )
            sp_run.set_attrs(
                selected=len(search_result.selected),
                implemented=len(implementations),
                failed=len(failed),
                cache_hits=cache_hits,
            )
            registry = get_metrics()
            if registry.enabled:
                registry.counter("asip.candidates_selected").inc(
                    len(search_result.selected)
                )
                registry.counter("asip.candidates_implemented").inc(
                    len(implementations)
                )
                registry.counter("asip.candidates_failed").inc(len(failed))
                hist = registry.histogram("asip.toolflow_seconds")
                for ci in implementations:
                    hist.observe(ci.times.total)
        return SpecializationReport(
            search=search_result,
            implementations=implementations,
            reconfigurations=reconfigurations,
            failed=failed,
        )
