"""The ASIP specialization process (Figure 2).

Orchestrates the three phases for one application:

1. **Candidate Search** (:class:`repro.ise.CandidateSearch`): pruning,
   identification, estimation, selection — measured wall clock, reported
   in milliseconds;
2. **Netlist Generation** + 3. **Instruction Implementation**
   (:class:`repro.fpga.CadToolFlow`): per selected candidate, produce the
   partial bitstream — virtual wall clock, reported per stage.

Structurally identical candidates (same signature) are implemented once and
shared; the paper's per-candidate accounting still charges each candidate,
matching its assumption that every candidate runs through the CAD flow
(the bitstream cache of Section VI-A is modelled separately and *does*
deduplicate charges).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.placer import PlacementError
from repro.fpga.router import RoutingError
from repro.fpga.toolflow import CadToolFlow, ImplementationResult
from repro.fpga.timingmodel import StageTimes
from repro.ir.module import Module
from repro.ise.selection import CandidateSearch, CandidateSearchResult
from repro.obs import get_log, get_metrics, get_tracer
from repro.pivpav.estimator import CandidateEstimate
from repro.vm.profiler import ExecutionProfile
from repro.woolcano.reconfig import IcapModel, ReconfigurationEvent


@dataclass
class CandidateImplementation:
    """One candidate with its hardware implementation and accounting."""

    estimate: CandidateEstimate
    implementation: ImplementationResult
    shared_with_signature: bool  # True if reused a structurally equal impl.

    @property
    def times(self) -> StageTimes:
        return self.implementation.times


@dataclass
class SpecializationReport:
    """Aggregate outcome of the ASIP-SP for one application."""

    search: CandidateSearchResult
    implementations: list[CandidateImplementation]
    reconfigurations: list[ReconfigurationEvent]
    # Candidates whose CAD implementation failed (e.g. too large for the
    # partial region): (estimate, error message). Their software fallback
    # keeps the application correct; they contribute no overhead/savings.
    failed: list[tuple[CandidateEstimate, str]] = field(default_factory=list)

    # -- aggregate overheads (Table II columns) ------------------------------
    @property
    def candidate_count(self) -> int:
        return len(self.implementations)

    @property
    def const_seconds(self) -> float:
        """Sum of constant stages over all candidates ("const" column)."""
        return sum(ci.times.constant_sum for ci in self.implementations)

    @property
    def map_seconds(self) -> float:
        return sum(ci.times.map for ci in self.implementations)

    @property
    def par_seconds(self) -> float:
        return sum(ci.times.par for ci in self.implementations)

    @property
    def toolflow_seconds(self) -> float:
        """Total hardware-generation overhead ("sum" column)."""
        return self.const_seconds + self.map_seconds + self.par_seconds

    @property
    def reconfiguration_seconds(self) -> float:
        return sum(ev.seconds for ev in self.reconfigurations)

    @property
    def total_overhead_seconds(self) -> float:
        """Everything between 'program starts' and 'ASIP ready'."""
        return (
            self.search.search_seconds
            + self.toolflow_seconds
            + self.reconfiguration_seconds
        )


@dataclass
class AsipSpecializationProcess:
    """Configured ASIP-SP pipeline."""

    search: CandidateSearch = field(default_factory=CandidateSearch)
    toolflow: CadToolFlow = field(default_factory=CadToolFlow)
    icap: IcapModel = field(default_factory=IcapModel)

    def run(self, module: Module, profile: ExecutionProfile) -> SpecializationReport:
        tracer = get_tracer()
        log = get_log()
        with tracer.span("asip_sp.run", module=module.name) as sp_run:
            search_result = self.search.run(module, profile)

            implementations: list[CandidateImplementation] = []
            reconfigurations: list[ReconfigurationEvent] = []
            failed: list[tuple[CandidateEstimate, str]] = []
            by_signature: dict[int, ImplementationResult] = {}
            for custom_id, est in enumerate(search_result.selected):
                sig = est.candidate.signature
                shared = sig in by_signature
                with tracer.span(
                    "asip_sp.candidate",
                    candidate=est.candidate.key,
                    custom_id=custom_id,
                    size=est.candidate.size,
                    shared=shared,
                ) as sp_cand:
                    if shared:
                        impl = by_signature[sig]
                    else:
                        try:
                            impl = self.toolflow.implement(est.candidate)
                        except (PlacementError, RoutingError) as exc:
                            # CAD failure: software fallback keeps the
                            # application correct.
                            failed.append((est, str(exc)))
                            sp_cand.set_attr("failed", True)
                            if log.enabled:
                                log.emit(
                                    "asip.candidate",
                                    level="warning",
                                    decision="failed",
                                    candidate=est.candidate.key,
                                    custom_id=custom_id,
                                    error=str(exc),
                                )
                            continue
                        by_signature[sig] = impl
                    sp_cand.set_attrs(
                        failed=False, virtual_seconds=impl.times.total
                    )
                    if log.enabled:
                        log.emit(
                            "asip.candidate",
                            decision="implemented",
                            candidate=est.candidate.key,
                            custom_id=custom_id,
                            shared=shared,
                            virtual_seconds=round(impl.times.total, 6),
                        )
                    implementations.append(
                        CandidateImplementation(
                            estimate=est,
                            implementation=impl,
                            shared_with_signature=shared,
                        )
                    )
                    reconfigurations.append(
                        self.icap.reconfigure(custom_id, impl.bitstream)
                    )
            sp_run.set_attrs(
                selected=len(search_result.selected),
                implemented=len(implementations),
                failed=len(failed),
            )
            registry = get_metrics()
            if registry.enabled:
                registry.counter("asip.candidates_selected").inc(
                    len(search_result.selected)
                )
                registry.counter("asip.candidates_implemented").inc(
                    len(implementations)
                )
                registry.counter("asip.candidates_failed").inc(len(failed))
                hist = registry.histogram("asip.toolflow_seconds")
                for ci in implementations:
                    hist.observe(ci.times.total)
        return SpecializationReport(
            search=search_result,
            implementations=implementations,
            reconfigurations=reconfigurations,
            failed=failed,
        )
