"""Partial-bitstream caching (Section VI-A).

"Much like virtual machines cache the binary code that was generated
on-the-fly ... we can cache the generated partial bitstreams for each
custom instruction. To this end, each candidate needs to have a unique
identifier that is used as a key for reading and writing the cache. We can,
for example, compute a signature of the LLVM bitcode that describes the
candidate."

Three layers model that idea at increasing levels of realism:

- :class:`BitstreamCache` — the in-memory cache (keyed by
  :attr:`repro.ise.Candidate.signature`) with hit/miss accounting;
- :class:`CacheSimulation` — the paper's evaluation protocol: "for
  simulating a cache with 20 % hit rate, we have populated the cache with
  20 % of the required bitstreams for a particular application, whereas
  the selection which bitstreams are stored in the cache is random.
  Whenever there is a hit ... the whole runtime associated with the
  generation of the candidate is subtracted from the total runtime.";
- :class:`PersistentBitstreamCache` — a durable, content-addressed store
  under ``.repro-cache/`` that the experiment runner consults *before*
  invoking the CAD flow, so repeat runs genuinely skip implemented
  candidates and Table IV's hypothetical hit rates become measured ones.
  Keys combine the candidate's structural signature, the target device,
  and the timing-model version
  (:data:`repro.fpga.timingmodel.TIMING_MODEL_VERSION`); payloads are the
  full :class:`repro.fpga.toolflow.ImplementationResult` (candidate
  detached), written atomically next to a JSON index.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.asip_sp import SpecializationReport
from repro.fpga.bitgen import PartialBitstream
from repro.fpga.timingmodel import TIMING_MODEL_VERSION
from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle (fpga -> obs -> core)
    from repro.fpga.device import FpgaDevice
    from repro.fpga.toolflow import ImplementationResult
    from repro.ise.candidate import Candidate


@dataclass
class BitstreamCache:
    """Signature-keyed bitstream store with hit/miss accounting."""

    _store: dict[int, PartialBitstream] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, signature: int) -> PartialBitstream | None:
        bs = self._store.get(signature)
        if bs is None:
            self.misses += 1
        else:
            self.hits += 1
        return bs

    def put(self, signature: int, bitstream: PartialBitstream) -> None:
        self._store[signature] = bitstream

    def __contains__(self, signature: int) -> bool:
        return signature in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CacheSimulation:
    """Monte-Carlo-free cache-hit simulation per the paper's protocol."""

    seed: int = 0

    def effective_toolflow_seconds(
        self,
        report: SpecializationReport,
        hit_rate_pct: float,
        trial: int = 0,
    ) -> float:
        """Tool-flow overhead with a ``hit_rate_pct``-populated cache.

        The populated subset is chosen deterministically from (seed, trial);
        averaging over trials reproduces the paper's random-selection
        protocol without nondeterminism.
        """
        if not 0.0 <= hit_rate_pct <= 100.0:
            raise ValueError("hit rate must be within [0, 100] percent")
        impls = report.implementations
        n = len(impls)
        if n == 0:
            return 0.0
        n_cached = int(round(n * hit_rate_pct / 100.0))
        rng = DeterministicRng(f"cache-sim/{self.seed}/{trial}/{n}")
        order = list(range(n))
        rng.shuffle(order)
        cached = set(order[:n_cached])
        total = 0.0
        for i, ci in enumerate(impls):
            if i in cached:
                continue  # hit: whole generation time subtracted
            total += ci.times.total
        return total

    def average_effective_seconds(
        self, report: SpecializationReport, hit_rate_pct: float, trials: int = 16
    ) -> float:
        return sum(
            self.effective_toolflow_seconds(report, hit_rate_pct, t)
            for t in range(trials)
        ) / max(1, trials)


# -- persistent cross-run store ------------------------------------------------

#: Schema tag baked into every cache key: bumping it orphans all prior
#: entries, which is the correct behaviour whenever the pickled payload
#: layout changes incompatibly.
CACHE_SCHEMA = "repro-bitstream-cache/1"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class PersistentBitstreamCache:
    """Durable content-addressed store of CAD tool-flow results.

    Layout under :attr:`root`::

        .repro-cache/
          index.json            # key -> {entity, size_bytes, seconds, stored_at}
          objects/<key>.pkl     # pickled ImplementationResult, candidate=None

    Keys are sha256 hex digests over ``(schema, device, timing-model
    version, candidate signature)`` — see :meth:`key_for` — so a cached
    entry is only ever returned for the identical candidate structure
    implemented for the identical device under the identical timing
    calibration (Section VI-A's "unique identifier ... used as a key").

    Writes are atomic (temp file + :func:`os.replace`), and any corrupted
    index entry or object file is treated as a miss and dropped, so a
    killed run can never poison later ones. Hit/miss/store/eviction counts
    feed both :meth:`stats` and the ``cache.bitstream.*`` metrics counters.
    """

    root: Path = Path(DEFAULT_CACHE_DIR)
    max_entries: int | None = None
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- key composition -------------------------------------------------------

    @staticmethod
    def key_for(
        candidate: "Candidate",
        device: "FpgaDevice",
        timing_version: int = TIMING_MODEL_VERSION,
    ) -> str:
        """Content-addressed key for one (candidate, device, model) triple."""
        material = (
            f"{CACHE_SCHEMA}/{device.name}/tm{timing_version}"
            f"/{candidate.signature:016x}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # -- paths -----------------------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / f"{key}.pkl"

    # -- index I/O (tolerant reads, atomic writes) -----------------------------

    def _load_index(self) -> dict[str, dict]:
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        entries = raw.get("entries") if isinstance(raw, dict) else None
        if not isinstance(entries, dict):
            return {}
        # Drop structurally corrupt entries rather than failing the run.
        return {
            k: v
            for k, v in entries.items()
            if isinstance(k, str) and isinstance(v, dict)
        }

    def _write_index(self, entries: dict[str, dict]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"schema": CACHE_SCHEMA, "entries": entries},
            indent=2,
            sort_keys=True,
        )
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp, self.index_path)

    # -- core operations -------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Non-counting presence probe (used by the parallel prefetcher)."""
        return key in self._load_index() and self._object_path(key).exists()

    def get(
        self, key: str, candidate: "Candidate | None" = None
    ) -> "ImplementationResult | None":
        """Counting lookup; reattaches *candidate* to the stored result."""
        entries = self._load_index()
        entry = entries.get(key)
        impl = None
        if entry is not None:
            try:
                with self._object_path(key).open("rb") as fh:
                    impl = pickle.load(fh)
            except (OSError, pickle.PickleError, ValueError, EOFError,
                    AttributeError, ImportError):
                # Corrupted or unreadable object: demote to a miss and
                # drop the index entry so we stop retrying it.
                impl = None
                entries.pop(key, None)
                try:
                    self._write_index(entries)
                    self._object_path(key).unlink(missing_ok=True)
                except OSError:
                    pass
        if impl is None:
            self.misses += 1
            self._count("cache.bitstream.misses")
            return None
        self.hits += 1
        self._count("cache.bitstream.hits")
        if candidate is not None:
            impl = replace(impl, candidate=candidate)
        return impl

    def put(self, key: str, impl: "ImplementationResult") -> None:
        """Store one implementation result atomically, evicting if needed."""
        self.root.mkdir(parents=True, exist_ok=True)
        objects = self.root / "objects"
        objects.mkdir(parents=True, exist_ok=True)
        # The candidate is reattached on get(); detaching it keeps the
        # payload independent of analysis-session object graphs.
        payload = pickle.dumps(replace(impl, candidate=None))
        tmp = objects / f"{key}.pkl.tmp"
        tmp.write_bytes(payload)
        os.replace(tmp, self._object_path(key))

        entries = self._load_index()
        entries[key] = {
            "entity": impl.entity_name,
            "size_bytes": impl.bitstream.size_bytes,
            "toolflow_seconds": round(impl.times.total, 6),
            "stored_at": time.time(),
        }
        if self.max_entries is not None and self.max_entries > 0:
            while len(entries) > self.max_entries:
                oldest = min(
                    entries, key=lambda k: entries[k].get("stored_at", 0.0)
                )
                entries.pop(oldest)
                self._object_path(oldest).unlink(missing_ok=True)
                self.evictions += 1
                self._count("cache.bitstream.evictions")
        self._write_index(entries)
        self.stores += 1
        self._count("cache.bitstream.stores")

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        entries = self._load_index()
        dropped = len(entries)
        for key in entries:
            self._object_path(key).unlink(missing_ok=True)
        if self.index_path.exists():
            self._write_index({})
        return dropped

    # -- accounting ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._load_index())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-safe summary for ledgers and ``repro cache stats``."""
        entries = self._load_index()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(int(v.get("size_bytes", 0)) for v in entries.values()),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }

    def counters(self) -> dict[str, int]:
        """Session counters, for merging from worker processes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def absorb_counters(self, counts: dict[str, int]) -> None:
        """Fold a worker's :meth:`counters` into this instance."""
        self.hits += int(counts.get("hits", 0))
        self.misses += int(counts.get("misses", 0))
        self.stores += int(counts.get("stores", 0))
        self.evictions += int(counts.get("evictions", 0))

    @staticmethod
    def _count(name: str) -> None:
        from repro.obs import get_metrics

        registry = get_metrics()
        if registry.enabled:
            registry.counter(name).inc()
