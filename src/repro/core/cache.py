"""Partial-bitstream caching (Section VI-A).

"Much like virtual machines cache the binary code that was generated
on-the-fly ... we can cache the generated partial bitstreams for each
custom instruction. To this end, each candidate needs to have a unique
identifier that is used as a key for reading and writing the cache. We can,
for example, compute a signature of the LLVM bitcode that describes the
candidate."

:class:`BitstreamCache` is that cache (keyed by
:attr:`repro.ise.Candidate.signature`). :class:`CacheSimulation` reproduces
the paper's evaluation protocol: "for simulating a cache with 20 % hit
rate, we have populated the cache with 20 % of the required bitstreams for
a particular application, whereas the selection which bitstreams are stored
in the cache is random. Whenever there is a hit ... the whole runtime
associated with the generation of the candidate is subtracted from the
total runtime."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.asip_sp import SpecializationReport
from repro.fpga.bitgen import PartialBitstream
from repro.util.rng import DeterministicRng


@dataclass
class BitstreamCache:
    """Signature-keyed bitstream store with hit/miss accounting."""

    _store: dict[int, PartialBitstream] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, signature: int) -> PartialBitstream | None:
        bs = self._store.get(signature)
        if bs is None:
            self.misses += 1
        else:
            self.hits += 1
        return bs

    def put(self, signature: int, bitstream: PartialBitstream) -> None:
        self._store[signature] = bitstream

    def __contains__(self, signature: int) -> bool:
        return signature in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CacheSimulation:
    """Monte-Carlo-free cache-hit simulation per the paper's protocol."""

    seed: int = 0

    def effective_toolflow_seconds(
        self,
        report: SpecializationReport,
        hit_rate_pct: float,
        trial: int = 0,
    ) -> float:
        """Tool-flow overhead with a ``hit_rate_pct``-populated cache.

        The populated subset is chosen deterministically from (seed, trial);
        averaging over trials reproduces the paper's random-selection
        protocol without nondeterminism.
        """
        if not 0.0 <= hit_rate_pct <= 100.0:
            raise ValueError("hit rate must be within [0, 100] percent")
        impls = report.implementations
        n = len(impls)
        if n == 0:
            return 0.0
        n_cached = int(round(n * hit_rate_pct / 100.0))
        rng = DeterministicRng(f"cache-sim/{self.seed}/{trial}/{n}")
        order = list(range(n))
        rng.shuffle(order)
        cached = set(order[:n_cached])
        total = 0.0
        for i, ci in enumerate(impls):
            if i in cached:
                continue  # hit: whole generation time subtracted
            total += ci.times.total
        return total

    def average_effective_seconds(
        self, report: SpecializationReport, hit_rate_pct: float, trials: int = 16
    ) -> float:
        return sum(
            self.effective_toolflow_seconds(report, hit_rate_pct, t)
            for t in range(trials)
        ) / max(1, trials)
