"""Specialization-as-a-service plane for the JIT-ISE reproduction.

The paper's premise (Section III, Figure 2) is that ASIP specialization
runs *online*, concurrently with the application; this package makes that
premise literal as a long-running daemon. A :class:`SpecializationServer`
accepts (tenant, app, machine config, pruning) requests over a
length-prefixed JSON socket protocol, admits them through a bounded queue
(backpressure as reject-with-retry-after), executes candidate search +
the modelled CAD flow on a worker pool, and deduplicates concurrent CAD
work through a shared multi-tenant bitstream store with single-flight
semantics — the serving-time generalization of the Section VI-A bitstream
cache. Request-level SLO telemetry (queue-wait / service latency, and
p50/p95/p99 *break-even* quantiles as the headline) feeds the existing
span tracer, metrics registry, and run ledger.
"""

from repro.serve.protocol import ServeClient, recv_message, send_message
from repro.serve.server import ServerConfig, SpecializationServer
from repro.serve.store import SharedBitstreamStore, TenantCache

__all__ = [
    "ServeClient",
    "ServerConfig",
    "SharedBitstreamStore",
    "SpecializationServer",
    "TenantCache",
    "recv_message",
    "send_message",
]
