"""Poisson load generation against the specialization daemon.

Drives the serving plane the way Section VI's feasibility argument is
framed: many clients, a weighted mix of applications, arrivals as a
Poisson process. The schedule is **deterministic** — interarrival gaps
are inverse-transform exponentials from a
:class:`repro.util.rng.DeterministicRng`, and client → tenant → app
assignments derive from the same stream — so two runs with one seed
replay the identical offered load and the regression sentinel can gate
the request counts exactly.

Two phases run the same schedule against one shared store: ``cold``
(empty store: every first candidate signature pays the CAD flow) and
``warm`` (every candidate a hit), so the committed ``BENCH_serve.json``
carries the serving-time analogue of Table IV's cache argument — warm
p95 break-even strictly below cold. Rejected admissions are retried
after the advertised ``retry_after_ms`` (backpressure, not lost work)
and surface as a retry count.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import platform
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.serve.protocol import ServeClient
from repro.serve.server import ServerConfig, SpecializationServer
from repro.serve.store import SharedBitstreamStore
from repro.util.rng import DeterministicRng

#: Report schema identifier (bump on breaking changes).
SERVE_BENCH_SCHEMA = "repro-bench-serve/1"

#: Default report location, committed at the repository root.
DEFAULT_SERVE_BENCH_OUT = "BENCH_serve.json"

#: Default offered application mix: the embedded suite, weighted toward
#: the apps with more selected candidates (heavier CAD work).
DEFAULT_APP_MIX: tuple[tuple[str, float], ...] = (
    ("fft", 3.0),
    ("adpcm", 2.0),
    ("sor", 2.0),
    ("whetstone", 1.0),
)


@dataclass
class LoadGenConfig:
    requests: int = 200
    clients: int = 1000  # logical client population
    tenants: int = 4
    rate: float = 50.0  # Poisson arrival rate, requests/second
    seed: int = 0
    concurrency: int = 12  # socket sender threads
    workers: int = 4  # embedded server worker pool
    queue_depth: int = 16  # embedded server admission queue
    tenant_budget: int | None = None
    time_share_pct: float = 50.0
    max_blocks: int = 3
    mix: tuple[tuple[str, float], ...] = DEFAULT_APP_MIX


@dataclass
class ScheduledRequest:
    offset: float  # seconds after phase start
    client: int
    tenant: str
    app: str


def build_schedule(cfg: LoadGenConfig) -> list[ScheduledRequest]:
    """Deterministic Poisson arrival schedule for one phase."""
    rng = DeterministicRng("serve/loadgen", cfg.seed)
    apps = [name for name, _ in cfg.mix]
    weights = [max(0.0, float(w)) for _, w in cfg.mix]
    total_weight = sum(weights) or 1.0
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total_weight
        cumulative.append(acc)

    schedule: list[ScheduledRequest] = []
    t = 0.0
    for _ in range(cfg.requests):
        u = float(rng.random())
        t += -math.log(max(1e-12, 1.0 - u)) / max(1e-9, cfg.rate)
        client = int(rng.integers(0, max(1, cfg.clients)))
        draw = float(rng.random())
        app = apps[-1]
        for name, bound in zip(apps, cumulative):
            if draw <= bound:
                app = name
                break
        schedule.append(
            ScheduledRequest(
                offset=round(t, 6),
                client=client,
                tenant=f"tenant{client % max(1, cfg.tenants):02d}",
                app=app,
            )
        )
    return schedule


@dataclass
class _DriveResult:
    completed: int = 0
    failed: int = 0
    retries: int = 0
    unresolved: int = 0  # still rejected after the retry budget
    wall_seconds: float = 0.0
    client_latency_ms: list[float] = field(default_factory=list)


def drive_schedule(
    schedule: list[ScheduledRequest],
    host: str,
    port: int,
    cfg: LoadGenConfig,
    label: str = "phase",
) -> _DriveResult:
    """Replay *schedule* against a live server; returns client-side tallies."""
    result = _DriveResult()
    lock = threading.Lock()
    counter = itertools.count()
    start = time.perf_counter()

    def sender() -> None:
        client = ServeClient(host=host, port=port, timeout=300.0)
        while True:
            i = next(counter)
            if i >= len(schedule):
                return
            req = schedule[i]
            delay = req.offset - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            t0 = time.perf_counter()
            response, retries = client.specialize_retry(
                req.tenant,
                req.app,
                max_attempts=1000,
                time_share_pct=cfg.time_share_pct,
                max_blocks=cfg.max_blocks,
                request_id=f"{label}-{i:05d}",
            )
            latency_ms = (time.perf_counter() - t0) * 1000.0
            with lock:
                result.retries += retries
                result.client_latency_ms.append(round(latency_ms, 3))
                status = response.get("status")
                if status == "ok":
                    result.completed += 1
                elif status == "rejected":
                    result.unresolved += 1
                else:
                    result.failed += 1

    threads = [
        threading.Thread(target=sender, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, cfg.concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = round(time.perf_counter() - start, 3)
    return result


def _run_phase(
    label: str,
    schedule: list[ScheduledRequest],
    store: SharedBitstreamStore,
    cfg: LoadGenConfig,
) -> tuple[dict, list[dict]]:
    """One phase: fresh embedded server over the shared store.

    Returns the phase summary plus the server's per-request records (the
    phase's ``requests.jsonl`` stream), each tagged with the phase label.
    """
    stores_before = store.combined_stats()["stores"]
    dedup_before = store.dedup_saved
    server = SpecializationServer(
        ServerConfig(
            port=0,
            workers=cfg.workers,
            queue_depth=cfg.queue_depth,
            store_root=str(store.root),
            tenant_budget=cfg.tenant_budget,
        ),
        store=store,
        record_run=False,
    )
    server.start()
    try:
        drive = drive_schedule(schedule, "127.0.0.1", server.port, cfg, label)
    finally:
        server.request_shutdown(reason="loadgen-phase-complete")
        shutdown = server.drain()
    summary = server.summary(shutdown=shutdown)
    records = server.request_records()
    for record in records:
        record["phase"] = label
    drive.client_latency_ms.sort()

    def client_pct(q: float) -> float | None:
        values = drive.client_latency_ms
        if not values:
            return None
        rank = min(len(values) - 1, max(0, int(round(q * (len(values) - 1)))))
        return values[rank]

    phase = {
        "requests": summary["requests"],
        "retries": drive.retries,
        "unresolved": drive.unresolved,
        "wall_seconds": drive.wall_seconds,
        "throughput_rps": round(
            drive.completed / max(1e-9, drive.wall_seconds), 3
        ),
        "latency": summary["latency"],
        "client_latency_ms": {
            "p50": client_pct(0.50),
            "p95": client_pct(0.95),
            "p99": client_pct(0.99),
        },
        "dedup": {"saved": store.dedup_saved - dedup_before},
        "cad_implementations": store.combined_stats()["stores"] - stores_before,
        "tenants": summary["tenants"],
        "slo": summary.get("slo"),
        "shutdown": summary.get("shutdown"),
    }
    return phase, records


def run_loadgen(
    cfg: LoadGenConfig | None = None,
    out: str | os.PathLike | None = DEFAULT_SERVE_BENCH_OUT,
    store_root: str | os.PathLike | None = None,
) -> dict:
    """Cold + warm phases over one schedule; returns (and writes) the report.

    *store_root* defaults to a temporary directory removed afterwards, so
    repeat benchmark runs always start from a genuinely cold store.
    """
    cfg = cfg or LoadGenConfig()
    owns_store = store_root is None
    if owns_store:
        store_root = tempfile.mkdtemp(prefix="repro-serve-store-")
    schedule = build_schedule(cfg)
    store = SharedBitstreamStore(store_root, tenant_budget=cfg.tenant_budget)
    try:
        cold_phase, cold_records = _run_phase("cold", schedule, store, cfg)
        warm_phase, warm_records = _run_phase("warm", schedule, store, cfg)
        phases = {"cold": cold_phase, "warm": warm_phase}
    finally:
        if owns_store:
            shutil.rmtree(store_root, ignore_errors=True)

    # One combined request stream on one timeline: each phase's t_offset is
    # relative to its own embedded server's start, so the warm phase is
    # shifted past the end of the cold one before the streams are merged.
    warm_shift = max(
        (r.get("t_offset") or 0.0 for r in cold_records), default=0.0
    ) + 1.0
    request_records = list(cold_records)
    for record in warm_records:
        shifted = dict(record)
        if shifted.get("t_offset") is not None:
            shifted["t_offset"] = round(shifted["t_offset"] + warm_shift, 6)
        request_records.append(shifted)

    def be(phase: str, q: str) -> float | None:
        return ((phases[phase].get("latency") or {}).get("break_even") or {}).get(q)

    comparison = {
        "break_even_p50_cold": be("cold", "p50"),
        "break_even_p50_warm": be("warm", "p50"),
        "break_even_p95_cold": be("cold", "p95"),
        "break_even_p95_warm": be("warm", "p95"),
        "break_even_p99_cold": be("cold", "p99"),
        "break_even_p99_warm": be("warm", "p99"),
        "dedup_saved_total": store.dedup_saved,
        "cad_implementations_cold": phases["cold"]["cad_implementations"],
        "cad_implementations_warm": phases["warm"]["cad_implementations"],
    }
    warm_p95_lower = bool(
        comparison["break_even_p95_warm"] is not None
        and comparison["break_even_p95_cold"] is not None
        and comparison["break_even_p95_warm"] < comparison["break_even_p95_cold"]
    )

    report = {
        "schema": SERVE_BENCH_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "requests": cfg.requests,
            "clients": cfg.clients,
            "tenants": cfg.tenants,
            "rate_rps": cfg.rate,
            "seed": cfg.seed,
            "concurrency": cfg.concurrency,
            "workers": cfg.workers,
            "queue_depth": cfg.queue_depth,
            "tenant_budget": cfg.tenant_budget,
            "pruning": f"@{cfg.time_share_pct:g}pS{cfg.max_blocks}L",
            "mix": {name: weight for name, weight in cfg.mix},
        },
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "schedule": {
            "requests": len(schedule),
            "duration_seconds": schedule[-1].offset if schedule else 0.0,
            "distinct_tenants": len({r.tenant for r in schedule}),
            "distinct_clients": len({r.client for r in schedule}),
        },
        "phases": phases,
        "comparison": comparison,
        "warm_p95_lower": warm_p95_lower,
    }

    from repro.obs.ledger import current_run

    recorder = current_run()
    if recorder is not None:
        recorder.attach_serve(
            {
                "phases": phases,
                "comparison": comparison,
                "warm_p95_lower": warm_p95_lower,
            }
        )
        recorder.attach_cache(store.combined_stats())
        requests_path = recorder.run_dir / "requests.jsonl"
        with open(requests_path, "w", encoding="utf-8") as fh:
            for record in request_records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        recorder.artifacts.setdefault("requests", "requests.jsonl")

    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def render_loadgen(report: dict) -> str:
    """ASCII rendering of a serve benchmark report for the CLI."""
    from repro.util.tables import Table

    table = Table(
        columns=[
            "phase", "completed", "retries", "wall [s]", "rps",
            "CAD impls", "dedup", "BE p50 [s]", "BE p95 [s]", "BE p99 [s]",
        ],
        title=(
            f"Serve benchmark: {report.get('schedule', {}).get('requests', 0)}"
            f" requests/phase, {report.get('config', {}).get('tenants', 0)}"
            f" tenants"
        ),
    )
    for name, phase in (report.get("phases") or {}).items():
        be = (phase.get("latency") or {}).get("break_even") or {}

        def fmt(q: str) -> str:
            value = be.get(q)
            return f"{value:.0f}" if value is not None else "-"

        table.add_row(
            [
                name,
                (phase.get("requests") or {}).get("completed", 0),
                phase.get("retries", 0),
                f"{phase.get('wall_seconds', 0.0):.2f}",
                f"{phase.get('throughput_rps', 0.0):.1f}",
                phase.get("cad_implementations", 0),
                (phase.get("dedup") or {}).get("saved", 0),
                fmt("p50"),
                fmt("p95"),
                fmt("p99"),
            ]
        )
    lines = [table.render()]
    for name, phase in (report.get("phases") or {}).items():
        slo = phase.get("slo") or {}
        if not slo:
            continue
        breached = [
            obj for obj, row in slo.items()
            if (row or {}).get("alert")
            or (
                row.get("budget_remaining_pct") is not None
                and row["budget_remaining_pct"] <= 0
            )
        ]
        verdict = (
            f"BREACHED ({', '.join(sorted(breached))})" if breached else "ok"
        )

        def budget(row: dict) -> str:
            pct = row.get("budget_remaining_pct")
            return f"{pct:.0f}% budget" if pct is not None else "n/a"

        lines.append(
            f"{name} SLOs: {verdict} — "
            + ", ".join(
                f"{obj} {budget(row)}" for obj, row in sorted(slo.items())
            )
        )
    comparison = report.get("comparison") or {}
    cold = comparison.get("break_even_p95_cold")
    warm = comparison.get("break_even_p95_warm")
    if cold is not None and warm is not None:
        verdict = "lower" if report.get("warm_p95_lower") else "NOT lower"
        lines.append(
            f"warm-vs-cold break-even p95: {warm:.0f} s vs {cold:.0f} s "
            f"({verdict}); dedup saved {comparison.get('dedup_saved_total', 0)} "
            f"CAD runs"
        )
    return "\n".join(lines)
