"""ASCII live view of the specialization daemon (``repro top``).

The serving counterpart of the paper's Table II/III breakdowns: instead
of a post-hoc per-stage table, an operator watches the daemon's request
counters, queue depth, UDI slot occupancy and eviction rate (summed over
the ``slots.*`` telemetry of completed requests), cross-application
store hits, per-tenant cache hit rates, and the p50/p95/p99 break-even
quantiles update in place. Rendering consumes the ``stats``
protocol op (:mod:`repro.serve.protocol`), so it works against any live
daemon — instrumented or not; with the daemon's metrics registry
enabled, the full snapshot is appended via
:func:`repro.obs.metrics.render_snapshot`.
"""

from __future__ import annotations

import time

from repro.serve.protocol import ServeClient

#: ANSI clear-screen + cursor-home, used between watch refreshes.
CLEAR = "\x1b[2J\x1b[H"


def _fmt(value, digits: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def render_stats(stats: dict, metrics: dict | None = None) -> str:
    """Render one ``stats`` response body as a top-style page."""
    config = stats.get("config") or {}
    requests = stats.get("requests") or {}
    queue_info = stats.get("queue") or {}
    latency = stats.get("latency") or {}
    lines = [
        f"repro serve @ {config.get('host')}:{config.get('port')} — "
        f"up {stats.get('uptime_seconds', 0.0):.1f}s, "
        f"{config.get('workers')} workers ({config.get('backend')}), "
        f"queue depth {config.get('queue_depth')}",
        f"requests: {requests.get('completed', 0)} completed, "
        f"{requests.get('rejected', 0)} rejected, "
        f"{requests.get('failed', 0)} failed "
        f"({requests.get('total', 0)} offered)   "
        f"queue {queue_info.get('depth', 0)}/{config.get('queue_depth')} "
        f"(max {queue_info.get('max_depth', 0)})   "
        f"inflight {stats.get('inflight', 0)}",
        f"dedup saved {((stats.get('dedup') or {}).get('saved', 0))} CAD runs, "
        f"{stats.get('cross_app_hits', 0)} cross-app store hits",
        f"slots: {((stats.get('slots') or {}).get('loads', 0))} loads "
        f"({((stats.get('slots') or {}).get('reloads', 0))} reloads), "
        f"{((stats.get('slots') or {}).get('evictions', 0))} evictions "
        f"(rate {((stats.get('slots') or {}).get('eviction_rate', 0.0)):.2f}), "
        f"occupancy {((stats.get('slots') or {}).get('mean_occupancy_pct', 0.0)):.1f}%",
        "",
        f"{'latency':<22}{'p50':>10}{'p95':>10}{'p99':>10}{'count':>8}",
    ]
    rows = (
        ("queue wait [ms]", "queue_wait", 1000.0, 1),
        ("service [ms]", "service", 1000.0, 1),
        ("break-even [s]", "break_even", 1.0, 0),
    )
    for label, key, scale, digits in rows:
        hist = latency.get(key) or {}

        def scaled(q: str) -> str:
            value = hist.get(q)
            return _fmt(value * scale if value is not None else None, digits)

        lines.append(
            f"  {label:<20}{scaled('p50'):>10}{scaled('p95'):>10}"
            f"{scaled('p99'):>10}{hist.get('count', 0):>8}"
        )
    tenants = stats.get("tenants") or {}
    if tenants:
        lines += [
            "",
            f"{'tenant':<14}{'requests':>9}{'hits':>7}{'misses':>8}"
            f"{'entries':>9}{'hit rate':>10}{'budget':>10}",
        ]
        for name, row in sorted(tenants.items()):
            budget = row.get("budget")
            if budget:
                used = row.get("budget_used_pct")
                budget_text = (
                    f"{row.get('entries', 0)}/{budget}"
                    + (f" ({used:.0f}%)" if used is not None else "")
                )
            else:
                budget_text = "-"
            lines.append(
                f"  {name:<12}{row.get('requests', 0):>9}"
                f"{row.get('hits', 0):>7}{row.get('misses', 0):>8}"
                f"{row.get('entries', 0):>9}"
                f"{100.0 * row.get('hit_rate', 0.0):>9.1f}%"
                f"{budget_text:>10}"
            )
    slo = stats.get("slo") or {}
    if slo:
        lines += [
            "",
            f"{'SLO':<20}{'target':>8}{'good/total':>12}"
            f"{'budget left':>13}{'burn f/s':>12}{'alert':>12}",
        ]
        for name, row in sorted(slo.items()):
            pct = row.get("budget_remaining_pct")
            ratio = f"{row.get('good', 0)}/{row.get('total', 0)}"
            budget_left = f"{pct:.1f}%" if pct is not None else "-"
            burn = (
                f"{row.get('burn_fast', 0.0):.1f}/"
                f"{row.get('burn_slow', 0.0):.1f}"
            )
            lines.append(
                f"  {name:<18}{100.0 * row.get('target', 0.0):>7.1f}%"
                f"{ratio:>12}{budget_left:>13}{burn:>12}"
                f"{(row.get('alert') or '-'):>12}"
            )
    if stats.get("shutdown"):
        lines += ["", f"shutdown: {stats['shutdown']}"]
    if metrics:
        from repro.obs.metrics import render_snapshot

        lines += ["", "-- metrics snapshot " + "-" * 40, render_snapshot(metrics)]
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    once: bool = False,
    show_metrics: bool = False,
    out=None,
    max_refreshes: int | None = None,
) -> int:
    """Poll the daemon's stats and render in place; returns an exit code."""
    import sys

    out = out or sys.stdout
    client = ServeClient(host=host, port=port, timeout=10.0)
    refreshes = 0
    while True:
        try:
            response = client.stats()
        except OSError as exc:
            print(f"repro top: cannot reach {host}:{port} ({exc})", file=out)
            return 1
        if response.get("status") != "ok":
            print(f"repro top: {response}", file=out)
            return 1
        page = render_stats(
            response.get("stats") or {},
            response.get("metrics") if show_metrics else None,
        )
        if once:
            print(page, file=out)
            return 0
        print(CLEAR + page, file=out, flush=True)
        refreshes += 1
        if max_refreshes is not None and refreshes >= max_refreshes:
            return 0
        time.sleep(max(0.1, interval))
