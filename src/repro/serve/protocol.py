"""Wire protocol for the specialization daemon (Section III, Figure 2).

The paper's runtime system and CAD flow live on different machines (the
host PC runs the tool flow, the FPGA runs the application), so the
serving plane speaks a deliberately tiny socket protocol: each message is
a 4-byte big-endian length prefix followed by a UTF-8 JSON object. One
connection carries one request/response exchange.

Request ops:

- ``specialize`` — ``{"op": "specialize", "tenant": ..., "app": ...,
  "pruning": {"time_share_pct": ..., "max_blocks": ...}, "slots": ...}``;
- ``stats`` — server summary + live metrics snapshot (``repro top``);
- ``ping`` — liveness probe;
- ``shutdown`` — ask the daemon to drain and exit.

Responses always carry a ``status`` field: ``ok``, ``rejected`` (with
``retry_after_ms`` when the admission queue is full — the backpressure
contract), or ``error``.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from dataclasses import dataclass

#: Protocol schema identifier, echoed in every response.
PROTOCOL_SCHEMA = "repro-serve/1"

#: Upper bound on one frame; anything larger is a protocol error.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Malformed frame (bad length prefix, oversized frame, bad JSON)."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one length-prefixed JSON frame."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({len(payload)} bytes)")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; None on clean EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one frame; None on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({length} bytes)")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


@dataclass
class ServeClient:
    """One-shot request client for the specialization daemon.

    Opens a fresh connection per exchange (the protocol is one
    request/response per connection), so a client instance is cheap and
    thread-safe to share.
    """

    host: str = "127.0.0.1"
    port: int = 0
    timeout: float = 120.0

    def request(self, message: dict) -> dict:
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            send_message(sock, message)
            response = recv_message(sock)
        if response is None:
            raise ProtocolError("server closed the connection without replying")
        return response

    # -- convenience ops -----------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self, drain: bool = True) -> dict:
        return self.request({"op": "shutdown", "drain": bool(drain)})

    def specialize(
        self,
        tenant: str,
        app: str,
        time_share_pct: float = 50.0,
        max_blocks: int = 3,
        slots: int | None = None,
        request_id: str | None = None,
    ) -> dict:
        message: dict = {
            "op": "specialize",
            "tenant": tenant,
            "app": app,
            "pruning": {
                "time_share_pct": float(time_share_pct),
                "max_blocks": int(max_blocks),
            },
        }
        if slots is not None:
            message["slots"] = int(slots)
        if request_id is not None:
            message["request_id"] = request_id
        return self.request(message)

    def specialize_retry(
        self,
        tenant: str,
        app: str,
        max_attempts: int = 64,
        **kwargs,
    ) -> tuple[dict, int]:
        """Specialize, honouring queue-full backpressure.

        Retries a ``rejected`` response after the advertised
        ``retry_after_ms``; returns ``(response, retries)``. The load
        generator uses this so every scheduled request eventually
        completes and rejections surface as a retry count instead of
        lost work.
        """
        retries = 0
        for _ in range(max_attempts):
            response = self.specialize(tenant, app, **kwargs)
            if response.get("status") != "rejected":
                return response, retries
            retries += 1
            time.sleep(max(0.005, float(response.get("retry_after_ms", 50)) / 1000.0))
        return response, retries
