"""Wire protocol for the specialization daemon (Section III, Figure 2).

The paper's runtime system and CAD flow live on different machines (the
host PC runs the tool flow, the FPGA runs the application), so the
serving plane speaks a deliberately tiny socket protocol: each message is
a 4-byte big-endian length prefix followed by a UTF-8 JSON object. One
connection carries one request/response exchange.

Request ops:

- ``specialize`` — ``{"op": "specialize", "tenant": ..., "app": ...,
  "pruning": {"time_share_pct": ..., "max_blocks": ...}, "slots": ...}``;
- ``stats`` — server summary + live metrics snapshot (``repro top``);
- ``ping`` — liveness probe;
- ``shutdown`` — ask the daemon to drain and exit.

Responses always carry a ``status`` field: ``ok``, ``rejected`` (with
``retry_after_ms`` when the admission queue is full — the backpressure
contract), or ``error``.

Every ``specialize`` request additionally carries a W3C-style
``traceparent`` header (``00-<trace_id>-<parent_span_id>-01``) minted by
:meth:`ServeClient.specialize`: the daemon continues the context across
the admission queue, the worker pool (thread or forked process), and the
shared store's single-flight waits, so one request yields one stitched
cross-process span tree in the ledger run.
"""

from __future__ import annotations

import json
import socket
import struct
import time
import uuid
from dataclasses import dataclass

from repro.util.rng import DeterministicRng, stable_hash

#: Protocol schema identifier, echoed in every response.
PROTOCOL_SCHEMA = "repro-serve/1"

#: Upper bound on one frame; anything larger is a protocol error.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Malformed frame (bad length prefix, oversized frame, bad JSON)."""


# -- distributed trace context ------------------------------------------------
#: traceparent version field (W3C Trace Context layout).
TRACEPARENT_VERSION = "00"


def mint_trace_id(request_id: str | None = None) -> str:
    """A 128-bit hex trace id.

    Derived deterministically from *request_id* when one is supplied (the
    load generator names every request, so replayed schedules mint
    replayable trace ids); random otherwise.
    """
    if request_id:
        hi = stable_hash("serve/trace/hi", request_id)
        lo = stable_hash("serve/trace/lo", request_id)
        return f"{hi:016x}{lo:016x}"
    return uuid.uuid4().hex


def mint_traceparent(trace_id: str, span_id: int) -> str:
    """Format a traceparent header from a trace id and a local span id."""
    return f"{TRACEPARENT_VERSION}-{trace_id}-{int(span_id) & ((1 << 64) - 1):016x}-01"


def parse_traceparent(header) -> dict | None:
    """Parse a traceparent header into ``{"trace_id", "parent_span_id"}``.

    Returns None for a missing or malformed header (trace context is
    best-effort: a bad header never fails the request). A zero parent span
    id (client had tracing disabled) maps to ``parent_span_id = None``.
    """
    if not isinstance(header, str):
        return None
    parts = header.split("-")
    if len(parts) != 4:
        return None
    _, trace_id, parent_hex, _ = parts
    if not trace_id or any(c not in "0123456789abcdef" for c in trace_id.lower()):
        return None
    try:
        parent_span_id = int(parent_hex, 16)
    except ValueError:
        return None
    return {
        "trace_id": trace_id.lower(),
        "parent_span_id": parent_span_id or None,
    }


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one length-prefixed JSON frame."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({len(payload)} bytes)")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; None on clean EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one frame; None on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({length} bytes)")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


@dataclass
class ServeClient:
    """One-shot request client for the specialization daemon.

    Opens a fresh connection per exchange (the protocol is one
    request/response per connection), so a client instance is cheap and
    thread-safe to share.
    """

    host: str = "127.0.0.1"
    port: int = 0
    timeout: float = 120.0

    def request(self, message: dict) -> dict:
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            send_message(sock, message)
            response = recv_message(sock)
        if response is None:
            raise ProtocolError("server closed the connection without replying")
        return response

    # -- convenience ops -----------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self, drain: bool = True) -> dict:
        return self.request({"op": "shutdown", "drain": bool(drain)})

    def specialize(
        self,
        tenant: str,
        app: str,
        time_share_pct: float = 50.0,
        max_blocks: int = 3,
        slots: int | None = None,
        request_id: str | None = None,
        trace_id: str | None = None,
    ) -> dict:
        from repro.obs import get_tracer

        message: dict = {
            "op": "specialize",
            "tenant": tenant,
            "app": app,
            "pruning": {
                "time_share_pct": float(time_share_pct),
                "max_blocks": int(max_blocks),
            },
        }
        if slots is not None:
            message["slots"] = int(slots)
        if request_id is not None:
            message["request_id"] = request_id
        if trace_id is None:
            trace_id = mint_trace_id(request_id)
        tracer = get_tracer()
        with tracer.span(
            "serve.client",
            tenant=tenant,
            app=app,
            request_id=request_id,
            trace_id=trace_id,
        ) as span:
            message["traceparent"] = mint_traceparent(trace_id, span.span_id)
            response = self.request(message)
            span.set_attr("status", response.get("status"))
            trace = response.get("trace")
            if isinstance(trace, dict) and trace.get("span_id"):
                span.set_attr("server_span_id", trace["span_id"])
        return response

    def specialize_retry(
        self,
        tenant: str,
        app: str,
        max_attempts: int = 64,
        backoff_cap_ms: float = 2000.0,
        backoff_seed: str | None = None,
        **kwargs,
    ) -> tuple[dict, int]:
        """Specialize, honouring queue-full backpressure.

        Retries a ``rejected`` response after the advertised
        ``retry_after_ms``; returns ``(response, retries)``. The load
        generator uses this so every scheduled request eventually
        completes and rejections surface as a retry count instead of
        lost work.

        The server's ``retry_after_ms`` hint is the same for every client
        it rejects on a given tick, so sleeping exactly that long would
        re-stampede the admission queue in lockstep. Each retry therefore
        sleeps ``hint * 2^attempt`` (capped at *backoff_cap_ms*) scaled by
        a jitter factor in [0.5, 1.5) drawn from a PRNG seeded on the
        request identity — concurrent clients decorrelate, but a replayed
        schedule backs off identically (the serve regression leg gates
        deterministic request counts).
        """
        seed_key = backoff_seed or kwargs.get("request_id") or f"{tenant}/{app}"
        rng = DeterministicRng("serve/backoff", stable_hash(seed_key))
        # A shared trace id across retries: every attempt (including the
        # rejected ones) lands in the same stitched trace.
        kwargs.setdefault("trace_id", mint_trace_id(kwargs.get("request_id")))
        retries = 0
        for attempt in range(max_attempts):
            response = self.specialize(tenant, app, **kwargs)
            if response.get("status") != "rejected":
                return response, retries
            retries += 1
            hint_ms = float(response.get("retry_after_ms", 50))
            delay_ms = min(backoff_cap_ms, hint_ms * (2.0 ** min(attempt, 6)))
            jitter = 0.5 + float(rng.random())
            time.sleep(max(0.005, delay_ms * jitter / 1000.0))
        return response, retries
