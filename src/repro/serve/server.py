"""The specialization daemon (Section III's online premise, made literal).

:class:`SpecializationServer` is a long-running service around the ASIP
specialization process of Figure 2: clients submit (tenant, app, machine
config, pruning) requests over the :mod:`repro.serve.protocol` socket
protocol; an **admission queue** of bounded depth provides backpressure
(a full queue rejects with ``retry_after_ms`` instead of queueing
unboundedly); a worker pool executes requests against the shared
multi-tenant bitstream store (:mod:`repro.serve.store`), whose
single-flight layer collapses concurrent CAD work on equal candidate
signatures.

Observability is first-class: each request is a ``serve.request`` span
parented under the server's root span (one server run = one ledger run),
live gauges track queue depth / in-flight workers / per-tenant cache hit
rate, and latency histograms record queue-wait and service time (real
clock) plus the **break-even** distribution (virtual clock) whose
p50/p95/p99 are the headline SLO quantiles. SIGINT/SIGTERM drain the
queue, finish in-flight CAD work, and close the ledger run with an
explicit ``interrupted`` shutdown status — never a dangling manifest.
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.obs import get_metrics, get_tracer
from repro.obs.metrics import Histogram
from repro.serve.protocol import (
    PROTOCOL_SCHEMA,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.serve.store import SharedBitstreamStore
from repro.serve.worker import (
    execute_specialize,
    parse_specialize_request,
    process_request_worker,
)

#: Default multi-tenant store location (git-ignored, like the cache).
DEFAULT_STORE_DIR = ".repro-store"

#: Break-even times span minutes to days: dedicated bucket bounds so the
#: p95/p99 interpolation stays sharp where Table IV's values live.
BREAK_EVEN_BUCKETS = (
    60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0, 43200.0, 86400.0,
    259200.0,
)

_SENTINEL = object()


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is printed/queryable
    workers: int = 2
    queue_depth: int = 32
    backend: str = "thread"  # thread (in-process single-flight) | process
    store_root: str = DEFAULT_STORE_DIR
    tenant_budget: int | None = None


@dataclass
class _Ticket:
    """One admitted request waiting for (or undergoing) execution."""

    conn: socket.socket
    request: dict
    enqueued_at: float = field(default_factory=time.perf_counter)


class SpecializationServer:
    """Bounded-queue, worker-pool specialization daemon."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        store: SharedBitstreamStore | None = None,
        record_run: bool = True,
    ) -> None:
        self.config = config or ServerConfig()
        # With record_run=False the drain skips attaching the serve block
        # to the current ledger run — the load generator composes its own
        # per-phase block instead of letting two embedded servers fight
        # over one manifest.
        self.record_run = record_run
        if self.config.backend not in ("thread", "process"):
            raise ValueError(
                f"unknown backend {self.config.backend!r} (thread or process)"
            )
        self.store = store or SharedBitstreamStore(
            self.config.store_root, tenant_budget=self.config.tenant_budget
        )
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_depth)
        self._listener: socket.socket | None = None
        self._bound_port: int | None = None
        self._acceptor: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        self._pool: ProcessPoolExecutor | None = None
        self._span = None
        self._started = time.perf_counter()

        self._stop = threading.Event()
        self._drained = threading.Event()
        self._shutdown_reason: str | None = None

        self._stats_lock = threading.Lock()
        self.requests = {
            "total": 0,
            "accepted": 0,
            "completed": 0,
            "rejected": 0,
            "failed": 0,
        }
        self._tenant_requests: dict[str, int] = {}
        self._inflight = 0
        self._max_queue_depth = 0
        self._service_ewma = 0.5  # seconds; seeds the retry-after estimate
        self._records: list[dict] = []
        # Fleet-wide UDI slot telemetry summed over completed requests
        # (each request binds its implementations to its machine's slot
        # pool); `repro top` renders occupancy and eviction rate from it.
        self._slot_totals = {
            "loads": 0,
            "reloads": 0,
            "hits": 0,
            "evictions": 0,
            "occupancy_pct_sum": 0.0,
            "samples": 0,
        }

        # Always-on latency histograms (independent of the global metrics
        # registry, so `repro top` works against an un-instrumented daemon).
        self.queue_wait_hist = Histogram("serve.queue_wait_seconds")
        self.service_hist = Histogram("serve.service_seconds")
        self.break_even_hist = Histogram(
            "serve.break_even_seconds", buckets=BREAK_EVEN_BUCKETS
        )

    # -- lifecycle -----------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`, survives drain)."""
        if self._bound_port is not None:
            return self._bound_port
        return self.config.port

    def start(self) -> None:
        """Bind, open the root span, and start acceptor + workers."""
        tracer = get_tracer()
        self._span = tracer.span(
            "serve.run",
            host=self.config.host,
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            backend=self.config.backend,
        )
        if self._span is not None and hasattr(self._span, "__exit__"):
            self._span.__enter__()
        self._started = time.perf_counter()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        self._bound_port = listener.getsockname()[1]
        if self.config.backend == "process":
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers, mp_context=ctx
            )
        for i in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="serve-acceptor", daemon=True
        )
        self._acceptor.start()

    def request_shutdown(self, reason: str = "api") -> None:
        """Ask the daemon to stop accepting and drain (idempotent)."""
        with self._stats_lock:
            if self._shutdown_reason is None:
                self._shutdown_reason = reason
        self._stop.set()

    def serve_forever(self, poll_seconds: float = 0.25) -> str:
        """Block until shutdown is requested, then drain; returns status.

        The returned status is ``"interrupted"`` when the shutdown came
        from a signal, ``"ok"`` otherwise — recorded in the ledger's
        ``serve`` block either way, so a Ctrl-C'd daemon still closes its
        run cleanly.
        """
        while not self._stop.wait(poll_seconds):
            pass
        return self.drain()

    def drain(self) -> str:
        """Stop accepting, finish queued + in-flight work, close down."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._span is not None and hasattr(self._span, "finish"):
            self._span.set_attrs(
                completed=self.requests["completed"],
                rejected=self.requests["rejected"],
                failed=self.requests["failed"],
            )
            self._span.finish()
        self._drained.set()
        status = self.shutdown_status()
        if self.record_run:
            self._record_run(status)
        return status

    def shutdown_status(self) -> str:
        with self._stats_lock:
            reason = self._shutdown_reason
        return "interrupted" if reason == "signal" else "ok"

    def _record_run(self, status: str) -> None:
        """Attach the serve summary (+ per-request records) to the run."""
        from repro.obs.ledger import current_run

        recorder = current_run()
        if recorder is None:
            return
        recorder.attach_serve(self.summary(shutdown=status))
        recorder.attach_cache(self.store.combined_stats())
        with self._stats_lock:
            records = list(self._records)
        if records:
            path = recorder.run_dir / "requests.jsonl"
            with open(path, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
            recorder.artifacts.setdefault("requests", "requests.jsonl")

    # -- acceptor ------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: drain in progress
            handler = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        """Read one request; enqueue it or answer immediately."""
        keep_open = False
        try:
            conn.settimeout(30.0)
            try:
                message = recv_message(conn)
            except ProtocolError as exc:
                self._reply(conn, {"status": "error", "error": str(exc)})
                return
            if message is None:
                return
            op = message.get("op")
            if op == "ping":
                self._reply(conn, {"status": "ok", "op": "ping"})
            elif op == "stats":
                self._reply(
                    conn,
                    {
                        "status": "ok",
                        "op": "stats",
                        "stats": self.summary(),
                        "metrics": (
                            get_metrics().snapshot()
                            if get_metrics().enabled
                            else None
                        ),
                    },
                )
            elif op == "shutdown":
                self.request_shutdown(reason="client")
                self._reply(conn, {"status": "ok", "op": "shutdown"})
            elif op == "specialize":
                keep_open = self._admit(conn, message)
            else:
                self._reply(
                    conn, {"status": "error", "error": f"unknown op {op!r}"}
                )
        finally:
            if not keep_open:
                try:
                    conn.close()
                except OSError:
                    pass

    def _admit(self, conn: socket.socket, message: dict) -> bool:
        """Admission control; returns True when the worker owns the conn."""
        with self._stats_lock:
            self.requests["total"] += 1
        try:
            request = parse_specialize_request(message)
        except (KeyError, ValueError, TypeError) as exc:
            with self._stats_lock:
                self.requests["failed"] += 1
            self._count("serve.requests.failed")
            self._reply(conn, {"status": "error", "error": str(exc)})
            return False
        if self._stop.is_set():
            self._reject(
                conn, reason="shutting-down", retry_after_ms=None, request=request
            )
            return False
        ticket = _Ticket(conn=conn, request=request)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self._reject(
                conn,
                reason="queue-full",
                retry_after_ms=self._retry_after_ms(),
                request=request,
            )
            return False
        with self._stats_lock:
            self.requests["accepted"] += 1
            self._max_queue_depth = max(
                self._max_queue_depth, self._queue.qsize()
            )
        self._count("serve.requests.accepted")
        self._set_gauge("serve.queue_depth", self._queue.qsize())
        return True

    def _reject(
        self,
        conn,
        reason: str,
        retry_after_ms: float | None,
        request: dict | None = None,
    ) -> None:
        with self._stats_lock:
            self.requests["rejected"] += 1
            # Rejections are SLO events too: the queue-reject-rate
            # objective is evaluated over requests.jsonl, so every parsed
            # but turned-away request leaves a record.
            if request is not None and len(self._records) < 100_000:
                self._records.append(
                    {
                        "t_offset": round(
                            time.perf_counter() - self._started, 6
                        ),
                        "tenant": request["tenant"],
                        "app": request["app"],
                        "request_id": request["request_id"] or None,
                        "status": "rejected",
                        "reason": reason,
                        "retry_after_ms": (
                            round(retry_after_ms, 3)
                            if retry_after_ms is not None
                            else None
                        ),
                        "queue_wait_ms": None,
                        "service_ms": None,
                        "break_even_seconds": None,
                        "error": None,
                        "trace_id": request.get("trace_id"),
                        "span_id": None,
                    }
                )
        self._count("serve.requests.rejected")
        response = {"status": "rejected", "reason": reason}
        if retry_after_ms is not None:
            response["retry_after_ms"] = round(retry_after_ms, 3)
        if request is not None and request.get("trace_id"):
            response["trace"] = {"trace_id": request["trace_id"], "span_id": None}
        self._reply(conn, response)

    def _retry_after_ms(self) -> float:
        with self._stats_lock:
            ewma = self._service_ewma
        backlog = self._queue.qsize() + self._inflight
        estimate = backlog * ewma * 1000.0 / max(1, self.config.workers)
        return max(25.0, min(2000.0, estimate))

    def _reply(self, conn: socket.socket, response: dict) -> None:
        response.setdefault("schema", PROTOCOL_SCHEMA)
        try:
            send_message(conn, response)
        except OSError:
            pass  # client went away; its work is still accounted

    # -- workers -------------------------------------------------------------
    def _worker_loop(self) -> None:
        tracer = get_tracer()
        while True:
            ticket = self._queue.get()
            if ticket is _SENTINEL:
                return
            self._set_gauge("serve.queue_depth", self._queue.qsize())
            with self._stats_lock:
                self._inflight += 1
            self._set_gauge("serve.inflight", self._inflight)
            try:
                self._process_ticket(ticket, tracer)
            finally:
                self.store.release_thread_flights()
                with self._stats_lock:
                    self._inflight -= 1
                self._set_gauge("serve.inflight", self._inflight)
                try:
                    ticket.conn.close()
                except OSError:
                    pass

    def _process_ticket(self, ticket: _Ticket, tracer) -> None:
        request = ticket.request
        tenant = request["tenant"]
        dequeued = time.perf_counter()
        queue_wait = dequeued - ticket.enqueued_at
        started = dequeued
        with tracer.child_context(self._span):
            with tracer.span(
                "serve.request",
                tenant=tenant,
                app=request["app"],
                request_id=request["request_id"] or None,
                trace_id=request.get("trace_id"),
                client_span_id=request.get("client_span_id"),
            ) as span:
                # The queue wait is already over when a worker picks the
                # ticket up; record it retroactively as a child of this
                # request span so the stitched trace shows client wait vs
                # queue wait vs CAD explicitly.
                tracer.record_interval(
                    "serve.queue.wait",
                    ticket.enqueued_at,
                    dequeued,
                    trace_id=request.get("trace_id"),
                )
                try:
                    result = self._execute(request, span)
                    error = None
                except Exception as exc:  # noqa: BLE001 - daemon must survive
                    result = None
                    error = f"{type(exc).__name__}: {exc}"
                    span.set_attr("error", type(exc).__name__)
                service = time.perf_counter() - started
                span.set_attrs(
                    queue_wait_ms=round(queue_wait * 1000.0, 3),
                    service_ms=round(service * 1000.0, 3),
                )
        self._account(ticket, result, error, queue_wait, service, span)

    def _execute(self, request: dict, span=None) -> dict:
        if self.config.backend == "process":
            assert self._pool is not None
            tracer = get_tracer()
            registry = get_metrics()
            fanout_start = time.perf_counter()
            future = self._pool.submit(
                process_request_worker,
                request,
                str(self.store.root),
                self.config.tenant_budget,
                tracer.enabled,
                registry.enabled,
            )
            result, records, snapshot, counters = future.result()
            if records:
                # Reparent the child process's span subtree under *this
                # request's* span (not the server root), so the stitched
                # trace keeps parent/child ids across the process boundary.
                tracer.absorb(
                    records,
                    parent=span if span is not None else self._span,
                    base=fanout_start,
                )
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
            if counters is not None:
                self.store.tenant(request["tenant"]).cache.absorb_counters(
                    counters
                )
            return result
        tenant_cache = self.store.tenant(
            request["tenant"], app=request["app"]
        )
        with get_tracer().span(
            "serve.execute",
            tenant=request["tenant"],
            app=request["app"],
            trace_id=request.get("trace_id"),
            backend="thread",
        ):
            return execute_specialize(request, tenant_cache)

    def _account(
        self,
        ticket: _Ticket,
        result: dict | None,
        error: str | None,
        queue_wait: float,
        service: float,
        span=None,
    ) -> None:
        request = ticket.request
        tenant = request["tenant"]
        span_id = getattr(span, "span_id", 0) or None
        self.queue_wait_hist.observe(queue_wait)
        self.service_hist.observe(service)
        be = (result or {}).get("break_even_seconds")
        if be is not None:
            self.break_even_hist.observe(be)
        with self._stats_lock:
            if error is None:
                self.requests["completed"] += 1
            else:
                self.requests["failed"] += 1
            self._tenant_requests[tenant] = (
                self._tenant_requests.get(tenant, 0) + 1
            )
            tenant_count = self._tenant_requests[tenant]
            slot_stats = (result or {}).get("slots")
            if slot_stats:
                totals = self._slot_totals
                for key in ("loads", "reloads", "hits", "evictions"):
                    totals[key] += slot_stats.get(key, 0)
                totals["occupancy_pct_sum"] += slot_stats.get(
                    "occupancy_pct", 0.0
                )
                totals["samples"] += 1
            self._service_ewma = 0.8 * self._service_ewma + 0.2 * service
            if len(self._records) < 100_000:
                self._records.append(
                    {
                        "t_offset": round(
                            time.perf_counter() - self._started, 6
                        ),
                        "tenant": tenant,
                        "app": request["app"],
                        "request_id": request["request_id"] or None,
                        "status": "ok" if error is None else "failed",
                        "queue_wait_ms": round(queue_wait * 1000.0, 3),
                        "service_ms": round(service * 1000.0, 3),
                        "break_even_seconds": be,
                        "candidates": (result or {}).get("candidates"),
                        "cache_hits": (result or {}).get("cache_hits"),
                        "shared": (result or {}).get("shared"),
                        "error": error,
                        "trace_id": request.get("trace_id"),
                        "span_id": span_id,
                    }
                )
        registry = get_metrics()
        if registry.enabled:
            registry.counter(
                "serve.requests.completed"
                if error is None
                else "serve.requests.failed"
            ).inc()
            registry.histogram("serve.queue_wait_seconds").observe(queue_wait)
            registry.histogram("serve.service_seconds").observe(service)
            if be is not None:
                registry.histogram(
                    "serve.break_even_seconds", buckets=BREAK_EVEN_BUCKETS
                ).observe(be)
            hit_rate = self.store.tenant(tenant).cache.hit_rate
            registry.gauge(f"serve.tenant.{tenant}.hit_rate").set(
                round(hit_rate, 6)
            )
            registry.gauge(f"serve.tenant.{tenant}.requests").set(tenant_count)
        if error is None:
            response = {
                "status": "ok",
                "tenant": tenant,
                "app": request["app"],
                "request_id": request["request_id"] or None,
                "result": result,
                "timing": {
                    "queue_wait_ms": round(queue_wait * 1000.0, 3),
                    "service_ms": round(service * 1000.0, 3),
                },
            }
        else:
            response = {"status": "error", "error": error}
        if request.get("trace_id"):
            response["trace"] = {
                "trace_id": request["trace_id"],
                "span_id": f"{span_id:016x}" if span_id else None,
            }
        self._reply(ticket.conn, response)

    # -- telemetry -----------------------------------------------------------
    def _count(self, name: str) -> None:
        registry = get_metrics()
        if registry.enabled:
            registry.counter(name).inc()

    def _set_gauge(self, name: str, value: float) -> None:
        registry = get_metrics()
        if registry.enabled:
            registry.gauge(name).set(value)

    def summary(self, shutdown: str | None = None) -> dict:
        """JSON-safe serve-plane summary (stats op + ledger block)."""
        with self._stats_lock:
            requests = dict(self.requests)
            tenant_requests = dict(self._tenant_requests)
            max_depth = self._max_queue_depth
            inflight = self._inflight
            slot_totals = dict(self._slot_totals)
        store_stats = self.store.stats()
        budget = self.config.tenant_budget
        tenants = {}
        for name, stats in (store_stats.get("tenants") or {}).items():
            entries = stats.get("entries", 0)
            tenants[name] = {
                "requests": tenant_requests.get(name, 0),
                "entries": entries,
                "budget": budget,
                "budget_used_pct": (
                    round(100.0 * entries / budget, 1) if budget else None
                ),
                "hits": stats.get("hits", 0),
                "misses": stats.get("misses", 0),
                "stores": stats.get("stores", 0),
                "evictions": stats.get("evictions", 0),
                "hit_rate": stats.get("hit_rate", 0.0),
            }
        def hist(h: Histogram) -> dict:
            data = h.as_dict()
            return {
                key: data.get(key)
                for key in ("count", "mean", "min", "max", "p50", "p95", "p99")
            }

        summary = {
            "config": {
                "host": self.config.host,
                "port": self.port,
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "backend": self.config.backend,
                "store": str(self.store.root),
                "tenant_budget": self.config.tenant_budget,
            },
            "uptime_seconds": round(time.perf_counter() - self._started, 3),
            "requests": requests,
            "queue": {"depth": self._queue.qsize(), "max_depth": max_depth},
            "inflight": inflight,
            "dedup": {"saved": store_stats.get("dedup_saved", 0)},
            "cross_app_hits": store_stats.get("cross_app_hits", 0),
            "slots": {
                "loads": slot_totals["loads"],
                "reloads": slot_totals["reloads"],
                "hits": slot_totals["hits"],
                "evictions": slot_totals["evictions"],
                "eviction_rate": (
                    round(
                        slot_totals["evictions"] / slot_totals["loads"], 6
                    )
                    if slot_totals["loads"]
                    else 0.0
                ),
                "mean_occupancy_pct": (
                    round(
                        slot_totals["occupancy_pct_sum"]
                        / slot_totals["samples"],
                        3,
                    )
                    if slot_totals["samples"]
                    else 0.0
                ),
            },
            "tenants": tenants,
            "latency": {
                "queue_wait": hist(self.queue_wait_hist),
                "service": hist(self.service_hist),
                "break_even": hist(self.break_even_hist),
            },
            "slo": self._slo_summary(),
        }
        if shutdown is not None:
            summary["shutdown"] = shutdown
        return summary

    def request_records(self) -> list[dict]:
        """Snapshot of the per-request records (requests.jsonl rows)."""
        with self._stats_lock:
            return list(self._records)

    def _slo_summary(self) -> dict:
        """Live error-budget state per declared objective (`repro top`)."""
        from repro.obs.slo import default_objectives, evaluate

        records = self.request_records()
        report = evaluate(
            records, default_objectives(), now=time.perf_counter() - self._started
        )
        return report.summary()
