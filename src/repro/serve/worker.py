"""Per-request specialization execution for the serve plane.

A serving request replays the paper's online loop (Figure 2) for one
application: candidate search under the request's pruning filter (real
clock, Table II), the modelled CAD flow for the selected candidates
(virtual clock, Table III), ICAP reconfiguration, and the break-even
analysis (Table IV) as the response's headline number.

The expensive *application context* — compiling the app and profiling its
datasets — is tenant-independent and identical for every request naming
the app, so it is built once per process and memoized; a request then
costs only search + the CAD work its candidates actually need, with the
tenant's bitstream cache (and the store's single-flight layer) absorbing
repeats. Break-even uses the request's **effective** overhead: cached
candidates contribute no generation time, matching the Section VI-A
protocol where "the whole runtime associated with the generation of the
candidate is subtracted" on a hit.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from math import isfinite
from pathlib import Path

from repro.apps import AppSpec, CompiledApp, compile_app, get_app
from repro.core.asip_sp import AsipSpecializationProcess
from repro.core.breakeven import BreakEvenModel
from repro.ise.pruning import PruningFilter
from repro.ise.selection import CandidateSearch
from repro.obs import get_tracer
from repro.profiling import CoverageAnalysis, classify_blocks
from repro.vm.profiler import ExecutionProfile
from repro.woolcano.machine import WoolcanoMachine
from repro.woolcano.slots import CustomInstructionSlots


@dataclass
class AppContext:
    """Compiled + profiled application state shared by all its requests."""

    spec: AppSpec
    compiled: CompiledApp
    profiles: dict[str, ExecutionProfile]
    coverage: CoverageAnalysis

    @property
    def module(self):
        return self.compiled.module

    @property
    def train(self) -> ExecutionProfile:
        return self.profiles[self.spec.train.name]


_contexts: dict[str, AppContext] = {}
_context_locks: dict[str, threading.Lock] = {}
_registry_lock = threading.Lock()


def clear_contexts() -> None:
    with _registry_lock:
        _contexts.clear()
        _context_locks.clear()


def app_context(name: str) -> AppContext:
    """Memoized per-app context; concurrent first requests build it once."""
    with _registry_lock:
        ctx = _contexts.get(name)
        if ctx is not None:
            return ctx
        lock = _context_locks.setdefault(name, threading.Lock())
    with lock:
        with _registry_lock:
            ctx = _contexts.get(name)
            if ctx is not None:
                return ctx
        tracer = get_tracer()
        with tracer.span("serve.app_context", app=name):
            spec = get_app(name)
            compiled = compile_app(spec)
            profiles = {ds.name: compiled.run(ds).profile for ds in spec.datasets}
            coverage = classify_blocks(compiled.module, list(profiles.values()))
        ctx = AppContext(
            spec=spec, compiled=compiled, profiles=profiles, coverage=coverage
        )
        with _registry_lock:
            _contexts[name] = ctx
        return ctx


def parse_specialize_request(message: dict) -> dict:
    """Validate a ``specialize`` request; returns normalized fields."""
    from repro.serve.protocol import parse_traceparent
    from repro.serve.store import validate_tenant

    tenant = validate_tenant(message.get("tenant"))
    app = message.get("app")
    get_app(app)  # raises KeyError for unknown apps
    pruning_cfg = message.get("pruning") or {}
    time_share = float(pruning_cfg.get("time_share_pct", 50.0))
    max_blocks = int(pruning_cfg.get("max_blocks", 3))
    if not 0.0 < time_share <= 100.0:
        raise ValueError(f"time_share_pct must be in (0, 100], got {time_share}")
    if max_blocks < 1:
        raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
    slots = message.get("slots")
    if slots is not None:
        slots = int(slots)
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
    trace = parse_traceparent(message.get("traceparent"))
    return {
        "tenant": tenant,
        "app": app,
        "time_share_pct": time_share,
        "max_blocks": max_blocks,
        "slots": slots,
        "request_id": str(message.get("request_id") or ""),
        "trace_id": trace["trace_id"] if trace else None,
        "client_span_id": trace["parent_span_id"] if trace else None,
    }


def execute_specialize(request: dict, bitstream_cache) -> dict:
    """Run one validated specialization request; returns the result dict.

    *bitstream_cache* is the tenant's store view (any object with the
    ``key_for / contains / get / put`` protocol); the ASIP-SP pipeline
    consults it before each CAD run exactly as in batch mode.
    """
    ctx = app_context(request["app"])
    machine = (
        WoolcanoMachine(slots=CustomInstructionSlots(capacity=request["slots"]))
        if request.get("slots")
        else WoolcanoMachine()
    )
    pruning = PruningFilter(
        time_share_pct=request["time_share_pct"],
        max_blocks=request["max_blocks"],
    )
    process = AsipSpecializationProcess(
        search=CandidateSearch(pruning=pruning, cost_model=machine.cost_model),
        bitstream_cache=bitstream_cache,
        jobs=1,
    )
    report = process.run(ctx.module, ctx.train)
    speedup = machine.speedup(ctx.module, ctx.train, report.search.selected)

    # Bind the implemented configurations to the machine's UDI slots (one
    # per structural signature, as the APU decodes them): under a --slots
    # budget this exercises the eviction policy and yields the slots.*
    # occupancy/eviction telemetry `repro top` renders per daemon.
    sig_ids: dict[int, int] = {}
    for ci in report.implementations:
        cand = ci.estimate.candidate
        sid = sig_ids.setdefault(cand.signature, len(sig_ids))
        if machine.slots.is_loaded(sid):
            machine.slots.touch(sid)
            continue
        count = ctx.train.count_of(cand.function, cand.block)
        machine.slots.load(
            sid,
            cand.signature,
            ci.implementation.bitstream,
            value=max(0.0, ci.estimate.cycles_saved) * count,
            owner=request["app"],
        )

    # Effective overhead: cache hits contribute no generation time
    # (Section VI-A's accounting); shared-in-request duplicates keep the
    # paper's every-candidate charge, as in batch mode.
    cached_seconds = sum(
        ci.times.total for ci in report.implementations if ci.from_cache
    )
    effective_overhead = report.total_overhead_seconds - cached_seconds
    breakeven = BreakEvenModel(cost_model=machine.cost_model).analyze(
        ctx.module,
        ctx.train,
        ctx.coverage,
        report.search.selected,
        effective_overhead,
    )
    be = breakeven.live_aware_seconds
    return {
        "candidates": report.candidate_count,
        "candidates_failed": len(report.failed),
        "cache_hits": sum(1 for ci in report.implementations if ci.from_cache),
        "shared": sum(
            1 for ci in report.implementations if ci.shared_with_signature
        ),
        "speedup": round(speedup.ratio, 9),
        "search_ms": round(report.search.search_seconds * 1000.0, 6),
        "toolflow_seconds": round(report.toolflow_seconds, 6),
        "effective_overhead_seconds": round(effective_overhead, 6),
        "break_even_seconds": round(be, 6) if isfinite(be) else None,
        "slots": machine.slots.stats(),
    }


def process_request_worker(
    request: dict,
    store_root: str,
    tenant_budget: int | None,
    tracing: bool,
    metrics: bool,
):
    """Execute one request in a pool child; returns mergeable evidence.

    Mirrors :func:`repro.experiments.runner._process_worker`: the child
    swaps in fresh observability globals, runs the request against a
    fresh per-request cache view of the tenant's on-disk namespace
    (counters therefore carry exactly this request's delta), and returns
    ``(result, span records, metrics snapshot, cache counters)`` for the
    parent to absorb. Candidate-level single-flight is in-process only:
    with the process backend, cross-request dedup falls back to the
    persistent store's contains-probe. App contexts are memoized per
    child, so a reused pool worker pays the compile/profile cost once.
    """
    from repro.core.cache import PersistentBitstreamCache
    from repro.obs.export import tracer_records
    from repro.obs.log import EventLog, set_log
    from repro.obs.metrics import MetricsRegistry, set_metrics
    from repro.obs.tracer import Tracer, set_tracer

    tracer = set_tracer(Tracer(enabled=tracing))
    registry = set_metrics(MetricsRegistry(enabled=metrics))
    set_log(EventLog(enabled=False))
    cache = PersistentBitstreamCache(
        root=Path(store_root) / "tenants" / request["tenant"],
        max_entries=tenant_budget,
    )
    # The child's root span continues the request's trace context: the
    # parent absorbs these records under the serve.request span, so the
    # stitched tree crosses the process boundary with parent/child span
    # ids intact (the pid attribute makes the hop visible).
    with tracer.span(
        "serve.execute",
        tenant=request["tenant"],
        app=request["app"],
        request_id=request.get("request_id") or None,
        trace_id=request.get("trace_id"),
        backend="process",
        pid=os.getpid(),
    ):
        result = execute_specialize(request, cache)
    return (
        result,
        tracer_records(tracer) if tracing else [],
        registry.snapshot() if metrics else None,
        cache.counters(),
    )
