"""Shared multi-tenant bitstream store with single-flight dedup.

Section VI-A's bitstream cache assumes one application re-running; a
serving deployment (per "Instruction-set Selection for Multi-application
based ASIP Design", PAPERS.md) sees *many* tenants whose concurrent
specialization requests race for the CAD flow and share structurally
equal candidates. Two mechanisms generalize the
:class:`repro.core.cache.PersistentBitstreamCache` for that setting:

- **per-tenant namespaces** — every tenant gets its own cache directory
  and eviction budget under the store root; tenants can never read each
  other's entries (a tenant's candidate signatures leak its code
  structure, so isolation is a correctness property, not just hygiene);
- **single-flight dedup** — when N concurrent requests of one tenant
  need the same candidate signature, exactly one (the *builder*) runs
  the CAD flow while the rest subscribe to its completion and then read
  the stored result as an ordinary cache hit. Hit/miss accounting is
  exactly what a serial arrival order would produce (1 miss + N-1 hits);
  the deduplicated CAD runs are counted separately as ``dedup_saved``.

Within a tenant namespace, entry keys are already **canonical**:
:meth:`repro.core.cache.PersistentBitstreamCache.key_for` hashes the
candidate's structural signature (opcodes, types, wiring — nothing
application-specific), so structurally-equal subgraphs from *different
applications of the same tenant* map to one entry. The store proves the
sharing happens: :meth:`tenant` accepts the requesting application's
name, the first application to store a key is recorded as its owner, and
every hit served to a different application increments
``cross_app_hits`` (and the ``store.cross_app_hits`` metric) — the
fleet-mix simulator's evidence that one CAD run serves many apps.
Cross-*tenant* sharing stays off by design: a tenant's candidate
signatures leak its code structure, so isolation is a correctness
property.

A :class:`TenantCache` implements the ``key_for / contains / get / put``
protocol that :class:`repro.core.asip_sp.AsipSpecializationProcess`
expects of its ``bitstream_cache``, so the specialization pipeline plugs
in unchanged.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cache import PersistentBitstreamCache
from repro.obs import get_tracer

#: Tenant names become directory names: constrain them hard.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: How long a subscriber waits for the builder before assuming the
#: builder died and retrying as a builder itself. Real (not virtual)
#: seconds; one modelled CAD run takes well under a second of real time.
FLIGHT_TIMEOUT_SECONDS = 60.0


def validate_tenant(name: str) -> str:
    """Return *name* if it is a safe tenant namespace, else raise."""
    if not isinstance(name, str) or not _TENANT_RE.match(name) or ".." in name:
        raise ValueError(f"invalid tenant name {name!r}")
    return name


@dataclass
class _Flight:
    """One in-progress CAD build of a (tenant, key) pair."""

    owner: int  # builder's thread ident
    event: threading.Event = field(default_factory=threading.Event)
    waiters: int = 0
    #: Span id of the builder's innermost open span at flight creation, so
    #: follower requests' dedup-wait spans can link to the leader's trace.
    leader_span_id: int | None = None


class SharedBitstreamStore:
    """Multi-tenant persistent bitstream store.

    One store-wide lock serializes cache metadata I/O and the flight
    table; CAD work itself (and flight *waits*) happen outside it.
    """

    def __init__(
        self,
        root,
        tenant_budget: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.tenant_budget = tenant_budget
        self._lock = threading.RLock()
        self._tenants: dict[str, PersistentBitstreamCache] = {}
        self._flights: dict[tuple[str, str], _Flight] = {}
        self.dedup_saved = 0
        #: First application to store each (tenant, key) — in-memory, like
        #: ``dedup_saved``: attribution is per store lifetime.
        self._key_owners: dict[tuple[str, str], str] = {}
        self.cross_app_hits = 0

    # -- tenants -------------------------------------------------------------
    def tenant(self, name: str, app: str | None = None) -> "TenantCache":
        """The (created-on-first-use) namespace view for one tenant.

        *app* attributes this view's lookups to an application, enabling
        the cross-application sharing counter.
        """
        name = validate_tenant(name)
        with self._lock:
            cache = self._tenants.get(name)
            if cache is None:
                cache = PersistentBitstreamCache(
                    root=self.root / "tenants" / name,
                    max_entries=self.tenant_budget,
                )
                self._tenants[name] = cache
            return TenantCache(store=self, name=name, cache=cache, app=app)

    def tenant_names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    # -- single-flight plumbing ----------------------------------------------
    def _acquire_or_wait(self, tenant: str, key: str):
        """Become the builder (returns None) or the flight to wait on."""
        fkey = (tenant, key)
        leader = get_tracer().current_span()
        with self._lock:
            flight = self._flights.get(fkey)
            if flight is None:
                self._flights[fkey] = _Flight(
                    owner=threading.get_ident(),
                    leader_span_id=leader.span_id if leader is not None else None,
                )
                return None
            flight.waiters += 1
            return flight

    def _resolve(self, tenant: str, key: str) -> None:
        """Builder finished (stored or failed): wake the subscribers."""
        with self._lock:
            flight = self._flights.pop((tenant, key), None)
        if flight is not None:
            flight.event.set()

    def _expire(self, tenant: str, key: str, flight: _Flight) -> None:
        """Drop a flight whose builder never resolved it (timeout path)."""
        with self._lock:
            if self._flights.get((tenant, key)) is flight:
                del self._flights[(tenant, key)]
        flight.event.set()

    def release_thread_flights(self) -> int:
        """Resolve every flight owned by the calling thread.

        A builder that stores its result resolves its flight in
        :meth:`TenantCache.put`; a builder whose CAD run *failed* never
        calls put, so the server's request worker calls this in a
        ``finally`` — subscribers wake, miss, and retry as builders,
        which matches the serial failure semantics (every occurrence of
        a failing candidate re-runs the flow).
        """
        me = threading.get_ident()
        with self._lock:
            mine = [
                (fkey, flight)
                for fkey, flight in self._flights.items()
                if flight.owner == me
            ]
            for fkey, _ in mine:
                del self._flights[fkey]
        for _, flight in mine:
            flight.event.set()
        return len(mine)

    def _count_dedup(self) -> None:
        with self._lock:
            self.dedup_saved += 1
        from repro.obs import get_metrics

        registry = get_metrics()
        if registry.enabled:
            registry.counter("serve.dedup.saved").inc()

    # -- cross-application attribution ---------------------------------------
    def _note_store(self, tenant: str, key: str, app: str | None) -> None:
        """Record the first application to store a (tenant, key) entry."""
        if app is None:
            return
        with self._lock:
            self._key_owners.setdefault((tenant, key), app)

    def _note_hit(self, tenant: str, key: str, app: str | None) -> None:
        """Count a hit served to a different application than the owner."""
        if app is None:
            return
        with self._lock:
            owner = self._key_owners.get((tenant, key))
            if owner is None or owner == app:
                return
            self.cross_app_hits += 1
        from repro.obs import get_metrics

        registry = get_metrics()
        if registry.enabled:
            registry.counter("store.cross_app_hits").inc()

    # -- accounting ----------------------------------------------------------
    def stats(self) -> dict:
        """Per-tenant and combined statistics (JSON-safe)."""
        with self._lock:
            tenants = {
                name: cache.stats() for name, cache in sorted(self._tenants.items())
            }
            dedup = self.dedup_saved
            inflight = len(self._flights)
            cross_app = self.cross_app_hits
        return {
            "root": str(self.root),
            "tenant_budget": self.tenant_budget,
            "dedup_saved": dedup,
            "cross_app_hits": cross_app,
            "flights_inflight": inflight,
            "tenants": tenants,
        }

    def combined_stats(self) -> dict:
        """Flat cache-stats dict summed over tenants.

        Shape-compatible with
        :meth:`repro.core.cache.PersistentBitstreamCache.stats`, so a
        serve run's manifest ``cache`` block feeds the regression
        sentinel's cache-demotion logic unchanged.
        """
        with self._lock:
            caches = list(self._tenants.values())
        totals = {
            "root": str(self.root),
            "entries": 0,
            "bytes": 0,
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
        }
        for cache in caches:
            stats = cache.stats()
            for key in ("entries", "bytes", "hits", "misses", "stores", "evictions"):
                totals[key] += stats.get(key, 0)
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = round(totals["hits"] / lookups, 6) if lookups else 0.0
        with self._lock:
            totals["cross_app_hits"] = self.cross_app_hits
        return totals


@dataclass
class TenantCache:
    """One tenant's namespace view, pluggable into the ASIP-SP pipeline.

    Implements the ``bitstream_cache`` protocol of
    :class:`repro.core.asip_sp.AsipSpecializationProcess` with
    single-flight semantics layered over the tenant's persistent cache.
    """

    store: SharedBitstreamStore
    name: str
    cache: PersistentBitstreamCache
    #: Requesting application, for cross-app sharing attribution (None =
    #: unattributed, e.g. the batch pipeline).
    app: str | None = None

    def key_for(self, candidate, device, **kwargs) -> str:
        return PersistentBitstreamCache.key_for(candidate, device, **kwargs)

    def contains(self, key: str) -> bool:
        with self.store._lock:
            return self.cache.contains(key)

    def get(self, key: str, candidate=None):
        """Counting lookup with single-flight miss coalescing.

        Returns the cached implementation, or None when the caller has
        become the *builder* for this (tenant, key) and must run the CAD
        flow and :meth:`put` (or fail, releasing its flights).
        """
        waited = False
        while True:
            with self.store._lock:
                if self.cache.contains(key):
                    impl = self.cache.get(key, candidate)
                    if impl is not None:
                        if waited:
                            self.store._count_dedup()
                        self.store._note_hit(self.name, key, self.app)
                        return impl
                    # contains() raced a corrupt entry: fall through and
                    # compete to build.
                flight = self.store._acquire_or_wait(self.name, key)
                if flight is None:
                    # Builder: count the miss exactly once, like a serial
                    # lookup would, and let the caller run the CAD flow.
                    return self.cache.get(key, candidate)
            # Follower: the wait is part of this request's latency, so it
            # gets its own span in the request's trace, linked to the
            # leader (builder) span whose CAD run we are subscribing to.
            with get_tracer().span(
                "store.dedup.wait",
                tenant=self.name,
                key=key[:16],
                leader_span_id=flight.leader_span_id,
            ) as wait_span:
                resolved = flight.event.wait(FLIGHT_TIMEOUT_SECONDS)
                wait_span.set_attr("timed_out", not resolved)
            if not resolved:
                self.store._expire(self.name, key, flight)
            waited = True

    def put(self, key: str, impl) -> None:
        with self.store._lock:
            self.cache.put(key, impl)
        self.store._note_store(self.name, key, self.app)
        self.store._resolve(self.name, key)

    def stats(self) -> dict:
        with self.store._lock:
            return self.cache.stats()
