"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``tables [1|2|3|4|all]`` — regenerate the paper's tables;
- ``figures`` — print the textual renderings of Figures 1 and 2;
- ``apps`` — list the benchmark suite;
- ``analyze <app>`` — full analysis of one application (Table I+II row);
- ``jit <app>`` — run the end-to-end JIT flow on one application;
- ``timeline <app>`` — concurrent-specialization timeline (extension).
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.util.timefmt import format_dhms, format_hms


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro import experiments

    which = args.which
    generators = {
        "1": experiments.generate_table1,
        "2": experiments.generate_table2,
        "3": experiments.generate_table3,
        "4": experiments.generate_table4,
    }
    selected = generators.keys() if which == "all" else [which]
    for key in selected:
        table = generators[key]()
        print(table.render())
        print()
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    from repro.experiments import generate_figures

    figs = generate_figures()
    print(figs["figure1"])
    print()
    print(figs["figure2"])
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import ALL_APPS

    for app in ALL_APPS:
        datasets = ", ".join(f"{d.name}={d.size}" for d in app.datasets)
        print(f"{app.name:12s} [{app.domain:10s}] {app.description}")
        print(f"{'':12s} datasets: {datasets}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.experiments import analyze_app

    a = analyze_app(args.app)
    comp = a.compiled.compilation
    print(f"{a.name} ({a.domain})")
    print(
        f"  code: {comp.files} files, {comp.loc} LOC, {comp.basic_blocks} blocks, "
        f"{comp.instructions} instructions (compiled in {comp.compile_seconds:.2f}s)"
    )
    print(
        f"  runtime: VM {a.runtime.vm_seconds:.3f}s, native "
        f"{a.runtime.native_seconds:.3f}s (ratio {a.runtime.ratio:.2f})"
    )
    print(
        f"  coverage: live {a.coverage.live_pct:.1f}% / dead "
        f"{a.coverage.dead_pct:.1f}% / const {a.coverage.const_pct:.1f}%"
    )
    print(
        f"  kernel: {a.kernel.size_pct:.1f}% of code, "
        f"{a.kernel.freq_pct:.1f}% of time"
    )
    print(
        f"  ASIP ratio: {a.asip_max.ratio:.2f}x upper bound, "
        f"{a.asip_pruned.ratio:.2f}x with @50pS3L "
        f"({a.specialization.candidate_count} candidates)"
    )
    print(
        f"  overhead: search {a.search_pruned.search_seconds * 1000:.2f} ms, "
        f"tool flow {format_hms(a.specialization.toolflow_seconds)} (m:s)"
    )
    be = a.breakeven.live_aware_seconds
    print(
        "  break-even: "
        + (format_dhms(be) + " (d:h:m:s)" if math.isfinite(be) else "never")
    )
    return 0


def _cmd_jit(args: argparse.Namespace) -> int:
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    spec = get_app(args.app)
    compiled = compile_app(spec)
    system = JitIseSystem()
    result = system.run_application(
        compiled.compilation,
        dataset_size=spec.train.size,
        dataset_seed=spec.train.seed,
    )
    print(f"{spec.name}: ASIP ratio {result.asip_ratio:.2f}x")
    print(f"  VM/native ratio: {result.runtime.ratio:.2f}")
    print(
        f"  custom instructions: {result.specialization.candidate_count}, "
        f"tool flow {format_hms(result.specialization.toolflow_seconds)} (m:s)"
    )
    print(f"  patched output identical: {result.output_equal}")
    return 0 if result.output_equal else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core import AsipSpecializationProcess, TimelineSimulator
    from repro.apps import compile_app, get_app
    from repro.profiling import classify_blocks

    spec = get_app(args.app)
    compiled = compile_app(spec)
    profiles = {ds.name: compiled.run(ds).profile for ds in spec.datasets}
    coverage = classify_blocks(compiled.module, list(profiles.values()))
    report = AsipSpecializationProcess().run(compiled.module, profiles["train"])
    result = TimelineSimulator().simulate(
        compiled.module, profiles["train"], coverage, report
    )
    print(result.event_log())
    print(f"\nfinal live-code rate: {result.final_rate:.2f}x baseline")
    for label, value in (
        ("dedicated-host break-even", result.dedicated_break_even),
        ("self-hosted break-even", result.self_hosted_break_even),
    ):
        print(
            f"{label}: "
            + (format_dhms(value) if math.isfinite(value) else "never")
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JIT instruction-set-extension reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.add_argument(
        "which", nargs="?", default="all", choices=["1", "2", "3", "4", "all"]
    )
    p_tables.set_defaults(fn=_cmd_tables)

    sub.add_parser("figures", help="print Figures 1 and 2").set_defaults(
        fn=_cmd_figures
    )
    sub.add_parser("apps", help="list the benchmark suite").set_defaults(
        fn=_cmd_apps
    )

    for name, fn, help_text in (
        ("analyze", _cmd_analyze, "analyze one application"),
        ("jit", _cmd_jit, "run the end-to-end JIT flow on one application"),
        ("timeline", _cmd_timeline, "concurrent-specialization timeline"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("app", help="application name, e.g. fft or 470.lbm")
        p.set_defaults(fn=fn)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
