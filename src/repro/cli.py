"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``tables [1|2|3|4|all]`` — regenerate the paper's tables;
- ``figures`` — print the textual renderings of Figures 1 and 2;
- ``apps`` — list the benchmark suite;
- ``analyze <app>`` — full analysis of one application (Table I+II row);
- ``jit <app>`` — run the end-to-end JIT flow on one application;
- ``timeline <app>`` — concurrent-specialization timeline (extension);
- ``trace <file>`` — replay a saved trace as a per-stage time table;
- ``profile <app|file>`` — hierarchical self/total-time profile of a run
  (hot-path table, collapsed-stack flamegraph lines, profile tree);
- ``heat <app>`` — heat-annotated IR listing (per-block time share,
  kernel blocks flagged);
- ``fidelity`` — compare a run's tables against the paper's published
  values and write a machine-readable ``BENCH_*.json`` report;
- ``runs list|show|diff|gc|trend`` — inspect or garbage-collect the run
  ledger (``.repro-runs/``); ``gc`` compacts pruned manifests into
  ``history.jsonl`` and ``trend`` renders per-cell time series across
  all recorded history;
- ``regress`` — compare the latest recorded run against a baseline run
  cell-by-cell, exiting non-zero on regression (CI gate); ``--history N``
  derives measured-cell noise bands from the last N runs;
- ``slo RUN`` — evaluate the serve plane's error-budget objectives over a
  recorded run's ``requests.jsonl``, appending burn-rate alerts to its
  ``alerts.jsonl`` (exit 1 on a breached objective);
- ``anomaly`` — robust changepoint detection of the newest run's manifest
  cells against the fleet history (exit 1 on anomalies);
- ``critpath RUN`` — reconstruct the specialization DAG of a recorded run
  from its span trace: critical path and per-stage slack on both clocks,
  plus the Amdahl-style break-even headroom table;
- ``whatif RUN`` — replay a recorded run under hypothetical knobs (cache
  hit rate, CAD speedups, parallel CAD workers); ``--grid`` regenerates
  the Table IV grid from measured spans and cross-checks it against the
  analytic model; ``--slots N`` / ``--policy P`` instead replay a
  recorded fleet-mix run under different slot counts or eviction
  policies;
- ``mix`` — sweep the fleet workload-mix grid (mix entropy x eviction
  policy x slot capacity) through the slot-contention simulator and
  write ``BENCH_mix.json``, exiting non-zero if break-even-aware
  eviction fails to beat LRU on the contended mix;
- ``cache stats|clear`` — inspect or empty the persistent bitstream cache
  (``.repro-cache/``, Section VI-A);
- ``bench`` — measure the parallel runner and the persistent cache against
  the serial cold baseline, writing ``BENCH_parallel.json``;
- ``serve`` — run the specialization daemon (:mod:`repro.serve`): a
  bounded admission queue and worker pool over the shared multi-tenant
  bitstream store, with request-level SLO telemetry;
- ``loadgen`` — drive a live or embedded daemon with a deterministic
  Poisson request mix (cold + warm phases) and write ``BENCH_serve.json``;
- ``top`` — live ASCII view of a running daemon's queue/latency/tenant
  statistics;
- ``tail <file>`` — render the last records of a JSONL event log.

Every command accepts ``--trace FILE`` (export a JSONL span trace of the
run), ``--metrics`` (print a metrics snapshot after the run), ``--log
FILE`` (write a structured JSONL event log), and ``--ledger [DIR]``
(record the run — manifest, trace, and event log — in the run ledger);
see :mod:`repro.obs`. The suite-running commands (``analyze``, ``tables``,
``fidelity``) additionally accept ``--jobs N`` / ``--backend`` (worker-pool
sharding) and ``--cache [DIR]`` (persistent bitstream cache).
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.util.timefmt import format_dhms, format_hms


def _parallel_kwargs(args: argparse.Namespace) -> dict:
    """The suite runner's jobs/backend/cache kwargs from parsed options."""
    return {
        "jobs": getattr(args, "jobs", 1),
        "backend": getattr(args, "backend", "process"),
        "cache": getattr(args, "cache", None),
    }


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro import experiments

    which = args.which
    generators = {
        "1": experiments.generate_table1,
        "2": experiments.generate_table2,
        "3": experiments.generate_table3,
        "4": experiments.generate_table4,
    }
    selected = generators.keys() if which == "all" else [which]
    for key in selected:
        table = generators[key](**_parallel_kwargs(args))
        print(table.render())
        print()
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    from repro.experiments import generate_figures

    figs = generate_figures()
    print(figs["figure1"])
    print()
    print(figs["figure2"])
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import ALL_APPS

    for app in ALL_APPS:
        datasets = ", ".join(f"{d.name}={d.size}" for d in app.datasets)
        print(f"{app.name:12s} [{app.domain:10s}] {app.description}")
        print(f"{'':12s} datasets: {datasets}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.domain:
        return _cmd_analyze_domain(args)
    if not args.app:
        print(
            "error: analyze needs an application name or --domain",
            file=sys.stderr,
        )
        return 2

    from repro.experiments import analyze_app
    from repro.experiments.runner import resolve_bitstream_cache

    bitstream_cache = resolve_bitstream_cache(getattr(args, "cache", None))
    a = analyze_app(
        args.app,
        jobs=getattr(args, "jobs", 1),
        bitstream_cache=bitstream_cache,
    )
    _attach_run_scalars([a])
    if bitstream_cache is not None:
        from repro.obs.ledger import current_run

        recorder = current_run()
        if recorder is not None:
            recorder.attach_cache(bitstream_cache.stats())
    comp = a.compiled.compilation
    print(f"{a.name} ({a.domain})")
    print(
        f"  code: {comp.files} files, {comp.loc} LOC, {comp.basic_blocks} blocks, "
        f"{comp.instructions} instructions (compiled in {comp.compile_seconds:.2f}s)"
    )
    print(
        f"  runtime: VM {a.runtime.vm_seconds:.3f}s, native "
        f"{a.runtime.native_seconds:.3f}s (ratio {a.runtime.ratio:.2f})"
    )
    print(
        f"  coverage: live {a.coverage.live_pct:.1f}% / dead "
        f"{a.coverage.dead_pct:.1f}% / const {a.coverage.const_pct:.1f}%"
    )
    print(
        f"  kernel: {a.kernel.size_pct:.1f}% of code, "
        f"{a.kernel.freq_pct:.1f}% of time"
    )
    print(
        f"  ASIP ratio: {a.asip_max.ratio:.2f}x upper bound, "
        f"{a.asip_pruned.ratio:.2f}x with @50pS3L "
        f"({a.specialization.candidate_count} candidates)"
    )
    print(
        f"  overhead: search {a.search_pruned.search_seconds * 1000:.2f} ms, "
        f"tool flow {format_hms(a.specialization.toolflow_seconds)} (m:s)"
    )
    be = a.breakeven.live_aware_seconds
    print(
        "  break-even: "
        + (format_dhms(be) + " (d:h:m:s)" if math.isfinite(be) else "never")
    )
    return 0


def _attach_run_scalars(analyses) -> None:
    """Record scalar results on the active ledger run, if any."""
    from repro.obs.ledger import current_run, scalars_from_analyses

    recorder = current_run()
    if recorder is not None:
        recorder.attach_scalars(scalars_from_analyses(analyses))


def _cmd_analyze_domain(args: argparse.Namespace) -> int:
    from repro.experiments import analyze_suite

    domain = None if args.domain == "all" else args.domain
    # analyze_suite attaches its scalars (and cache statistics) to the
    # active ledger run itself.
    analyses = analyze_suite(domain, **_parallel_kwargs(args))
    for a in analyses:
        be = a.breakeven.live_aware_seconds
        print(
            f"{a.name:12s} [{a.domain:10s}] "
            f"ASIP {a.asip_pruned.ratio:5.2f}x  "
            f"{a.specialization.candidate_count:3d} candidates  "
            f"tool flow {format_hms(a.specialization.toolflow_seconds)} (m:s)  "
            f"break-even "
            + (format_dhms(be) if math.isfinite(be) else "never")
        )
    return 0


def _cmd_jit(args: argparse.Namespace) -> int:
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    spec = get_app(args.app)
    compiled = compile_app(spec)
    system = JitIseSystem()
    result = system.run_application(
        compiled.compilation,
        dataset_size=spec.train.size,
        dataset_seed=spec.train.seed,
    )
    print(f"{spec.name}: ASIP ratio {result.asip_ratio:.2f}x")
    print(f"  VM/native ratio: {result.runtime.ratio:.2f}")
    print(
        f"  custom instructions: {result.specialization.candidate_count}, "
        f"tool flow {format_hms(result.specialization.toolflow_seconds)} (m:s)"
    )
    print(f"  patched output identical: {result.output_equal}")
    return 0 if result.output_equal else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core import AsipSpecializationProcess, TimelineSimulator
    from repro.apps import compile_app, get_app
    from repro.profiling import classify_blocks

    spec = get_app(args.app)
    compiled = compile_app(spec)
    profiles = {ds.name: compiled.run(ds).profile for ds in spec.datasets}
    coverage = classify_blocks(compiled.module, list(profiles.values()))
    report = AsipSpecializationProcess().run(compiled.module, profiles["train"])
    result = TimelineSimulator().simulate(
        compiled.module, profiles["train"], coverage, report
    )
    print(result.event_log())
    print(f"\nfinal live-code rate: {result.final_rate:.2f}x baseline")
    for label, value in (
        ("dedicated-host break-even", result.dedicated_break_even),
        ("self-hosted break-even", result.self_hosted_break_even),
    ):
        print(
            f"{label}: "
            + (format_dhms(value) if math.isfinite(value) else "never")
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        records = obs.read_jsonl(args.file)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    errors = obs.validate_trace(records)
    if errors:
        for err in errors:
            print(f"invalid trace: {err}", file=sys.stderr)
        return 1
    print(obs.render_stage_table(records))
    if args.timeline:
        print()
        print(obs.render_timeline(records))
    if args.chrome:
        snapshot = _sibling_metrics(args.file)
        obs.write_chrome_trace(records, args.chrome, snapshot=snapshot)
        extra = " (+ metrics counter tracks)" if snapshot else ""
        print(f"\nwrote Chrome trace_event file: {args.chrome}{extra}")
    return 0


def _sibling_metrics(trace_path) -> dict | None:
    """Metrics snapshot from a ledger manifest next to *trace_path*, if any.

    A ledger run directory holds ``trace.jsonl`` and ``manifest.json``
    side by side; replaying such a trace can therefore also export the
    run's counters as Chrome counter tracks.
    """
    import json
    from pathlib import Path

    manifest = Path(trace_path).parent / "manifest.json"
    try:
        data = json.loads(manifest.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    snapshot = data.get("metrics")
    return snapshot if isinstance(snapshot, dict) else None


def _traced_run_records(app_name: str):
    """Run the end-to-end JIT flow on *app_name* under the global tracer
    and return the finished spans as records.

    If tracing is already on (the user passed ``--trace``), the run's spans
    simply join the global trace and get exported too; otherwise tracing is
    enabled just for this run and switched back off afterwards.
    """
    from repro import obs
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    if not was_enabled:
        obs.enable_tracing()
    try:
        spec = get_app(app_name)
        compiled = compile_app(spec)
        JitIseSystem().run_application(
            compiled.compilation,
            dataset_size=spec.train.size,
            dataset_seed=spec.train.seed,
        )
        return obs.tracer_records(tracer)
    finally:
        if not was_enabled:
            obs.disable_tracing()


def _cmd_profile(args: argparse.Namespace) -> int:
    import os

    from repro import obs

    if os.path.exists(args.target):
        try:
            records = obs.read_jsonl(args.target)
        except ValueError as exc:
            print(f"invalid trace: {exc}", file=sys.stderr)
            return 1
    else:
        records = _traced_run_records(args.target)
    if not records:
        print("(empty trace: nothing to profile)")
        return 0
    profile = obs.build_profile(records)
    print(profile.hot_table(clock=args.clock, top=args.top).render())
    if args.tree:
        print()
        print(profile.render(clock=args.clock))
    if args.collapsed:
        lines = profile.collapsed(clock=args.clock)
        if args.collapsed == "-":
            print()
            for line in lines:
                print(line)
        else:
            with open(args.collapsed, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + ("\n" if lines else ""))
            print(
                f"\nwrote {len(lines)} collapsed stacks ({args.clock} time) "
                f"to {args.collapsed}"
            )
    return 0


def _cmd_heat(args: argparse.Namespace) -> int:
    from repro.apps import compile_app, get_app
    from repro.obs.heat import compute_heat, render_heat

    spec = get_app(args.app)
    compiled = compile_app(spec)
    profile = compiled.run(spec.train).profile
    heat = compute_heat(
        compiled.module, profile, kernel_threshold=args.threshold
    )
    try:
        print(
            render_heat(
                compiled.module, heat, function=args.function, top=args.top
            )
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.top_opcodes:
        from repro.util.tables import Table
        from repro.vm.costmodel import PPC405_COST_MODEL

        counts = profile.opcode_counts(compiled.module)
        cycles = profile.opcode_cycles(compiled.module, PPC405_COST_MODEL)
        total = sum(cycles.values()) or 1.0
        table = Table(
            ["opcode", "dyn count", "virt cycles", "cycles %"],
            title=f"Opcode rollup (top {args.top_opcodes})",
        )
        ranked = sorted(
            counts, key=lambda op: (-cycles.get(op, 0.0), -counts[op], op)
        )
        for op in ranked[: args.top_opcodes]:
            table.add_row(
                [
                    op,
                    f"{counts[op]:,}",
                    f"{cycles.get(op, 0.0):,.0f}",
                    f"{100 * cycles.get(op, 0.0) / total:.1f}",
                ]
            )
        print()
        print(table.render())
    return 0


def _cmd_vmprof(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.obs.ledger import current_run
    from repro.obs.vmprof import (
        profile_app,
        render_vmprof,
        vm_manifest_block,
        vmprof_json,
    )

    prof = profile_app(
        args.app,
        dataset=args.dataset,
        sample_interval=args.sample,
        calibrate=not args.no_calibrate,
        max_candidates=args.candidates,
        fuse=args.fuse_top if args.fuse else 0,
    )
    print(render_vmprof(prof, top=args.top))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json_mod.dump(vmprof_json(prof), fh, indent=2)
            fh.write("\n")
        print(f"\nwrote vmprof report: {args.json}")
    recorder = current_run()
    if recorder is not None:
        recorder.attach_extra("vm", vm_manifest_block(prof))
    if prof.fusion is not None and not prof.fusion.identical:
        print(
            "error: fused run drifted from the plain path "
            "(steps/blocks/virtual clock)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_vm(args: argparse.Namespace) -> int:
    from repro.obs.bench import render_vm_bench, run_vm_bench

    report = run_vm_bench(
        apps=args.apps.split(",") if args.apps else None,
        sample_interval=args.sample,
        out=args.out,
        pairs=args.pairs,
        fuse=args.fuse_top if args.fuse else 0,
    )
    print(render_vm_bench(report))
    if args.out:
        print(f"\nwrote VM benchmark report: {args.out}")
    if not report["totals"]["virtual_identical"]:
        print(
            "error: virtual clock drifted under sampling", file=sys.stderr
        )
        return 1
    if args.fuse and not report["totals"].get("fused_virtual_identical"):
        print(
            "error: fused run drifted from the plain path "
            "(steps/blocks/virtual clock)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from repro.obs.fidelity import default_report_path, run_fidelity

    out = args.out or default_report_path(args.domain)
    report = run_fidelity(
        domain=args.domain,
        out=out,
        include_table4=args.full,
        **_parallel_kwargs(args),
    )
    print(report.render())
    print(f"\nwrote fidelity report: {out}")
    if not report.ok:
        for cell in report.failures:
            print(
                f"FAIL {cell.table} {cell.row}/{cell.column}: "
                f"expected {cell.expected:g}, got {cell.actual:g}",
                file=sys.stderr,
            )
        return 1
    return 0


def _resolve_run_replay(args: argparse.Namespace):
    """Shared critpath/whatif preamble: (ledger, run_id, replay) or an exit code."""
    from repro import obs
    from repro.obs.critpath import RunReplay
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(args.ledger_dir)
    try:
        run_id = ledger.resolve(args.run)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace_path = ledger.run_dir(run_id) / "trace.jsonl"
    if not trace_path.is_file():
        print(
            f"error: run {run_id} has no trace.jsonl "
            "(record the run with --ledger so its spans are kept)",
            file=sys.stderr,
        )
        return 2
    try:
        records = obs.read_jsonl(trace_path)
    except ValueError as exc:
        print(f"error: invalid trace for run {run_id}: {exc}", file=sys.stderr)
        return 2
    replay = RunReplay.from_records(records)
    if not replay.apps:
        print(
            f"error: run {run_id}'s trace contains no specialization "
            "processes (asip_sp.run spans)",
            file=sys.stderr,
        )
        return 2
    return ledger, run_id, replay


def _breakeven_inputs_or_none(replay):
    """Per-app break-even inputs, or None when an app is not in the registry."""
    from repro.obs.whatif import breakeven_inputs

    try:
        return breakeven_inputs(replay.app_names)
    except KeyError as exc:
        print(
            f"note: break-even replay unavailable (unknown app {exc}); "
            "overhead-only analysis",
            file=sys.stderr,
        )
        return None


def _cmd_critpath(args: argparse.Namespace) -> int:
    from repro.obs import critpath as cp

    resolved = _resolve_run_replay(args)
    if isinstance(resolved, int):
        return resolved
    ledger, run_id, replay = resolved

    virtual = cp.analyze_critical_path(replay, "virtual")
    real = cp.analyze_critical_path(replay, "real")
    candidates = sum(len(a.candidates) for a in replay.apps)
    print(
        f"run {run_id}: {len(replay.apps)} app(s) "
        f"({', '.join(replay.app_names)}), {candidates} candidate chain(s)"
    )
    print()
    print(cp.render_critical_path(virtual))
    table3 = cp.table3_summary(replay)
    if table3 is not None:
        print()
        print(cp.render_table3_summary(table3))
    print()
    print(cp.render_critical_path(real))

    headroom = None
    inputs = _breakeven_inputs_or_none(replay)
    if inputs is not None:
        headroom = cp.headroom_table(replay, inputs)
        print()
        print(headroom.render())

    if not args.no_save:
        path = ledger.attach_block(
            run_id,
            "critpath",
            cp.critpath_block(virtual, real, headroom, table3),
        )
        print(f"\nattached critpath block to {path}")
    return 0


def _parse_speedup_specs(specs: list[str]) -> tuple[float, tuple]:
    """Parse repeatable ``--cad-speedup`` values: ``PCT`` or ``STAGE=PCT``."""
    uniform = 0.0
    per_stage: list[tuple[str, float]] = []
    for spec in specs:
        stage, sep, value = spec.partition("=")
        if sep:
            per_stage.append((stage.strip(), float(value)))
        else:
            uniform = float(spec)
    return uniform, tuple(per_stage)


def _cmd_whatif_mix(args: argparse.Namespace) -> int:
    """``repro whatif --slots/--policy``: replay a recorded fleet mix."""
    from repro.obs import whatif as wi
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(args.ledger_dir)
    try:
        run_id = ledger.resolve(args.run)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifest = ledger.load(run_id)
    mix_block = manifest.get("mix")
    if not mix_block:
        print(
            f"error: run {run_id} has no mix block "
            "(record one with `repro mix --ledger`)",
            file=sys.stderr,
        )
        return 2
    try:
        report = wi.whatif_mix(
            mix_block, slots=args.slots, policy=args.policy
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"run {run_id}: fleet-mix what-if replay")
    print()
    print(wi.render_whatif_mix(report))
    status = 0
    if not report["identity"]["identical"]:
        print(
            "FAIL: replaying a recorded cell no longer reproduces the "
            "manifest's fleet break-even (simulation drift)",
            file=sys.stderr,
        )
        status = 1
    if not args.no_save:
        path = ledger.attach_block(run_id, "whatif", {"mix": report})
        print(f"\nattached whatif block to {path}")
    return status


def _cmd_whatif(args: argparse.Namespace) -> int:
    import json

    from repro.obs import whatif as wi

    if args.slots is not None or args.policy is not None:
        return _cmd_whatif_mix(args)

    resolved = _resolve_run_replay(args)
    if isinstance(resolved, int):
        return resolved
    ledger, run_id, replay = resolved

    inputs = _breakeven_inputs_or_none(replay)
    if inputs is None:
        print(
            "error: whatif needs break-even inputs for the recorded apps",
            file=sys.stderr,
        )
        return 2
    try:
        uniform, per_stage = _parse_speedup_specs(args.cad_speedup)
        knobs = wi.WhatIfKnobs(
            cache_hit_pct=args.cache_hit,
            cad_speedup_pct=uniform,
            stage_speedup_pct=per_stage,
            workers=args.workers,
            trials=args.trials,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = wi.whatif_break_even(replay, inputs, knobs)
    print(f"run {run_id}: trace-driven what-if replay")
    print()
    print(result.render())
    block: dict = {"scenario": wi.scenario_block(result)}

    # Identity check: with no knobs the replayed baseline must reproduce
    # the run's recorded break-even times (virtual clock, manifest
    # rounding). Divergence means the trace no longer explains the result.
    manifest = ledger.load(run_id)
    per_app = (manifest.get("scalars") or {}).get("per_app") or {}
    drifted = []
    for app in result.apps:
        recorded = (per_app.get(app.name) or {}).get("break_even_seconds")
        replayed = app.baseline_break_even
        if recorded is None:
            if math.isfinite(replayed):
                drifted.append(f"{app.name} (recorded never, replayed finite)")
            continue
        if not math.isfinite(replayed) or abs(replayed - recorded) > max(
            1e-5, 1e-5 * abs(recorded)
        ):
            drifted.append(
                f"{app.name} (recorded {recorded:g}, replayed {replayed:g})"
            )
    if drifted:
        print(
            "warning: replayed baseline break-even diverges from the "
            "recorded values: " + "; ".join(drifted),
            file=sys.stderr,
        )
    elif per_app:
        print(
            f"\nidentity check: replayed baseline matches the recorded "
            f"break-even of {len(result.apps)} app(s)"
        )

    status = 0
    if args.grid:
        from repro.experiments.table4 import render_grid

        trace_grid = wi.whatif_grid(
            replay, inputs, workers=args.workers, trials=args.trials
        )
        analytic = wi.analytic_grid(inputs, trials=args.trials)
        check = wi.check_grids(trace_grid, analytic, tolerance=args.tol)
        print()
        print(
            render_grid(
                trace_grid,
                title=(
                    f"What-if Table IV from run {run_id} "
                    f"({args.workers} worker(s)) [h:m:s]"
                ),
            )
        )
        print()
        print(check.render())
        block.update(wi.grid_block(trace_grid, check, workers=args.workers))
        if args.out:
            artifact = {
                "run_id": run_id,
                "workers": args.workers,
                "trials": args.trials,
                "tolerance": args.tol,
                "cache_hit_rates": list(trace_grid.cache_hit_rates),
                "cad_speedups": list(trace_grid.cad_speedups),
                "cells": [
                    {
                        "hit_pct": c.hit_pct,
                        "speedup_pct": c.speedup_pct,
                        "trace_seconds": (
                            c.trace_seconds
                            if math.isfinite(c.trace_seconds)
                            else None
                        ),
                        "analytic_seconds": (
                            c.analytic_seconds
                            if math.isfinite(c.analytic_seconds)
                            else None
                        ),
                        "passed": c.passed,
                    }
                    for c in check.cells
                ],
            }
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(artifact, fh, indent=2)
                fh.write("\n")
            print(f"\nwrote what-if grid: {args.out}")
        if not check.ok:
            for cell in check.flagged:
                print(
                    f"DIVERGED {cell.key}: trace {cell.trace_seconds:g} vs "
                    f"analytic {cell.analytic_seconds:g}",
                    file=sys.stderr,
                )
            status = 1

    if not args.no_save:
        path = ledger.attach_block(run_id, "whatif", block)
        print(f"\nattached whatif block to {path}")
    return status


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.ledger import RunLedger, render_manifest, render_run_list

    ledger = RunLedger(args.ledger_dir)
    if args.runs_command == "gc":
        from repro.obs.ledger import prune_runs

        compact = not args.no_compact
        try:
            removed = prune_runs(ledger, args.keep, compact=compact)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if removed:
            print(
                f"removed {len(removed)} run(s): {', '.join(removed)}"
            )
            if compact:
                from repro.obs.history import history_path

                print(
                    f"compacted {len(removed)} manifest(s) into "
                    f"{history_path(ledger)}"
                )
        else:
            print(
                f"nothing to remove ({len(ledger.run_ids())} run(s) "
                f"recorded, keeping {args.keep})"
            )
        return 0
    if args.runs_command == "trend":
        from repro.obs.history import (
            build_series,
            collect_entries,
            render_trend,
            trend_report,
        )

        entries = collect_entries(
            ledger, command=args.filter_command, limit=args.limit or None
        )
        series = build_series(entries, args.cells or None)
        print(render_trend(series))
        if args.out:
            import json

            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(trend_report(series), fh, indent=2)
                fh.write("\n")
            print(f"\nwrote trend report: {args.out}")
        return 0
    if args.runs_command == "list":
        run_ids = ledger.run_ids()
        if not run_ids:
            print(f"(no runs recorded in {ledger.path})")
            return 0
        total = len(run_ids)
        # --last predates --limit and wins when given; either way only
        # the shown runs' manifests are loaded (a serve ledger can hold
        # thousands of runs — listing must not parse them all).
        limit = args.last if args.last and args.last > 0 else args.limit
        if limit and limit > 0:
            run_ids = run_ids[-limit:]
        print(render_run_list([ledger.load(run_id) for run_id in run_ids]))
        if len(run_ids) < total:
            print(
                f"({total - len(run_ids)} older run(s) not shown; "
                f"use --limit 0 to list all {total})"
            )
        return 0
    if args.runs_command == "show":
        try:
            manifest = ledger.load(ledger.resolve(args.run))
        except LookupError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_manifest(manifest))
        return 0
    # diff: informational cell-by-cell comparison, never gating.
    from repro.obs.regress import compare_manifests

    try:
        baseline = ledger.load(ledger.resolve(args.a))
        current = ledger.load(ledger.resolve(args.b))
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compare_manifests(baseline, current)
    print(report.render(show_all=args.all))
    for warning in report.config_mismatches:
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.obs.ledger import RunLedger
    from repro.obs.regress import compare_manifests, parse_tolerances

    ledger = RunLedger(args.ledger_dir)
    try:
        tolerances = parse_tolerances(args.tol)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        current_id = ledger.resolve(args.candidate)
        baseline_id = ledger.resolve(args.baseline)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    history = None
    if args.repeat > 1:
        run_ids = ledger.run_ids()
        upto = run_ids.index(current_id) + 1
        history = [
            ledger.load(run_id)
            for run_id in run_ids[max(0, upto - args.repeat) : upto]
        ]
    noise_bands = None
    if args.history > 0:
        from repro.obs.history import collect_entries, derive_noise_bands

        candidate_manifest = ledger.load(current_id)
        entries = collect_entries(
            ledger,
            command=candidate_manifest.get("command"),
            limit=args.history,
        )
        noise_bands = derive_noise_bands(entries, tolerances=tolerances)
    report = compare_manifests(
        ledger.load(baseline_id),
        ledger.load(current_id),
        tolerances=tolerances,
        history=history,
        noise_bands=noise_bands,
    )
    print(report.render(show_all=args.all))
    if report.noise_banded:
        print(
            f"({len(report.noise_banded)} measured cell(s) gated by "
            f"history-derived noise bands)"
        )
    for warning in report.config_mismatches:
        print(f"warning: {warning}", file=sys.stderr)
    if not report.ok:
        print(
            f"\n{len(report.regressions)} regression(s) vs {baseline_id}:",
            file=sys.stderr,
        )
        for delta in report.regressions:
            print(f"  REGRESSION {delta.describe()}", file=sys.stderr)
        return 1
    print(
        f"\nno regressions vs {baseline_id} "
        f"({len(report.checked)} checked cells)"
    )
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs.ledger import RunLedger
    from repro.obs.slo import (
        apply_objective_spec,
        default_objectives,
        evaluate,
        read_requests,
        render_slo,
        write_alerts,
    )

    ledger = RunLedger(args.ledger_dir)
    try:
        run_id = ledger.resolve(args.run)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    requests_path = ledger.run_dir(run_id) / "requests.jsonl"
    if not requests_path.is_file():
        print(
            f"error: run {run_id} has no requests.jsonl (record a serve or "
            "loadgen run with --ledger)",
            file=sys.stderr,
        )
        return 2
    try:
        records = read_requests(requests_path)
    except OSError as exc:
        print(f"error: cannot read {requests_path}: {exc}", file=sys.stderr)
        return 2
    objectives = default_objectives(args.break_even_threshold)
    try:
        for spec in args.objective:
            objectives = apply_objective_spec(objectives, spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = evaluate(records, objectives)
    print(render_slo(report, run_id))
    if report.alerts:
        alerts_path = write_alerts(
            ledger.run_dir(run_id) / "alerts.jsonl", report.alerts, run_id
        )
        print(f"\nappended {len(report.alerts)} alert(s) to {alerts_path}")
    if not args.no_save:
        ledger.attach_block(run_id, "slo", report.summary())
    if report.breached:
        breached = [r.objective.name for r in report.results if r.breached]
        print(
            f"\nBREACHED: {', '.join(breached)} "
            f"(error budget exhausted or fast burn firing)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_anomaly(args: argparse.Namespace) -> int:
    from repro.obs.history import (
        build_series,
        collect_entries,
        detect_anomalies,
        render_anomalies,
    )
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(args.ledger_dir)
    entries = collect_entries(
        ledger, command=args.filter_command, limit=args.limit or None
    )
    if not entries:
        print(
            f"(no history in {ledger.path}: record runs with --ledger first)"
        )
        return 0
    series = build_series(entries, args.cells or None)
    anomalies = detect_anomalies(
        series,
        min_points=args.min_points,
        mads=args.mads,
        min_rel=args.min_rel,
    )
    print(render_anomalies(anomalies, len(entries)))
    if args.out:
        import json

        payload = {
            "schema": "repro-anomaly/1",
            "runs": len(entries),
            "anomalies": [
                {
                    **vars(a),
                    # JSON has no Infinity: a shifted constant cell reports
                    # a null robust z instead.
                    "zscore": None if a.zscore == float("inf") else a.zscore,
                }
                for a in anomalies
            ],
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote anomaly report: {args.out}")
    return 1 if anomalies else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.cache import PersistentBitstreamCache

    cache = PersistentBitstreamCache(root=args.dir)
    if args.cache_command == "clear":
        dropped = cache.clear()
        print(f"cleared {dropped} cached bitstream(s) from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"bitstream cache at {stats['root']}:")
    print(f"  entries:   {stats['entries']}")
    print(f"  bytes:     {stats['bytes']}")
    if stats["hits"] or stats["misses"]:
        print(
            f"  session:   {stats['hits']} hit(s), {stats['misses']} miss(es)"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import render_bench, run_parallel_bench

    report = run_parallel_bench(
        domain=args.domain,
        jobs=args.jobs,
        backend=args.backend,
        out=args.out,
        cache_dir=args.cache_dir,
    )
    print(render_bench(report))
    if args.out:
        print(f"\nwrote benchmark report: {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro import obs
    from repro.obs.ledger import current_run
    from repro.serve.server import ServerConfig, SpecializationServer

    recorder = current_run()
    tracer = obs.get_tracer()
    if tracer.enabled and args.max_spans > 0:
        # A daemon runs indefinitely: bound the in-memory span buffer.
        # Under --ledger the overflow flushes incrementally to the run's
        # trace.jsonl (finalize folds stages from the file); without a
        # sink the buffer is a ring and the oldest spans are dropped.
        flush_path = (
            recorder.run_dir / "trace.jsonl" if recorder is not None else None
        )
        tracer.configure_flush(flush_path, max_spans=args.max_spans)

    server = SpecializationServer(
        ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            backend=args.serve_backend,
            store_root=args.store,
            tenant_budget=args.tenant_budget,
        )
    )
    server.start()
    # Parseable by scripts (serve_smoke) before any request lands.
    print(f"serving on {server.config.host}:{server.port}", flush=True)

    def _on_signal(signum, _frame):
        server.request_shutdown(reason="signal")

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, _on_signal)
    try:
        status = server.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    counts = server.requests
    print(
        f"serve shutdown ({status}): {counts['completed']} completed, "
        f"{counts['rejected']} rejected, {counts['failed']} failed; "
        f"dedup saved {server.store.dedup_saved} CAD run(s)",
        flush=True,
    )
    return 0


def _parse_app_mix(spec: str | None):
    """Parse a ``--mix app=weight,app=weight`` spec (None = default mix)."""
    if not spec:
        return None
    mix = []
    for part in spec.split(","):
        name, sep, weight = part.partition("=")
        name = name.strip()
        if not name:
            raise ValueError(f"empty app name in mix spec {spec!r}")
        mix.append((name, float(weight) if sep else 1.0))
    return tuple(mix)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import (
        LoadGenConfig,
        render_loadgen,
        run_loadgen,
    )

    try:
        mix = _parse_app_mix(args.mix)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs = dict(
        requests=args.requests,
        clients=args.clients,
        tenants=args.tenants,
        rate=args.rate,
        seed=args.seed,
        concurrency=args.concurrency,
        workers=args.workers,
        queue_depth=args.queue_depth,
        tenant_budget=args.tenant_budget,
        time_share_pct=args.time_share,
        max_blocks=args.max_blocks,
    )
    if mix is not None:
        kwargs["mix"] = mix
    report = run_loadgen(
        LoadGenConfig(**kwargs), out=args.out, store_root=args.store
    )
    print(render_loadgen(report))
    if args.out:
        print(f"\nwrote serve benchmark report: {args.out}")
    if not report["warm_p95_lower"]:
        print(
            "FAIL: warm-phase p95 break-even is not strictly below cold "
            "(the cache is not paying for itself)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    from repro.obs.bench import render_mix_bench, run_mix_bench

    presets = tuple(p.strip() for p in args.presets.split(",") if p.strip())
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    try:
        capacities = tuple(
            int(c) for c in args.slots.split(",") if c.strip()
        )
    except ValueError as exc:
        print(f"error: invalid --slots: {exc}", file=sys.stderr)
        return 2
    if not presets or not policies or not capacities:
        print(
            "error: need at least one preset, policy and slot count",
            file=sys.stderr,
        )
        return 2
    if any(c < 1 for c in capacities):
        print("error: slot counts must be >= 1", file=sys.stderr)
        return 2
    try:
        report = run_mix_bench(
            presets=presets,
            policies=policies,
            capacities=capacities,
            events=args.events,
            seed=args.seed,
            out=args.out,
            store_root=args.store,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_mix_bench(report))
    if args.out:
        print(f"\nwrote fleet-mix benchmark report: {args.out}")
    status = 0
    if not report["determinism"]["bit_identical"]:
        print(
            "FAIL: re-simulating the contended cell from identical inputs "
            "did not reproduce bit-identically",
            file=sys.stderr,
        )
        status = 1
    if report["gate"]["breakeven_beats_lru"] is False:
        print(
            "FAIL: break-even-aware eviction does not beat LRU on the "
            "contended mix (fleet break-even regressed)",
            file=sys.stderr,
        )
        status = 1
    return status


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    try:
        return run_top(
            args.host,
            args.port,
            interval=args.interval,
            once=args.once,
            show_metrics=args.show_metrics,
        )
    except KeyboardInterrupt:
        return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.obs.log import read_log, render_tail

    try:
        records = read_log(args.file)
    except OSError as exc:
        print(f"cannot read log: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid log: {exc}", file=sys.stderr)
        return 1
    print(render_tail(records, limit=args.lines, level=args.level))
    return 0


def _run_config(args: argparse.Namespace) -> dict:
    """JSON-safe view of a command's own arguments for the run manifest."""
    skip = {"fn", "trace", "metrics", "ledger", "log"}
    config = {}
    for key, value in vars(args).items():
        if key in skip:
            continue
        if value is None or isinstance(value, (str, int, float, bool)):
            config[key] = value
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JIT instruction-set-extension reproduction toolkit",
    )
    obs_options = argparse.ArgumentParser(add_help=False)
    obs_options.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a span trace of this run and export it as JSON lines",
    )
    obs_options.add_argument(
        "--metrics",
        action="store_true",
        help="collect metrics and print a snapshot after the run",
    )
    obs_options.add_argument(
        "--log",
        metavar="FILE",
        default=None,
        help="write a structured JSONL event log of this run",
    )
    obs_options.add_argument(
        "--ledger",
        metavar="DIR",
        nargs="?",
        const=".repro-runs",
        default=None,
        help="record this run (manifest + trace + event log) in the run "
        "ledger (default dir: .repro-runs)",
    )
    parallel_options = argparse.ArgumentParser(add_help=False)
    parallel_options.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the suite across N workers (default: 1 = serial)",
    )
    parallel_options.add_argument(
        "--backend",
        choices=["process", "thread"],
        default="process",
        help="worker pool flavour for --jobs (default: process; use thread "
        "to keep --log event records complete)",
    )
    parallel_options.add_argument(
        "--cache",
        metavar="DIR",
        nargs="?",
        const=".repro-cache",
        default=None,
        help="serve previously implemented candidates from the persistent "
        "bitstream cache (default dir: .repro-cache)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser(
        "tables",
        parents=[obs_options, parallel_options],
        help="regenerate the paper's tables",
    )
    p_tables.add_argument(
        "which", nargs="?", default="all", choices=["1", "2", "3", "4", "all"]
    )
    p_tables.set_defaults(fn=_cmd_tables)

    sub.add_parser(
        "figures", parents=[obs_options], help="print Figures 1 and 2"
    ).set_defaults(fn=_cmd_figures)
    sub.add_parser(
        "apps", parents=[obs_options], help="list the benchmark suite"
    ).set_defaults(fn=_cmd_apps)

    p_analyze = sub.add_parser(
        "analyze",
        parents=[obs_options, parallel_options],
        help="analyze one application or a whole domain",
    )
    p_analyze.add_argument(
        "app", nargs="?", help="application name, e.g. fft or 470.lbm"
    )
    p_analyze.add_argument(
        "--domain",
        choices=["embedded", "scientific", "all"],
        default=None,
        help="analyze every application of a domain instead of one app",
    )
    p_analyze.set_defaults(fn=_cmd_analyze)

    for name, fn, help_text in (
        ("jit", _cmd_jit, "run the end-to-end JIT flow on one application"),
        ("timeline", _cmd_timeline, "concurrent-specialization timeline"),
    ):
        p = sub.add_parser(name, parents=[obs_options], help=help_text)
        p.add_argument("app", help="application name, e.g. fft or 470.lbm")
        p.set_defaults(fn=fn)

    p_profile = sub.add_parser(
        "profile",
        parents=[obs_options],
        help="hierarchical self/total-time profile of a run",
    )
    p_profile.add_argument(
        "target", help="application name, or a JSONL trace written by --trace"
    )
    p_profile.add_argument(
        "--clock",
        choices=["real", "virtual"],
        default="real",
        help="which clock to profile: measured perf_counter time or the "
        "modelled CAD virtual_seconds (default: real)",
    )
    p_profile.add_argument(
        "--top", type=int, default=15, help="rows in the hot-path table"
    )
    p_profile.add_argument(
        "--tree", action="store_true", help="also print the full profile tree"
    )
    p_profile.add_argument(
        "--collapsed",
        metavar="FILE",
        default=None,
        help="write Brendan-Gregg collapsed stacks for flamegraph.pl / "
        "speedscope ('-' = stdout)",
    )
    p_profile.set_defaults(fn=_cmd_profile)

    p_heat = sub.add_parser(
        "heat",
        parents=[obs_options],
        help="heat-annotated IR listing (block time shares, kernel flags)",
    )
    p_heat.add_argument("app", help="application name, e.g. fft or 470.lbm")
    p_heat.add_argument(
        "--function", default=None, help="print only this function"
    )
    p_heat.add_argument(
        "--top", type=int, default=10, help="rows in the hottest-block table"
    )
    p_heat.add_argument(
        "--threshold",
        type=float,
        default=0.90,
        help="kernel time-coverage threshold (paper: 0.90)",
    )
    p_heat.add_argument(
        "--top-opcodes",
        type=int,
        default=0,
        metavar="N",
        help="also print a dynamic opcode rollup (counts x cost model)",
    )
    p_heat.set_defaults(fn=_cmd_heat)

    p_vmprof = sub.add_parser(
        "vmprof",
        parents=[obs_options],
        help="VM dispatch observatory: opcode profile, real-vs-virtual "
        "divergence, superinstruction candidates",
    )
    p_vmprof.add_argument("app", help="application name, e.g. fft or adpcm")
    p_vmprof.add_argument(
        "--dataset", default=None, help="dataset name (default: train)"
    )
    p_vmprof.add_argument(
        "--sample",
        type=int,
        default=64,
        metavar="N",
        help="real-clock sample interval in block executions "
        "(0 disables sampling; default: 64)",
    )
    p_vmprof.add_argument(
        "--top", type=int, default=12, help="rows per report table"
    )
    p_vmprof.add_argument(
        "--candidates",
        type=int,
        default=10,
        metavar="N",
        help="superinstruction candidates to rank (default: 10)",
    )
    p_vmprof.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip the dispatch-cost microbenchmark (no real-clock "
        "estimates or savings)",
    )
    p_vmprof.add_argument(
        "--json", metavar="FILE", default=None, help="write the full report"
    )
    p_vmprof.add_argument(
        "--fuse",
        action="store_true",
        help="splice the mined top-K sequences back in and re-run fused "
        "(closing the JIT-ISE loop; fails on any accounting drift)",
    )
    p_vmprof.add_argument(
        "--fuse-top",
        type=int,
        default=12,
        metavar="K",
        help="mined sequences to fuse with --fuse (default: 12)",
    )
    p_vmprof.set_defaults(fn=_cmd_vmprof)

    p_fidelity = sub.add_parser(
        "fidelity",
        parents=[obs_options, parallel_options],
        help="compare a run against the paper's published table values",
    )
    p_fidelity.add_argument(
        "--domain",
        choices=["embedded", "scientific", "all"],
        default="embedded",
        help="application subset to analyze (default: embedded)",
    )
    p_fidelity.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="report path (default: BENCH_fidelity_<domain>.json)",
    )
    p_fidelity.add_argument(
        "--full",
        action="store_true",
        help="also check the Table IV cache/CAD extrapolation factor",
    )
    p_fidelity.set_defaults(fn=_cmd_fidelity)

    p_trace = sub.add_parser(
        "trace", help="replay a saved JSONL trace as a per-stage time table"
    )
    p_trace.add_argument("file", help="trace file written by --trace")
    p_trace.add_argument(
        "--timeline",
        action="store_true",
        help="also render the ASCII span timeline",
    )
    p_trace.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help="also write a Chrome trace_event file (chrome://tracing)",
    )
    p_trace.set_defaults(fn=_cmd_trace, trace=None, metrics=False)

    ledger_dir_kwargs = dict(
        metavar="DIR",
        dest="ledger_dir",
        default=".repro-runs",
        help="run ledger directory (default: .repro-runs)",
    )

    p_runs = sub.add_parser("runs", help="inspect the run ledger")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser("list", help="list recorded runs")
    p_runs_list.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_list.add_argument(
        "--last", type=int, default=0, help="show only the last N runs"
    )
    p_runs_list.add_argument(
        "--limit",
        type=int,
        default=50,
        metavar="N",
        help="load and show at most the newest N runs (0 = all; "
        "default: 50)",
    )
    p_runs_show = runs_sub.add_parser("show", help="show one run's manifest")
    p_runs_show.add_argument(
        "run", help="run id, unique prefix, 'latest', or 'latest~N'"
    )
    p_runs_show.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_diff = runs_sub.add_parser(
        "diff", help="cell-by-cell diff of two runs (informational)"
    )
    p_runs_diff.add_argument("a", help="baseline run spec")
    p_runs_diff.add_argument("b", help="current run spec")
    p_runs_diff.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_diff.add_argument(
        "--all", action="store_true", help="show unchanged cells too"
    )
    p_runs_gc = runs_sub.add_parser(
        "gc", help="delete the oldest recorded runs beyond --keep N"
    )
    p_runs_gc.add_argument(
        "--keep",
        type=int,
        required=True,
        metavar="N",
        help="number of newest runs to keep (a currently open run is "
        "never removed)",
    )
    p_runs_gc.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_gc.add_argument(
        "--no-compact",
        action="store_true",
        help="delete pruned runs outright instead of first compacting "
        "their manifest cells into the ledger's history.jsonl",
    )
    p_runs_trend = runs_sub.add_parser(
        "trend",
        help="per-cell time series across all recorded history "
        "(live runs + gc-compacted history.jsonl)",
    )
    p_runs_trend.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_trend.add_argument(
        "--cells",
        action="append",
        default=[],
        metavar="PATTERN",
        help="fnmatch cell filter (repeatable; default: every cell)",
    )
    p_runs_trend.add_argument(
        "--command",
        dest="filter_command",
        default=None,
        metavar="CMD",
        help="only runs of this command (default: all runs)",
    )
    p_runs_trend.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="only the newest N runs (default: 0 = all)",
    )
    p_runs_trend.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the series as a JSON trend report",
    )
    p_runs.set_defaults(fn=_cmd_runs, trace=None, metrics=False, log=None)
    for p in (p_runs_list, p_runs_show, p_runs_diff, p_runs_gc, p_runs_trend):
        p.set_defaults(fn=_cmd_runs, trace=None, metrics=False, log=None)

    p_regress = sub.add_parser(
        "regress",
        help="compare a recorded run against a baseline, fail on regression",
    )
    p_regress.add_argument(
        "--baseline",
        default="latest~1",
        help="baseline run spec (default: latest~1)",
    )
    p_regress.add_argument(
        "--candidate",
        default="latest",
        help="run under test (default: latest)",
    )
    p_regress.add_argument("--ledger", **ledger_dir_kwargs)
    p_regress.add_argument(
        "--tol",
        action="append",
        default=[],
        metavar="PATTERN=REL",
        help="override a cell tolerance (REL float, or 'info' to make the "
        "cells informational); repeatable, first match wins",
    )
    p_regress.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="widen tolerances by a median/MAD noise band estimated over "
        "the last N runs ending at the candidate (default: 1 = off)",
    )
    p_regress.add_argument(
        "--history",
        type=int,
        default=0,
        metavar="N",
        help="derive noise bands for measured (informational) cells from "
        "the last N same-command runs in the ledger history, and gate "
        "them at median +/- (5%% + 3*MAD) (default: 0 = off)",
    )
    p_regress.add_argument(
        "--all", action="store_true", help="show unchanged cells too"
    )
    p_regress.set_defaults(fn=_cmd_regress, trace=None, metrics=False, log=None)

    p_slo = sub.add_parser(
        "slo",
        help="evaluate error-budget SLOs over a recorded run's "
        "requests.jsonl, appending burn-rate alerts to alerts.jsonl",
    )
    p_slo.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run spec: id, unique prefix, 'latest', or 'latest~N' "
        "(default: latest)",
    )
    p_slo.add_argument("--ledger", **ledger_dir_kwargs)
    p_slo.add_argument(
        "--break-even-threshold",
        type=float,
        default=3600.0,
        metavar="SEC",
        help="bound for the break_even_p95 objective in virtual seconds "
        "of app runtime (default: 3600)",
    )
    p_slo.add_argument(
        "--objective",
        action="append",
        default=[],
        metavar="NAME:KEY=VAL,...",
        help="override a stock objective's fields (or declare a new one "
        "with at least good= and target=); repeatable",
    )
    p_slo.add_argument(
        "--no-save",
        action="store_true",
        help="do not attach the SLO summary block to the run's manifest",
    )
    p_slo.set_defaults(fn=_cmd_slo, trace=None, metrics=False, log=None)

    p_anomaly = sub.add_parser(
        "anomaly",
        help="flag manifest cells of the newest run that break from the "
        "fleet history (robust median+MAD changepoint)",
    )
    p_anomaly.add_argument("--ledger", **ledger_dir_kwargs)
    p_anomaly.add_argument(
        "--cells",
        action="append",
        default=[],
        metavar="PATTERN",
        help="fnmatch cell filter (repeatable; default: every cell)",
    )
    p_anomaly.add_argument(
        "--command",
        dest="filter_command",
        default=None,
        metavar="CMD",
        help="only runs of this command (default: all runs)",
    )
    p_anomaly.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="only the newest N runs (default: 0 = all)",
    )
    p_anomaly.add_argument(
        "--min-points",
        type=int,
        default=4,
        metavar="N",
        help="trailing points needed before a cell is judged (default: 4)",
    )
    p_anomaly.add_argument(
        "--mads",
        type=float,
        default=4.0,
        metavar="Z",
        help="robust z-score threshold in 1.4826*MAD units (default: 4)",
    )
    p_anomaly.add_argument(
        "--min-rel",
        type=float,
        default=0.001,
        metavar="FRAC",
        help="minimum |relative change| vs the baseline median "
        "(default: 0.001)",
    )
    p_anomaly.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the flagged cells as a JSON anomaly report",
    )
    p_anomaly.set_defaults(fn=_cmd_anomaly, trace=None, metrics=False, log=None)

    p_critpath = sub.add_parser(
        "critpath",
        help="critical path and per-stage slack of a recorded run's "
        "specialization DAG",
    )
    p_critpath.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run spec: id, unique prefix, 'latest', or 'latest~N' "
        "(default: latest)",
    )
    p_critpath.add_argument("--ledger", **ledger_dir_kwargs)
    p_critpath.add_argument(
        "--no-save",
        action="store_true",
        help="do not attach the critpath block to the run's manifest",
    )
    p_critpath.set_defaults(
        fn=_cmd_critpath, trace=None, metrics=False, log=None
    )

    p_whatif = sub.add_parser(
        "whatif",
        help="replay a recorded run under hypothetical cache/CAD/worker knobs",
    )
    p_whatif.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run spec: id, unique prefix, 'latest', or 'latest~N' "
        "(default: latest)",
    )
    p_whatif.add_argument("--ledger", **ledger_dir_kwargs)
    p_whatif.add_argument(
        "--cache-hit",
        type=float,
        default=0.0,
        metavar="PCT",
        help="bitstream-cache hit rate in percent (default: 0)",
    )
    p_whatif.add_argument(
        "--cad-speedup",
        action="append",
        default=[],
        metavar="PCT|STAGE=PCT",
        help="CAD speedup in percent: a bare number speeds up the whole "
        "chain, STAGE=PCT (e.g. bitgen=50) only one stage; repeatable",
    )
    p_whatif.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="parallel CAD workers list-scheduling the candidate chains "
        "(default: 1)",
    )
    p_whatif.add_argument(
        "--trials",
        type=int,
        default=16,
        metavar="N",
        help="cache-population trials, as in the analytic Table IV "
        "(default: 16)",
    )
    p_whatif.add_argument(
        "--grid",
        action="store_true",
        help="regenerate the full Table IV grid from the trace and "
        "cross-check it against the analytic model (exit 1 on divergence)",
    )
    p_whatif.add_argument(
        "--tol",
        type=float,
        default=0.05,
        metavar="REL",
        help="relative tolerance for the grid cross-check (default: 0.05)",
    )
    p_whatif.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the cross-checked grid as a JSON artifact (with --grid)",
    )
    p_whatif.add_argument(
        "--slots",
        type=int,
        default=None,
        metavar="N",
        help="fleet-mix replay: re-simulate the run's recorded mixes with "
        "N custom-instruction slots (needs a `repro mix --ledger` run)",
    )
    p_whatif.add_argument(
        "--policy",
        choices=["lru", "lfu", "breakeven"],
        default=None,
        help="fleet-mix replay: re-simulate the run's recorded mixes "
        "under this eviction policy",
    )
    p_whatif.add_argument(
        "--no-save",
        action="store_true",
        help="do not attach the whatif block to the run's manifest",
    )
    p_whatif.set_defaults(fn=_cmd_whatif, trace=None, metrics=False, log=None)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent bitstream cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_dir_kwargs = dict(
        metavar="DIR",
        dest="dir",
        default=".repro-cache",
        help="cache directory (default: .repro-cache)",
    )
    p_cache_stats = cache_sub.add_parser(
        "stats", help="show entry count, bytes, and session hit/miss counts"
    )
    p_cache_stats.add_argument("--dir", **cache_dir_kwargs)
    p_cache_clear = cache_sub.add_parser(
        "clear", help="drop every cached bitstream"
    )
    p_cache_clear.add_argument("--dir", **cache_dir_kwargs)
    for p in (p_cache, p_cache_stats, p_cache_clear):
        p.set_defaults(fn=_cmd_cache, trace=None, metrics=False, log=None)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the parallel runner and the persistent cache",
    )
    p_bench.add_argument(
        "--domain",
        choices=["embedded", "scientific", "all"],
        default="embedded",
        help="application subset to benchmark (default: embedded)",
    )
    p_bench.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the parallel phase (default: 4)",
    )
    p_bench.add_argument(
        "--backend",
        choices=["process", "thread"],
        default="process",
        help="worker pool flavour (default: process)",
    )
    p_bench.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_parallel.json",
        help="report path (default: BENCH_parallel.json)",
    )
    p_bench.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory for the warm phases (default: a temporary "
        "directory, removed afterwards)",
    )
    p_bench.set_defaults(fn=_cmd_bench, trace=None, metrics=False, log=None)

    p_bench_vm = sub.add_parser(
        "bench-vm",
        parents=[obs_options],
        help="benchmark the interpreter over the embedded suite "
        "(BENCH_vm.json)",
    )
    p_bench_vm.add_argument(
        "--apps",
        metavar="A,B,...",
        default=None,
        help="comma-separated app subset (default: the embedded suite)",
    )
    p_bench_vm.add_argument(
        "--sample",
        type=int,
        default=64,
        metavar="N",
        help="sampler interval for the overhead phase (default: 64)",
    )
    p_bench_vm.add_argument(
        "--pairs",
        type=int,
        default=3,
        metavar="N",
        help="plain/sampled run pairs per app; the overhead is the median "
        "paired ratio (default: 3)",
    )
    p_bench_vm.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_vm.json",
        help="report path (default: BENCH_vm.json)",
    )
    p_bench_vm.add_argument(
        "--fuse",
        action="store_true",
        help="add a fused phase per pair (top-K mined superinstructions "
        "spliced in; fails on accounting drift)",
    )
    p_bench_vm.add_argument(
        "--fuse-top",
        type=int,
        default=12,
        metavar="K",
        help="mined sequences to fuse with --fuse (default: 12)",
    )
    p_bench_vm.set_defaults(fn=_cmd_bench_vm)

    p_serve = sub.add_parser(
        "serve",
        parents=[obs_options],
        help="run the specialization daemon (bounded queue + worker pool "
        "over the shared multi-tenant bitstream store)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: 0 = ephemeral; the bound port is printed)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker pool size (default: 2)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        metavar="N",
        help="admission queue depth; a full queue rejects with "
        "retry_after_ms (default: 32)",
    )
    p_serve.add_argument(
        "--backend",
        dest="serve_backend",
        choices=["thread", "process"],
        default="thread",
        help="worker flavour (default: thread; thread keeps candidate-level "
        "single-flight dedup in-process)",
    )
    p_serve.add_argument(
        "--store",
        metavar="DIR",
        default=".repro-store",
        help="shared multi-tenant bitstream store root "
        "(default: .repro-store)",
    )
    p_serve.add_argument(
        "--tenant-budget",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant cache eviction budget in entries (default: "
        "unbounded)",
    )
    p_serve.add_argument(
        "--max-spans",
        type=int,
        default=20000,
        metavar="N",
        help="bound the tracer's in-memory span buffer; overflow flushes "
        "to the ledger run's trace.jsonl (default: 20000; 0 = unbounded)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        parents=[obs_options],
        help="drive an embedded daemon with a deterministic Poisson mix "
        "(cold + warm) and write BENCH_serve.json",
    )
    p_loadgen.add_argument(
        "--requests",
        type=int,
        default=200,
        metavar="N",
        help="requests per phase (default: 200)",
    )
    p_loadgen.add_argument(
        "--clients",
        type=int,
        default=1000,
        metavar="N",
        help="simulated client population (default: 1000)",
    )
    p_loadgen.add_argument(
        "--tenants",
        type=int,
        default=4,
        metavar="N",
        help="tenant namespaces the clients map onto (default: 4)",
    )
    p_loadgen.add_argument(
        "--rate",
        type=float,
        default=50.0,
        metavar="RPS",
        help="Poisson arrival rate in requests/second (default: 50)",
    )
    p_loadgen.add_argument(
        "--seed", type=int, default=0, help="schedule seed (default: 0)"
    )
    p_loadgen.add_argument(
        "--concurrency",
        type=int,
        default=12,
        metavar="N",
        help="client sender threads (default: 12)",
    )
    p_loadgen.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="embedded server worker pool size (default: 4)",
    )
    p_loadgen.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="embedded server admission queue depth (default: 16)",
    )
    p_loadgen.add_argument(
        "--tenant-budget",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant cache eviction budget (default: unbounded)",
    )
    p_loadgen.add_argument(
        "--time-share",
        type=float,
        default=50.0,
        metavar="PCT",
        help="pruning time-share threshold (default: 50 = @50pS3L)",
    )
    p_loadgen.add_argument(
        "--max-blocks",
        type=int,
        default=3,
        metavar="N",
        help="pruning block limit (default: 3)",
    )
    p_loadgen.add_argument(
        "--mix",
        metavar="APP=W,APP=W",
        default=None,
        help="offered application mix with weights (default: the embedded "
        "suite weighted by CAD work)",
    )
    p_loadgen.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_serve.json",
        help="report path (default: BENCH_serve.json)",
    )
    p_loadgen.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="store root for the phases (default: a temporary directory, "
        "removed afterwards, so the cold phase is genuinely cold)",
    )
    p_loadgen.set_defaults(fn=_cmd_loadgen)

    p_mix = sub.add_parser(
        "mix",
        parents=[obs_options],
        help="sweep the fleet workload-mix grid (entropy x eviction policy "
        "x slot count) and write BENCH_mix.json",
    )
    p_mix.add_argument(
        "--presets",
        metavar="NAME,NAME",
        default="uniform,skewed",
        help="mix presets to replay (default: uniform,skewed)",
    )
    p_mix.add_argument(
        "--policies",
        metavar="P,P",
        default="lru,lfu,breakeven",
        help="eviction policies to sweep (default: lru,lfu,breakeven)",
    )
    p_mix.add_argument(
        "--slots",
        metavar="N,N",
        default="4,8,16",
        help="slot capacities to sweep (default: 4,8,16)",
    )
    p_mix.add_argument(
        "--events",
        type=int,
        default=120,
        metavar="N",
        help="invocations per trace (default: 120)",
    )
    p_mix.add_argument(
        "--seed", type=int, default=0, help="trace seed (default: 0)"
    )
    p_mix.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_mix.json",
        help="report path (default: BENCH_mix.json; use /dev/null to skip)",
    )
    p_mix.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="fleet store root for the cells (default: a temporary "
        "directory, removed afterwards, so every cell starts cold)",
    )
    p_mix.set_defaults(fn=_cmd_mix)

    p_top = sub.add_parser(
        "top", help="live ASCII view of a running specialization daemon"
    )
    p_top.add_argument(
        "--host", default="127.0.0.1", help="daemon host (default: 127.0.0.1)"
    )
    p_top.add_argument(
        "--port", type=int, required=True, help="daemon port (required)"
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SEC",
        help="refresh interval (default: 2.0)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="render a single page and exit (no screen clearing)",
    )
    p_top.add_argument(
        "--metrics",
        dest="show_metrics",
        action="store_true",
        help="append the daemon's full metrics snapshot, if instrumented",
    )
    p_top.set_defaults(
        fn=_cmd_top, trace=None, metrics=False, log=None, ledger=None
    )

    p_tail = sub.add_parser(
        "tail", help="render the last records of a JSONL event log"
    )
    p_tail.add_argument("file", help="event log written by --log or --ledger")
    p_tail.add_argument(
        "-n", "--lines", type=int, default=20, help="records to show"
    )
    p_tail.add_argument(
        "--level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="show only records at or above this level",
    )
    p_tail.set_defaults(fn=_cmd_tail, trace=None, metrics=False, log=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_file = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    log_file = getattr(args, "log", None)
    ledger_dir = getattr(args, "ledger", None)
    if not (trace_file or want_metrics or log_file or ledger_dir):
        return args.fn(args)

    from pathlib import Path

    from repro import obs

    recorder = None
    if ledger_dir:
        # A recorded run must measure real work, not cache hits.
        from repro.experiments.runner import clear_cache

        clear_cache()
        recorder = obs.start_run(
            ledger_dir,
            command=args.command,
            config=_run_config(args),
            argv=list(argv) if argv is not None else sys.argv[1:],
        )
        if log_file is None:
            log_file = str(Path(recorder.run_dir) / "log.jsonl")
    if trace_file or recorder is not None:
        obs.enable_tracing()
    if want_metrics or recorder is not None:
        obs.enable_metrics()
    if log_file:
        obs.enable_logging(
            log_file, run_id=recorder.run_id if recorder else None
        )
    status = None
    try:
        status = args.fn(args)
        return status
    finally:
        if log_file:
            obs.disable_logging()
        tracer = obs.disable_tracing() if obs.get_tracer().enabled else None
        registry = (
            obs.disable_metrics() if obs.get_metrics().enabled else None
        )
        if trace_file and tracer is not None:
            count = obs.export_tracer(tracer, trace_file)
            print(f"\nwrote {count} spans to {trace_file}")
        if want_metrics and registry is not None:
            print("\nmetrics snapshot:")
            print(obs.render_snapshot(registry.snapshot()))
        if recorder is not None:
            manifest_path = obs.finish_run(
                tracer=tracer,
                metrics=registry,
                status=status if status is not None else -1,
                log_path=log_file,
            )
            print(f"\nrecorded run {recorder.run_id} -> {manifest_path}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
