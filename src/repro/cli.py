"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``tables [1|2|3|4|all]`` — regenerate the paper's tables;
- ``figures`` — print the textual renderings of Figures 1 and 2;
- ``apps`` — list the benchmark suite;
- ``analyze <app>`` — full analysis of one application (Table I+II row);
- ``jit <app>`` — run the end-to-end JIT flow on one application;
- ``timeline <app>`` — concurrent-specialization timeline (extension);
- ``trace <file>`` — replay a saved trace as a per-stage time table;
- ``profile <app|file>`` — hierarchical self/total-time profile of a run
  (hot-path table, collapsed-stack flamegraph lines, profile tree);
- ``heat <app>`` — heat-annotated IR listing (per-block time share,
  kernel blocks flagged);
- ``fidelity`` — compare a run's tables against the paper's published
  values and write a machine-readable ``BENCH_*.json`` report.

Every command accepts ``--trace FILE`` (export a JSONL span trace of the
run) and ``--metrics`` (print a metrics snapshot after the run); see
:mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.util.timefmt import format_dhms, format_hms


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro import experiments

    which = args.which
    generators = {
        "1": experiments.generate_table1,
        "2": experiments.generate_table2,
        "3": experiments.generate_table3,
        "4": experiments.generate_table4,
    }
    selected = generators.keys() if which == "all" else [which]
    for key in selected:
        table = generators[key]()
        print(table.render())
        print()
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    from repro.experiments import generate_figures

    figs = generate_figures()
    print(figs["figure1"])
    print()
    print(figs["figure2"])
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import ALL_APPS

    for app in ALL_APPS:
        datasets = ", ".join(f"{d.name}={d.size}" for d in app.datasets)
        print(f"{app.name:12s} [{app.domain:10s}] {app.description}")
        print(f"{'':12s} datasets: {datasets}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.experiments import analyze_app

    a = analyze_app(args.app)
    comp = a.compiled.compilation
    print(f"{a.name} ({a.domain})")
    print(
        f"  code: {comp.files} files, {comp.loc} LOC, {comp.basic_blocks} blocks, "
        f"{comp.instructions} instructions (compiled in {comp.compile_seconds:.2f}s)"
    )
    print(
        f"  runtime: VM {a.runtime.vm_seconds:.3f}s, native "
        f"{a.runtime.native_seconds:.3f}s (ratio {a.runtime.ratio:.2f})"
    )
    print(
        f"  coverage: live {a.coverage.live_pct:.1f}% / dead "
        f"{a.coverage.dead_pct:.1f}% / const {a.coverage.const_pct:.1f}%"
    )
    print(
        f"  kernel: {a.kernel.size_pct:.1f}% of code, "
        f"{a.kernel.freq_pct:.1f}% of time"
    )
    print(
        f"  ASIP ratio: {a.asip_max.ratio:.2f}x upper bound, "
        f"{a.asip_pruned.ratio:.2f}x with @50pS3L "
        f"({a.specialization.candidate_count} candidates)"
    )
    print(
        f"  overhead: search {a.search_pruned.search_seconds * 1000:.2f} ms, "
        f"tool flow {format_hms(a.specialization.toolflow_seconds)} (m:s)"
    )
    be = a.breakeven.live_aware_seconds
    print(
        "  break-even: "
        + (format_dhms(be) + " (d:h:m:s)" if math.isfinite(be) else "never")
    )
    return 0


def _cmd_jit(args: argparse.Namespace) -> int:
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    spec = get_app(args.app)
    compiled = compile_app(spec)
    system = JitIseSystem()
    result = system.run_application(
        compiled.compilation,
        dataset_size=spec.train.size,
        dataset_seed=spec.train.seed,
    )
    print(f"{spec.name}: ASIP ratio {result.asip_ratio:.2f}x")
    print(f"  VM/native ratio: {result.runtime.ratio:.2f}")
    print(
        f"  custom instructions: {result.specialization.candidate_count}, "
        f"tool flow {format_hms(result.specialization.toolflow_seconds)} (m:s)"
    )
    print(f"  patched output identical: {result.output_equal}")
    return 0 if result.output_equal else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core import AsipSpecializationProcess, TimelineSimulator
    from repro.apps import compile_app, get_app
    from repro.profiling import classify_blocks

    spec = get_app(args.app)
    compiled = compile_app(spec)
    profiles = {ds.name: compiled.run(ds).profile for ds in spec.datasets}
    coverage = classify_blocks(compiled.module, list(profiles.values()))
    report = AsipSpecializationProcess().run(compiled.module, profiles["train"])
    result = TimelineSimulator().simulate(
        compiled.module, profiles["train"], coverage, report
    )
    print(result.event_log())
    print(f"\nfinal live-code rate: {result.final_rate:.2f}x baseline")
    for label, value in (
        ("dedicated-host break-even", result.dedicated_break_even),
        ("self-hosted break-even", result.self_hosted_break_even),
    ):
        print(
            f"{label}: "
            + (format_dhms(value) if math.isfinite(value) else "never")
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        records = obs.read_jsonl(args.file)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    errors = obs.validate_trace(records)
    if errors:
        for err in errors:
            print(f"invalid trace: {err}", file=sys.stderr)
        return 1
    print(obs.render_stage_table(records))
    if args.timeline:
        print()
        print(obs.render_timeline(records))
    if args.chrome:
        obs.write_chrome_trace(records, args.chrome)
        print(f"\nwrote Chrome trace_event file: {args.chrome}")
    return 0


def _traced_run_records(app_name: str):
    """Run the end-to-end JIT flow on *app_name* under the global tracer
    and return the finished spans as records.

    If tracing is already on (the user passed ``--trace``), the run's spans
    simply join the global trace and get exported too; otherwise tracing is
    enabled just for this run and switched back off afterwards.
    """
    from repro import obs
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    if not was_enabled:
        obs.enable_tracing()
    try:
        spec = get_app(app_name)
        compiled = compile_app(spec)
        JitIseSystem().run_application(
            compiled.compilation,
            dataset_size=spec.train.size,
            dataset_seed=spec.train.seed,
        )
        return obs.tracer_records(tracer)
    finally:
        if not was_enabled:
            obs.disable_tracing()


def _cmd_profile(args: argparse.Namespace) -> int:
    import os

    from repro import obs

    if os.path.exists(args.target):
        try:
            records = obs.read_jsonl(args.target)
        except ValueError as exc:
            print(f"invalid trace: {exc}", file=sys.stderr)
            return 1
    else:
        records = _traced_run_records(args.target)
    if not records:
        print("(empty trace: nothing to profile)")
        return 0
    profile = obs.build_profile(records)
    print(profile.hot_table(clock=args.clock, top=args.top).render())
    if args.tree:
        print()
        print(profile.render(clock=args.clock))
    if args.collapsed:
        lines = profile.collapsed(clock=args.clock)
        if args.collapsed == "-":
            print()
            for line in lines:
                print(line)
        else:
            with open(args.collapsed, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + ("\n" if lines else ""))
            print(
                f"\nwrote {len(lines)} collapsed stacks ({args.clock} time) "
                f"to {args.collapsed}"
            )
    return 0


def _cmd_heat(args: argparse.Namespace) -> int:
    from repro.apps import compile_app, get_app
    from repro.obs.heat import compute_heat, render_heat

    spec = get_app(args.app)
    compiled = compile_app(spec)
    profile = compiled.run(spec.train).profile
    heat = compute_heat(
        compiled.module, profile, kernel_threshold=args.threshold
    )
    try:
        print(
            render_heat(
                compiled.module, heat, function=args.function, top=args.top
            )
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from repro.obs.fidelity import default_report_path, run_fidelity

    out = args.out or default_report_path(args.domain)
    report = run_fidelity(
        domain=args.domain, out=out, include_table4=args.full
    )
    print(report.render())
    print(f"\nwrote fidelity report: {out}")
    if not report.ok:
        for cell in report.failures:
            print(
                f"FAIL {cell.table} {cell.row}/{cell.column}: "
                f"expected {cell.expected:g}, got {cell.actual:g}",
                file=sys.stderr,
            )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JIT instruction-set-extension reproduction toolkit",
    )
    obs_options = argparse.ArgumentParser(add_help=False)
    obs_options.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a span trace of this run and export it as JSON lines",
    )
    obs_options.add_argument(
        "--metrics",
        action="store_true",
        help="collect metrics and print a snapshot after the run",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser(
        "tables", parents=[obs_options], help="regenerate the paper's tables"
    )
    p_tables.add_argument(
        "which", nargs="?", default="all", choices=["1", "2", "3", "4", "all"]
    )
    p_tables.set_defaults(fn=_cmd_tables)

    sub.add_parser(
        "figures", parents=[obs_options], help="print Figures 1 and 2"
    ).set_defaults(fn=_cmd_figures)
    sub.add_parser(
        "apps", parents=[obs_options], help="list the benchmark suite"
    ).set_defaults(fn=_cmd_apps)

    for name, fn, help_text in (
        ("analyze", _cmd_analyze, "analyze one application"),
        ("jit", _cmd_jit, "run the end-to-end JIT flow on one application"),
        ("timeline", _cmd_timeline, "concurrent-specialization timeline"),
    ):
        p = sub.add_parser(name, parents=[obs_options], help=help_text)
        p.add_argument("app", help="application name, e.g. fft or 470.lbm")
        p.set_defaults(fn=fn)

    p_profile = sub.add_parser(
        "profile",
        parents=[obs_options],
        help="hierarchical self/total-time profile of a run",
    )
    p_profile.add_argument(
        "target", help="application name, or a JSONL trace written by --trace"
    )
    p_profile.add_argument(
        "--clock",
        choices=["real", "virtual"],
        default="real",
        help="which clock to profile: measured perf_counter time or the "
        "modelled CAD virtual_seconds (default: real)",
    )
    p_profile.add_argument(
        "--top", type=int, default=15, help="rows in the hot-path table"
    )
    p_profile.add_argument(
        "--tree", action="store_true", help="also print the full profile tree"
    )
    p_profile.add_argument(
        "--collapsed",
        metavar="FILE",
        default=None,
        help="write Brendan-Gregg collapsed stacks for flamegraph.pl / "
        "speedscope ('-' = stdout)",
    )
    p_profile.set_defaults(fn=_cmd_profile)

    p_heat = sub.add_parser(
        "heat",
        parents=[obs_options],
        help="heat-annotated IR listing (block time shares, kernel flags)",
    )
    p_heat.add_argument("app", help="application name, e.g. fft or 470.lbm")
    p_heat.add_argument(
        "--function", default=None, help="print only this function"
    )
    p_heat.add_argument(
        "--top", type=int, default=10, help="rows in the hottest-block table"
    )
    p_heat.add_argument(
        "--threshold",
        type=float,
        default=0.90,
        help="kernel time-coverage threshold (paper: 0.90)",
    )
    p_heat.set_defaults(fn=_cmd_heat)

    p_fidelity = sub.add_parser(
        "fidelity",
        parents=[obs_options],
        help="compare a run against the paper's published table values",
    )
    p_fidelity.add_argument(
        "--domain",
        choices=["embedded", "scientific", "all"],
        default="embedded",
        help="application subset to analyze (default: embedded)",
    )
    p_fidelity.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="report path (default: BENCH_fidelity_<domain>.json)",
    )
    p_fidelity.add_argument(
        "--full",
        action="store_true",
        help="also check the Table IV cache/CAD extrapolation factor",
    )
    p_fidelity.set_defaults(fn=_cmd_fidelity)

    p_trace = sub.add_parser(
        "trace", help="replay a saved JSONL trace as a per-stage time table"
    )
    p_trace.add_argument("file", help="trace file written by --trace")
    p_trace.add_argument(
        "--timeline",
        action="store_true",
        help="also render the ASCII span timeline",
    )
    p_trace.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help="also write a Chrome trace_event file (chrome://tracing)",
    )
    p_trace.set_defaults(fn=_cmd_trace, trace=None, metrics=False)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_file = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if trace_file or want_metrics:
        from repro import obs

        if trace_file:
            obs.enable_tracing()
        if want_metrics:
            obs.enable_metrics()
        try:
            status = args.fn(args)
        finally:
            if trace_file:
                tracer = obs.disable_tracing()
                count = obs.export_tracer(tracer, trace_file)
                print(f"\nwrote {count} spans to {trace_file}")
            if want_metrics:
                registry = obs.disable_metrics()
                print("\nmetrics snapshot:")
                print(obs.render_snapshot(registry.snapshot()))
        return status
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
