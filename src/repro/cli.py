"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``tables [1|2|3|4|all]`` — regenerate the paper's tables;
- ``figures`` — print the textual renderings of Figures 1 and 2;
- ``apps`` — list the benchmark suite;
- ``analyze <app>`` — full analysis of one application (Table I+II row);
- ``jit <app>`` — run the end-to-end JIT flow on one application;
- ``timeline <app>`` — concurrent-specialization timeline (extension);
- ``trace <file>`` — replay a saved trace as a per-stage time table;
- ``profile <app|file>`` — hierarchical self/total-time profile of a run
  (hot-path table, collapsed-stack flamegraph lines, profile tree);
- ``heat <app>`` — heat-annotated IR listing (per-block time share,
  kernel blocks flagged);
- ``fidelity`` — compare a run's tables against the paper's published
  values and write a machine-readable ``BENCH_*.json`` report;
- ``runs list|show|diff`` — inspect the run ledger (``.repro-runs/``);
- ``regress`` — compare the latest recorded run against a baseline run
  cell-by-cell, exiting non-zero on regression (CI gate);
- ``cache stats|clear`` — inspect or empty the persistent bitstream cache
  (``.repro-cache/``, Section VI-A);
- ``bench`` — measure the parallel runner and the persistent cache against
  the serial cold baseline, writing ``BENCH_parallel.json``;
- ``tail <file>`` — render the last records of a JSONL event log.

Every command accepts ``--trace FILE`` (export a JSONL span trace of the
run), ``--metrics`` (print a metrics snapshot after the run), ``--log
FILE`` (write a structured JSONL event log), and ``--ledger [DIR]``
(record the run — manifest, trace, and event log — in the run ledger);
see :mod:`repro.obs`. The suite-running commands (``analyze``, ``tables``,
``fidelity``) additionally accept ``--jobs N`` / ``--backend`` (worker-pool
sharding) and ``--cache [DIR]`` (persistent bitstream cache).
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.util.timefmt import format_dhms, format_hms


def _parallel_kwargs(args: argparse.Namespace) -> dict:
    """The suite runner's jobs/backend/cache kwargs from parsed options."""
    return {
        "jobs": getattr(args, "jobs", 1),
        "backend": getattr(args, "backend", "process"),
        "cache": getattr(args, "cache", None),
    }


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro import experiments

    which = args.which
    generators = {
        "1": experiments.generate_table1,
        "2": experiments.generate_table2,
        "3": experiments.generate_table3,
        "4": experiments.generate_table4,
    }
    selected = generators.keys() if which == "all" else [which]
    for key in selected:
        table = generators[key](**_parallel_kwargs(args))
        print(table.render())
        print()
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    from repro.experiments import generate_figures

    figs = generate_figures()
    print(figs["figure1"])
    print()
    print(figs["figure2"])
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import ALL_APPS

    for app in ALL_APPS:
        datasets = ", ".join(f"{d.name}={d.size}" for d in app.datasets)
        print(f"{app.name:12s} [{app.domain:10s}] {app.description}")
        print(f"{'':12s} datasets: {datasets}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.domain:
        return _cmd_analyze_domain(args)
    if not args.app:
        print(
            "error: analyze needs an application name or --domain",
            file=sys.stderr,
        )
        return 2

    from repro.experiments import analyze_app
    from repro.experiments.runner import resolve_bitstream_cache

    bitstream_cache = resolve_bitstream_cache(getattr(args, "cache", None))
    a = analyze_app(
        args.app,
        jobs=getattr(args, "jobs", 1),
        bitstream_cache=bitstream_cache,
    )
    _attach_run_scalars([a])
    if bitstream_cache is not None:
        from repro.obs.ledger import current_run

        recorder = current_run()
        if recorder is not None:
            recorder.attach_cache(bitstream_cache.stats())
    comp = a.compiled.compilation
    print(f"{a.name} ({a.domain})")
    print(
        f"  code: {comp.files} files, {comp.loc} LOC, {comp.basic_blocks} blocks, "
        f"{comp.instructions} instructions (compiled in {comp.compile_seconds:.2f}s)"
    )
    print(
        f"  runtime: VM {a.runtime.vm_seconds:.3f}s, native "
        f"{a.runtime.native_seconds:.3f}s (ratio {a.runtime.ratio:.2f})"
    )
    print(
        f"  coverage: live {a.coverage.live_pct:.1f}% / dead "
        f"{a.coverage.dead_pct:.1f}% / const {a.coverage.const_pct:.1f}%"
    )
    print(
        f"  kernel: {a.kernel.size_pct:.1f}% of code, "
        f"{a.kernel.freq_pct:.1f}% of time"
    )
    print(
        f"  ASIP ratio: {a.asip_max.ratio:.2f}x upper bound, "
        f"{a.asip_pruned.ratio:.2f}x with @50pS3L "
        f"({a.specialization.candidate_count} candidates)"
    )
    print(
        f"  overhead: search {a.search_pruned.search_seconds * 1000:.2f} ms, "
        f"tool flow {format_hms(a.specialization.toolflow_seconds)} (m:s)"
    )
    be = a.breakeven.live_aware_seconds
    print(
        "  break-even: "
        + (format_dhms(be) + " (d:h:m:s)" if math.isfinite(be) else "never")
    )
    return 0


def _attach_run_scalars(analyses) -> None:
    """Record scalar results on the active ledger run, if any."""
    from repro.obs.ledger import current_run, scalars_from_analyses

    recorder = current_run()
    if recorder is not None:
        recorder.attach_scalars(scalars_from_analyses(analyses))


def _cmd_analyze_domain(args: argparse.Namespace) -> int:
    from repro.experiments import analyze_suite

    domain = None if args.domain == "all" else args.domain
    # analyze_suite attaches its scalars (and cache statistics) to the
    # active ledger run itself.
    analyses = analyze_suite(domain, **_parallel_kwargs(args))
    for a in analyses:
        be = a.breakeven.live_aware_seconds
        print(
            f"{a.name:12s} [{a.domain:10s}] "
            f"ASIP {a.asip_pruned.ratio:5.2f}x  "
            f"{a.specialization.candidate_count:3d} candidates  "
            f"tool flow {format_hms(a.specialization.toolflow_seconds)} (m:s)  "
            f"break-even "
            + (format_dhms(be) if math.isfinite(be) else "never")
        )
    return 0


def _cmd_jit(args: argparse.Namespace) -> int:
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    spec = get_app(args.app)
    compiled = compile_app(spec)
    system = JitIseSystem()
    result = system.run_application(
        compiled.compilation,
        dataset_size=spec.train.size,
        dataset_seed=spec.train.seed,
    )
    print(f"{spec.name}: ASIP ratio {result.asip_ratio:.2f}x")
    print(f"  VM/native ratio: {result.runtime.ratio:.2f}")
    print(
        f"  custom instructions: {result.specialization.candidate_count}, "
        f"tool flow {format_hms(result.specialization.toolflow_seconds)} (m:s)"
    )
    print(f"  patched output identical: {result.output_equal}")
    return 0 if result.output_equal else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core import AsipSpecializationProcess, TimelineSimulator
    from repro.apps import compile_app, get_app
    from repro.profiling import classify_blocks

    spec = get_app(args.app)
    compiled = compile_app(spec)
    profiles = {ds.name: compiled.run(ds).profile for ds in spec.datasets}
    coverage = classify_blocks(compiled.module, list(profiles.values()))
    report = AsipSpecializationProcess().run(compiled.module, profiles["train"])
    result = TimelineSimulator().simulate(
        compiled.module, profiles["train"], coverage, report
    )
    print(result.event_log())
    print(f"\nfinal live-code rate: {result.final_rate:.2f}x baseline")
    for label, value in (
        ("dedicated-host break-even", result.dedicated_break_even),
        ("self-hosted break-even", result.self_hosted_break_even),
    ):
        print(
            f"{label}: "
            + (format_dhms(value) if math.isfinite(value) else "never")
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        records = obs.read_jsonl(args.file)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    errors = obs.validate_trace(records)
    if errors:
        for err in errors:
            print(f"invalid trace: {err}", file=sys.stderr)
        return 1
    print(obs.render_stage_table(records))
    if args.timeline:
        print()
        print(obs.render_timeline(records))
    if args.chrome:
        obs.write_chrome_trace(records, args.chrome)
        print(f"\nwrote Chrome trace_event file: {args.chrome}")
    return 0


def _traced_run_records(app_name: str):
    """Run the end-to-end JIT flow on *app_name* under the global tracer
    and return the finished spans as records.

    If tracing is already on (the user passed ``--trace``), the run's spans
    simply join the global trace and get exported too; otherwise tracing is
    enabled just for this run and switched back off afterwards.
    """
    from repro import obs
    from repro.apps import compile_app, get_app
    from repro.core import JitIseSystem

    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    if not was_enabled:
        obs.enable_tracing()
    try:
        spec = get_app(app_name)
        compiled = compile_app(spec)
        JitIseSystem().run_application(
            compiled.compilation,
            dataset_size=spec.train.size,
            dataset_seed=spec.train.seed,
        )
        return obs.tracer_records(tracer)
    finally:
        if not was_enabled:
            obs.disable_tracing()


def _cmd_profile(args: argparse.Namespace) -> int:
    import os

    from repro import obs

    if os.path.exists(args.target):
        try:
            records = obs.read_jsonl(args.target)
        except ValueError as exc:
            print(f"invalid trace: {exc}", file=sys.stderr)
            return 1
    else:
        records = _traced_run_records(args.target)
    if not records:
        print("(empty trace: nothing to profile)")
        return 0
    profile = obs.build_profile(records)
    print(profile.hot_table(clock=args.clock, top=args.top).render())
    if args.tree:
        print()
        print(profile.render(clock=args.clock))
    if args.collapsed:
        lines = profile.collapsed(clock=args.clock)
        if args.collapsed == "-":
            print()
            for line in lines:
                print(line)
        else:
            with open(args.collapsed, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + ("\n" if lines else ""))
            print(
                f"\nwrote {len(lines)} collapsed stacks ({args.clock} time) "
                f"to {args.collapsed}"
            )
    return 0


def _cmd_heat(args: argparse.Namespace) -> int:
    from repro.apps import compile_app, get_app
    from repro.obs.heat import compute_heat, render_heat

    spec = get_app(args.app)
    compiled = compile_app(spec)
    profile = compiled.run(spec.train).profile
    heat = compute_heat(
        compiled.module, profile, kernel_threshold=args.threshold
    )
    try:
        print(
            render_heat(
                compiled.module, heat, function=args.function, top=args.top
            )
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from repro.obs.fidelity import default_report_path, run_fidelity

    out = args.out or default_report_path(args.domain)
    report = run_fidelity(
        domain=args.domain,
        out=out,
        include_table4=args.full,
        **_parallel_kwargs(args),
    )
    print(report.render())
    print(f"\nwrote fidelity report: {out}")
    if not report.ok:
        for cell in report.failures:
            print(
                f"FAIL {cell.table} {cell.row}/{cell.column}: "
                f"expected {cell.expected:g}, got {cell.actual:g}",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.ledger import RunLedger, render_manifest, render_run_list

    ledger = RunLedger(args.ledger_dir)
    if args.runs_command == "list":
        run_ids = ledger.run_ids()
        if not run_ids:
            print(f"(no runs recorded in {ledger.path})")
            return 0
        if args.last and args.last > 0:
            run_ids = run_ids[-args.last :]
        print(render_run_list([ledger.load(run_id) for run_id in run_ids]))
        return 0
    if args.runs_command == "show":
        try:
            manifest = ledger.load(ledger.resolve(args.run))
        except LookupError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_manifest(manifest))
        return 0
    # diff: informational cell-by-cell comparison, never gating.
    from repro.obs.regress import compare_manifests

    try:
        baseline = ledger.load(ledger.resolve(args.a))
        current = ledger.load(ledger.resolve(args.b))
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compare_manifests(baseline, current)
    print(report.render(show_all=args.all))
    for warning in report.config_mismatches:
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.obs.ledger import RunLedger
    from repro.obs.regress import compare_manifests, parse_tolerances

    ledger = RunLedger(args.ledger_dir)
    try:
        tolerances = parse_tolerances(args.tol)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        current_id = ledger.resolve(args.candidate)
        baseline_id = ledger.resolve(args.baseline)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    history = None
    if args.repeat > 1:
        run_ids = ledger.run_ids()
        upto = run_ids.index(current_id) + 1
        history = [
            ledger.load(run_id)
            for run_id in run_ids[max(0, upto - args.repeat) : upto]
        ]
    report = compare_manifests(
        ledger.load(baseline_id),
        ledger.load(current_id),
        tolerances=tolerances,
        history=history,
    )
    print(report.render(show_all=args.all))
    for warning in report.config_mismatches:
        print(f"warning: {warning}", file=sys.stderr)
    if not report.ok:
        print(
            f"\n{len(report.regressions)} regression(s) vs {baseline_id}:",
            file=sys.stderr,
        )
        for delta in report.regressions:
            print(f"  REGRESSION {delta.describe()}", file=sys.stderr)
        return 1
    print(
        f"\nno regressions vs {baseline_id} "
        f"({len(report.checked)} checked cells)"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.cache import PersistentBitstreamCache

    cache = PersistentBitstreamCache(root=args.dir)
    if args.cache_command == "clear":
        dropped = cache.clear()
        print(f"cleared {dropped} cached bitstream(s) from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"bitstream cache at {stats['root']}:")
    print(f"  entries:   {stats['entries']}")
    print(f"  bytes:     {stats['bytes']}")
    if stats["hits"] or stats["misses"]:
        print(
            f"  session:   {stats['hits']} hit(s), {stats['misses']} miss(es)"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import render_bench, run_parallel_bench

    report = run_parallel_bench(
        domain=args.domain,
        jobs=args.jobs,
        backend=args.backend,
        out=args.out,
        cache_dir=args.cache_dir,
    )
    print(render_bench(report))
    if args.out:
        print(f"\nwrote benchmark report: {args.out}")
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.obs.log import read_log, render_tail

    try:
        records = read_log(args.file)
    except OSError as exc:
        print(f"cannot read log: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid log: {exc}", file=sys.stderr)
        return 1
    print(render_tail(records, limit=args.lines, level=args.level))
    return 0


def _run_config(args: argparse.Namespace) -> dict:
    """JSON-safe view of a command's own arguments for the run manifest."""
    skip = {"fn", "trace", "metrics", "ledger", "log"}
    config = {}
    for key, value in vars(args).items():
        if key in skip:
            continue
        if value is None or isinstance(value, (str, int, float, bool)):
            config[key] = value
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JIT instruction-set-extension reproduction toolkit",
    )
    obs_options = argparse.ArgumentParser(add_help=False)
    obs_options.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a span trace of this run and export it as JSON lines",
    )
    obs_options.add_argument(
        "--metrics",
        action="store_true",
        help="collect metrics and print a snapshot after the run",
    )
    obs_options.add_argument(
        "--log",
        metavar="FILE",
        default=None,
        help="write a structured JSONL event log of this run",
    )
    obs_options.add_argument(
        "--ledger",
        metavar="DIR",
        nargs="?",
        const=".repro-runs",
        default=None,
        help="record this run (manifest + trace + event log) in the run "
        "ledger (default dir: .repro-runs)",
    )
    parallel_options = argparse.ArgumentParser(add_help=False)
    parallel_options.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the suite across N workers (default: 1 = serial)",
    )
    parallel_options.add_argument(
        "--backend",
        choices=["process", "thread"],
        default="process",
        help="worker pool flavour for --jobs (default: process; use thread "
        "to keep --log event records complete)",
    )
    parallel_options.add_argument(
        "--cache",
        metavar="DIR",
        nargs="?",
        const=".repro-cache",
        default=None,
        help="serve previously implemented candidates from the persistent "
        "bitstream cache (default dir: .repro-cache)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser(
        "tables",
        parents=[obs_options, parallel_options],
        help="regenerate the paper's tables",
    )
    p_tables.add_argument(
        "which", nargs="?", default="all", choices=["1", "2", "3", "4", "all"]
    )
    p_tables.set_defaults(fn=_cmd_tables)

    sub.add_parser(
        "figures", parents=[obs_options], help="print Figures 1 and 2"
    ).set_defaults(fn=_cmd_figures)
    sub.add_parser(
        "apps", parents=[obs_options], help="list the benchmark suite"
    ).set_defaults(fn=_cmd_apps)

    p_analyze = sub.add_parser(
        "analyze",
        parents=[obs_options, parallel_options],
        help="analyze one application or a whole domain",
    )
    p_analyze.add_argument(
        "app", nargs="?", help="application name, e.g. fft or 470.lbm"
    )
    p_analyze.add_argument(
        "--domain",
        choices=["embedded", "scientific", "all"],
        default=None,
        help="analyze every application of a domain instead of one app",
    )
    p_analyze.set_defaults(fn=_cmd_analyze)

    for name, fn, help_text in (
        ("jit", _cmd_jit, "run the end-to-end JIT flow on one application"),
        ("timeline", _cmd_timeline, "concurrent-specialization timeline"),
    ):
        p = sub.add_parser(name, parents=[obs_options], help=help_text)
        p.add_argument("app", help="application name, e.g. fft or 470.lbm")
        p.set_defaults(fn=fn)

    p_profile = sub.add_parser(
        "profile",
        parents=[obs_options],
        help="hierarchical self/total-time profile of a run",
    )
    p_profile.add_argument(
        "target", help="application name, or a JSONL trace written by --trace"
    )
    p_profile.add_argument(
        "--clock",
        choices=["real", "virtual"],
        default="real",
        help="which clock to profile: measured perf_counter time or the "
        "modelled CAD virtual_seconds (default: real)",
    )
    p_profile.add_argument(
        "--top", type=int, default=15, help="rows in the hot-path table"
    )
    p_profile.add_argument(
        "--tree", action="store_true", help="also print the full profile tree"
    )
    p_profile.add_argument(
        "--collapsed",
        metavar="FILE",
        default=None,
        help="write Brendan-Gregg collapsed stacks for flamegraph.pl / "
        "speedscope ('-' = stdout)",
    )
    p_profile.set_defaults(fn=_cmd_profile)

    p_heat = sub.add_parser(
        "heat",
        parents=[obs_options],
        help="heat-annotated IR listing (block time shares, kernel flags)",
    )
    p_heat.add_argument("app", help="application name, e.g. fft or 470.lbm")
    p_heat.add_argument(
        "--function", default=None, help="print only this function"
    )
    p_heat.add_argument(
        "--top", type=int, default=10, help="rows in the hottest-block table"
    )
    p_heat.add_argument(
        "--threshold",
        type=float,
        default=0.90,
        help="kernel time-coverage threshold (paper: 0.90)",
    )
    p_heat.set_defaults(fn=_cmd_heat)

    p_fidelity = sub.add_parser(
        "fidelity",
        parents=[obs_options, parallel_options],
        help="compare a run against the paper's published table values",
    )
    p_fidelity.add_argument(
        "--domain",
        choices=["embedded", "scientific", "all"],
        default="embedded",
        help="application subset to analyze (default: embedded)",
    )
    p_fidelity.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="report path (default: BENCH_fidelity_<domain>.json)",
    )
    p_fidelity.add_argument(
        "--full",
        action="store_true",
        help="also check the Table IV cache/CAD extrapolation factor",
    )
    p_fidelity.set_defaults(fn=_cmd_fidelity)

    p_trace = sub.add_parser(
        "trace", help="replay a saved JSONL trace as a per-stage time table"
    )
    p_trace.add_argument("file", help="trace file written by --trace")
    p_trace.add_argument(
        "--timeline",
        action="store_true",
        help="also render the ASCII span timeline",
    )
    p_trace.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help="also write a Chrome trace_event file (chrome://tracing)",
    )
    p_trace.set_defaults(fn=_cmd_trace, trace=None, metrics=False)

    ledger_dir_kwargs = dict(
        metavar="DIR",
        dest="ledger_dir",
        default=".repro-runs",
        help="run ledger directory (default: .repro-runs)",
    )

    p_runs = sub.add_parser("runs", help="inspect the run ledger")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser("list", help="list recorded runs")
    p_runs_list.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_list.add_argument(
        "--last", type=int, default=0, help="show only the last N runs"
    )
    p_runs_show = runs_sub.add_parser("show", help="show one run's manifest")
    p_runs_show.add_argument(
        "run", help="run id, unique prefix, 'latest', or 'latest~N'"
    )
    p_runs_show.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_diff = runs_sub.add_parser(
        "diff", help="cell-by-cell diff of two runs (informational)"
    )
    p_runs_diff.add_argument("a", help="baseline run spec")
    p_runs_diff.add_argument("b", help="current run spec")
    p_runs_diff.add_argument("--ledger", **ledger_dir_kwargs)
    p_runs_diff.add_argument(
        "--all", action="store_true", help="show unchanged cells too"
    )
    p_runs.set_defaults(fn=_cmd_runs, trace=None, metrics=False, log=None)
    for p in (p_runs_list, p_runs_show, p_runs_diff):
        p.set_defaults(fn=_cmd_runs, trace=None, metrics=False, log=None)

    p_regress = sub.add_parser(
        "regress",
        help="compare a recorded run against a baseline, fail on regression",
    )
    p_regress.add_argument(
        "--baseline",
        default="latest~1",
        help="baseline run spec (default: latest~1)",
    )
    p_regress.add_argument(
        "--candidate",
        default="latest",
        help="run under test (default: latest)",
    )
    p_regress.add_argument("--ledger", **ledger_dir_kwargs)
    p_regress.add_argument(
        "--tol",
        action="append",
        default=[],
        metavar="PATTERN=REL",
        help="override a cell tolerance (REL float, or 'info' to make the "
        "cells informational); repeatable, first match wins",
    )
    p_regress.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="widen tolerances by a median/MAD noise band estimated over "
        "the last N runs ending at the candidate (default: 1 = off)",
    )
    p_regress.add_argument(
        "--all", action="store_true", help="show unchanged cells too"
    )
    p_regress.set_defaults(fn=_cmd_regress, trace=None, metrics=False, log=None)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent bitstream cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_dir_kwargs = dict(
        metavar="DIR",
        dest="dir",
        default=".repro-cache",
        help="cache directory (default: .repro-cache)",
    )
    p_cache_stats = cache_sub.add_parser(
        "stats", help="show entry count, bytes, and session hit/miss counts"
    )
    p_cache_stats.add_argument("--dir", **cache_dir_kwargs)
    p_cache_clear = cache_sub.add_parser(
        "clear", help="drop every cached bitstream"
    )
    p_cache_clear.add_argument("--dir", **cache_dir_kwargs)
    for p in (p_cache, p_cache_stats, p_cache_clear):
        p.set_defaults(fn=_cmd_cache, trace=None, metrics=False, log=None)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the parallel runner and the persistent cache",
    )
    p_bench.add_argument(
        "--domain",
        choices=["embedded", "scientific", "all"],
        default="embedded",
        help="application subset to benchmark (default: embedded)",
    )
    p_bench.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the parallel phase (default: 4)",
    )
    p_bench.add_argument(
        "--backend",
        choices=["process", "thread"],
        default="process",
        help="worker pool flavour (default: process)",
    )
    p_bench.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_parallel.json",
        help="report path (default: BENCH_parallel.json)",
    )
    p_bench.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory for the warm phases (default: a temporary "
        "directory, removed afterwards)",
    )
    p_bench.set_defaults(fn=_cmd_bench, trace=None, metrics=False, log=None)

    p_tail = sub.add_parser(
        "tail", help="render the last records of a JSONL event log"
    )
    p_tail.add_argument("file", help="event log written by --log or --ledger")
    p_tail.add_argument(
        "-n", "--lines", type=int, default=20, help="records to show"
    )
    p_tail.add_argument(
        "--level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="show only records at or above this level",
    )
    p_tail.set_defaults(fn=_cmd_tail, trace=None, metrics=False, log=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_file = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    log_file = getattr(args, "log", None)
    ledger_dir = getattr(args, "ledger", None)
    if not (trace_file or want_metrics or log_file or ledger_dir):
        return args.fn(args)

    from pathlib import Path

    from repro import obs

    recorder = None
    if ledger_dir:
        # A recorded run must measure real work, not cache hits.
        from repro.experiments.runner import clear_cache

        clear_cache()
        recorder = obs.start_run(
            ledger_dir,
            command=args.command,
            config=_run_config(args),
            argv=list(argv) if argv is not None else sys.argv[1:],
        )
        if log_file is None:
            log_file = str(Path(recorder.run_dir) / "log.jsonl")
    if trace_file or recorder is not None:
        obs.enable_tracing()
    if want_metrics or recorder is not None:
        obs.enable_metrics()
    if log_file:
        obs.enable_logging(
            log_file, run_id=recorder.run_id if recorder else None
        )
    status = None
    try:
        status = args.fn(args)
        return status
    finally:
        if log_file:
            obs.disable_logging()
        tracer = obs.disable_tracing() if obs.get_tracer().enabled else None
        registry = (
            obs.disable_metrics() if obs.get_metrics().enabled else None
        )
        if trace_file and tracer is not None:
            count = obs.export_tracer(tracer, trace_file)
            print(f"\nwrote {count} spans to {trace_file}")
        if want_metrics and registry is not None:
            print("\nmetrics snapshot:")
            print(obs.render_snapshot(registry.snapshot()))
        if recorder is not None:
            manifest_path = obs.finish_run(
                tracer=tracer,
                metrics=registry,
                status=status if status is not None else -1,
                log_path=log_file,
            )
            print(f"\nrecorded run {recorder.run_id} -> {manifest_path}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
