"""MiniC lexer.

First stage of the frontend standing in for llvm-gcc in the paper's
Figure 1 tool flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.frontend.errors import CompileError


class TokenKind(Enum):
    IDENT = auto()
    INT_LIT = auto()
    FLOAT_LIT = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


KEYWORDS = {
    "int",
    "long",
    "float",
    "double",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

# Longest-match-first punctuation table.
PUNCTUATION = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "?",
    ":",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: object = None  # parsed literal value for INT_LIT / FLOAT_LIT

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Tokenize MiniC source. Supports ``//`` and ``/* */`` comments."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> CompileError:
        return CompileError(msg, line, col, filename)

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # numeric literals
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and (source[i] in "0123456789abcdefABCDEF"):
                    i += 1
                text = source[start:i]
                tokens.append(Token(TokenKind.INT_LIT, text, line, col, int(text, 16)))
                col += i - start
                continue
            while i < n and source[i].isdigit():
                i += 1
            if i < n and source[i] == ".":
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                if i >= n or not source[i].isdigit():
                    raise error("malformed float exponent")
                while i < n and source[i].isdigit():
                    i += 1
            suffix_f = False
            if i < n and source[i] in "fF" and is_float:
                suffix_f = True
                i += 1
            text = source[start:i]
            if is_float:
                value = float(text[:-1] if suffix_f else text)
                tokens.append(Token(TokenKind.FLOAT_LIT, text, line, col, value))
            else:
                tokens.append(Token(TokenKind.INT_LIT, text, line, col, int(text)))
            col += i - start
            continue
        # punctuation
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, line, col))
                i += len(punct)
                col += len(punct)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
