"""Lower the MiniC AST to IR (with integrated type checking).

Classic C-frontend lowering: every local variable becomes an ``alloca``
slot accessed by loads/stores (mem2reg later rebuilds SSA), arrays and
pointers become GEP arithmetic, short-circuit operators become control flow,
and the usual arithmetic conversions are applied (rank: double > float >
long > int).

This lowering puts programs into the bitcode form the paper's ISE
algorithms operate on (Figure 1, llvm-gcc frontend).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.types import F32, F64, I1, I32, I64, PTR, Type, VOID
from repro.ir.values import Constant, Value
from repro.vm.intrinsics import INTRINSICS, is_intrinsic

_SCALAR_IR = {"int": I32, "long": I64, "float": F32, "double": F64, "void": VOID}
_RANK = {"int": 0, "long": 1, "float": 2, "double": 3}


def ir_type(ctype: ast.CType) -> Type:
    if ctype.is_pointer:
        return PTR
    try:
        return _SCALAR_IR[ctype.base]
    except KeyError:  # pragma: no cover - parser restricts names
        raise CompileError(f"unknown type {ctype}") from None


@dataclass
class VarInfo:
    """A resolved variable binding."""

    ctype: ast.CType
    kind: str  # "scalar" (alloca slot) | "array" | "global" | "global_array"
    storage: Value  # alloca instruction or GlobalVariable
    elem_ctype: ast.CType | None = None  # for arrays


class FunctionCodegen:
    """Generates IR for one function body."""

    def __init__(self, module: Module, func_def: ast.FunctionDef, filename: str):
        self.module = module
        self.func_def = func_def
        self.filename = filename
        self.func: Function = module.function(func_def.name)
        self.builder = IRBuilder()
        self.scopes: list[dict[str, VarInfo]] = []
        self.break_targets: list[BasicBlock] = []
        self.continue_targets: list[BasicBlock] = []
        self._dead_counter = 0

    def error(self, msg: str, node: ast.Node) -> CompileError:
        return CompileError(msg, node.line, node.column, self.filename)

    # -- scope handling --------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, info: VarInfo, node: ast.Node) -> None:
        if name in self.scopes[-1]:
            raise self.error(f"redeclaration of {name!r}", node)
        self.scopes[-1][name] = info

    def lookup(self, name: str, node: ast.Node) -> VarInfo:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        gv = self.module.globals.get(name)
        if gv is not None:
            # Resolved lazily so functions can reference globals declared
            # later in the file.
            ctype = _GLOBAL_CTYPES[id(gv)]
            kind = "global_array" if gv.count > 1 else "global"
            return VarInfo(ctype, kind, gv, elem_ctype=ctype)
        raise self.error(f"use of undeclared identifier {name!r}", node)

    # -- entry point -------------------------------------------------------
    def generate(self) -> None:
        entry = self.func.add_block("entry")
        self.builder.set_block(entry)
        self.push_scope()
        # Spill parameters into stack slots (mem2reg will promote them).
        for param, arg in zip(self.func_def.params, self.func.args):
            ty = ir_type(param.ctype)
            slot = self.builder.alloca(ty, 1, name=f"{param.name}.slot")
            self.builder.store(arg, slot)
            self.declare(
                param.name, VarInfo(param.ctype, "scalar", slot), param
            )
        self.gen_block(self.func_def.body)
        self.pop_scope()
        # Implicit return at the end of a fall-through path.
        block = self.builder.block
        assert block is not None
        if block.terminator is None:
            if self.func.return_type.is_void:
                self.builder.ret()
            else:
                self.builder.ret(Constant(self.func.return_type, 0))

    # -- statements ------------------------------------------------------------
    def gen_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self.gen_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise self.error("break outside of loop", stmt)
            self.builder.br(self.break_targets[-1])
            self._start_dead_block()
        elif isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise self.error("continue outside of loop", stmt)
            self.builder.br(self.continue_targets[-1])
            self._start_dead_block()
        else:  # pragma: no cover
            raise self.error(f"cannot lower statement {type(stmt).__name__}", stmt)

    def _start_dead_block(self) -> None:
        """After an unconditional jump, park the builder in a fresh block.

        The block is unreachable and removed by simplify-cfg; this lets the
        parser-level AST contain statements after return/break without
        tripping the "append after terminator" guard.
        """
        self._dead_counter += 1
        dead = self.func.add_block(f"dead{self._dead_counter}")
        self.builder.set_block(dead)

    def gen_block(self, block: ast.Block) -> None:
        self.push_scope()
        for stmt in block.statements:
            self.gen_statement(stmt)
        self.pop_scope()

    def gen_var_decl(self, decl: ast.VarDecl) -> None:
        if decl.ctype.base == "void" and not decl.ctype.is_pointer:
            raise self.error("cannot declare a void variable", decl)
        if decl.array_size is not None:
            elem_ty = ir_type(decl.ctype)
            slot = self.builder.alloca(elem_ty, decl.array_size, name=decl.name)
            self.declare(
                decl.name,
                VarInfo(decl.ctype, "array", slot, elem_ctype=decl.ctype),
                decl,
            )
            return
        ty = ir_type(decl.ctype)
        slot = self.builder.alloca(ty, 1, name=f"{decl.name}.slot")
        self.declare(decl.name, VarInfo(decl.ctype, "scalar", slot), decl)
        if decl.init is not None:
            value, vtype = self.gen_expr(decl.init)
            value = self.convert(value, vtype, decl.ctype, decl)
            self.builder.store(value, slot)

    def gen_if(self, stmt: ast.If) -> None:
        cond = self.gen_condition(stmt.cond)
        then_block = self.func.add_block(self.func.fresh_name("if.then."))
        merge_block = self.func.add_block(self.func.fresh_name("if.end."))
        if stmt.else_body is not None:
            else_block = self.func.add_block(self.func.fresh_name("if.else."))
        else:
            else_block = merge_block
        self.builder.condbr(cond, then_block, else_block)

        self.builder.set_block(then_block)
        self.gen_statement(stmt.then_body)
        if self.builder.block.terminator is None:
            self.builder.br(merge_block)
        if stmt.else_body is not None:
            self.builder.set_block(else_block)
            self.gen_statement(stmt.else_body)
            if self.builder.block.terminator is None:
                self.builder.br(merge_block)
        self.builder.set_block(merge_block)

    def gen_while(self, stmt: ast.While) -> None:
        cond_block = self.func.add_block(self.func.fresh_name("while.cond."))
        body_block = self.func.add_block(self.func.fresh_name("while.body."))
        exit_block = self.func.add_block(self.func.fresh_name("while.end."))
        self.builder.br(cond_block)
        self.builder.set_block(cond_block)
        cond = self.gen_condition(stmt.cond)
        self.builder.condbr(cond, body_block, exit_block)
        self.break_targets.append(exit_block)
        self.continue_targets.append(cond_block)
        self.builder.set_block(body_block)
        self.gen_statement(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(cond_block)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.set_block(exit_block)

    def gen_for(self, stmt: ast.For) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        cond_block = self.func.add_block(self.func.fresh_name("for.cond."))
        body_block = self.func.add_block(self.func.fresh_name("for.body."))
        step_block = self.func.add_block(self.func.fresh_name("for.step."))
        exit_block = self.func.add_block(self.func.fresh_name("for.end."))
        self.builder.br(cond_block)
        self.builder.set_block(cond_block)
        if stmt.cond is not None:
            cond = self.gen_condition(stmt.cond)
            self.builder.condbr(cond, body_block, exit_block)
        else:
            self.builder.br(body_block)
        self.break_targets.append(exit_block)
        self.continue_targets.append(step_block)
        self.builder.set_block(body_block)
        self.gen_statement(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.br(step_block)
        self.builder.set_block(step_block)
        if stmt.step is not None:
            self.gen_expr(stmt.step)
        self.builder.br(cond_block)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.set_block(exit_block)
        self.pop_scope()

    def gen_return(self, stmt: ast.Return) -> None:
        ret_ty = self.func.return_type
        if stmt.value is None:
            if not ret_ty.is_void:
                raise self.error("return without value in non-void function", stmt)
            self.builder.ret()
        else:
            if ret_ty.is_void:
                raise self.error("return with value in void function", stmt)
            value, vtype = self.gen_expr(stmt.value)
            target_ctype = self.func_def.return_type
            value = self.convert(value, vtype, target_ctype, stmt)
            self.builder.ret(value)
        self._start_dead_block()

    # -- expressions -------------------------------------------------------
    def gen_expr(self, expr: ast.Expr) -> tuple[Value, ast.CType]:
        if isinstance(expr, ast.IntLiteral):
            # Literals too large for i32 become long, as in C.
            if -(2**31) <= expr.value < 2**31:
                return Constant(I32, expr.value), ast.CType("int")
            return Constant(I64, expr.value), ast.CType("long")
        if isinstance(expr, ast.FloatLiteral):
            return Constant(F64, expr.value), ast.CType("double")
        if isinstance(expr, ast.NameRef):
            return self.gen_name_ref(expr)
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Conditional):
            return self.gen_conditional(expr)
        if isinstance(expr, ast.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.gen_incdec(expr)
        if isinstance(expr, ast.Index):
            addr, elem_ctype = self.gen_index_address(expr)
            value = self.builder.load(ir_type(elem_ctype), addr)
            return value, elem_ctype
        if isinstance(expr, ast.Call):
            return self.gen_call(expr)
        if isinstance(expr, ast.Cast):
            value, vtype = self.gen_expr(expr.operand)
            return (
                self.convert(value, vtype, expr.target_type, expr, explicit=True),
                expr.target_type,
            )
        raise self.error(f"cannot lower expression {type(expr).__name__}", expr)

    def gen_name_ref(self, expr: ast.NameRef) -> tuple[Value, ast.CType]:
        info = self.lookup(expr.name, expr)
        if info.kind in ("array", "global_array"):
            # Arrays decay to pointers.
            return info.storage, info.ctype.pointer_to()
        if info.kind == "global":
            value = self.builder.load(ir_type(info.ctype), info.storage)
            return value, info.ctype
        value = self.builder.load(ir_type(info.ctype), info.storage)
        return value, info.ctype

    # -- lvalues -----------------------------------------------------------
    def gen_lvalue(self, expr: ast.Expr) -> tuple[Value, ast.CType]:
        """Return (address, ctype-of-stored-value)."""
        if isinstance(expr, ast.NameRef):
            info = self.lookup(expr.name, expr)
            if info.kind in ("array", "global_array"):
                raise self.error(f"cannot assign to array {expr.name!r}", expr)
            return info.storage, info.ctype
        if isinstance(expr, ast.Index):
            return self.gen_index_address(expr)
        raise self.error("expression is not assignable", expr)

    def gen_index_address(self, expr: ast.Index) -> tuple[Value, ast.CType]:
        base, base_ctype = self.gen_expr(expr.base)
        if not base_ctype.is_pointer:
            raise self.error(f"cannot index non-pointer type {base_ctype}", expr)
        elem_ctype = base_ctype.pointee()
        if elem_ctype.base == "void" and not elem_ctype.is_pointer:
            raise self.error("cannot index void*", expr)
        index, index_ctype = self.gen_expr(expr.index)
        index = self.to_int(index, index_ctype, expr)
        elem_size = 8 if elem_ctype.is_pointer else ir_type(elem_ctype).size_bytes
        addr = self.builder.gep(base, index, elem_size)
        return addr, elem_ctype

    # -- operators ---------------------------------------------------------
    def gen_unary(self, expr: ast.Unary) -> tuple[Value, ast.CType]:
        value, ctype = self.gen_expr(expr.operand)
        if expr.op == "-":
            if ctype.is_pointer:
                raise self.error("cannot negate a pointer", expr)
            if _SCALAR_IR[ctype.base].is_float:
                return self.builder.fneg(value), ctype
            zero = Constant(ir_type(ctype), 0)
            return self.builder.sub(zero, value), ctype
        if expr.op == "~":
            if ctype.is_pointer or _SCALAR_IR[ctype.base].is_float:
                raise self.error(f"~ requires an integer, got {ctype}", expr)
            return self.builder.xor(value, Constant(ir_type(ctype), -1)), ctype
        if expr.op == "!":
            cond = self.to_bool(value, ctype, expr)
            inverted = self.builder.xor(cond, Constant(I1, 1))
            return self.builder.zext(inverted, I32), ast.CType("int")
        raise self.error(f"unknown unary operator {expr.op!r}", expr)

    def gen_binary(self, expr: ast.Binary) -> tuple[Value, ast.CType]:
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_logical(expr)

        lhs, ltype = self.gen_expr(expr.lhs)
        rhs, rtype = self.gen_expr(expr.rhs)

        # Pointer arithmetic: ptr +/- int
        if ltype.is_pointer and op in ("+", "-") and not rtype.is_pointer:
            index = self.to_int(rhs, rtype, expr)
            if op == "-":
                zero = Constant(index.type, 0)
                index = self.builder.sub(zero, index)
            elem = ltype.pointee()
            elem_size = 8 if elem.is_pointer else ir_type(elem).size_bytes
            return self.builder.gep(lhs, index, elem_size), ltype
        if ltype.is_pointer or rtype.is_pointer:
            if op in ("==", "!="):
                pred = ICmpPred.EQ if op == "==" else ICmpPred.NE
                cmp = self.builder.icmp(pred, lhs, rhs)
                return self.builder.zext(cmp, I32), ast.CType("int")
            raise self.error(f"invalid pointer operands to {op!r}", expr)

        lhs, rhs, common = self.usual_conversions(lhs, ltype, rhs, rtype, expr)
        is_float = _SCALAR_IR[common.base].is_float

        arith = {
            "+": (Opcode.ADD, Opcode.FADD),
            "-": (Opcode.SUB, Opcode.FSUB),
            "*": (Opcode.MUL, Opcode.FMUL),
            "/": (Opcode.SDIV, Opcode.FDIV),
            "%": (Opcode.SREM, Opcode.FREM),
        }
        if op in arith:
            int_op, float_op = arith[op]
            return self.builder.binop(float_op if is_float else int_op, lhs, rhs), common
        bitwise = {
            "&": Opcode.AND,
            "|": Opcode.OR,
            "^": Opcode.XOR,
            "<<": Opcode.SHL,
            ">>": Opcode.ASHR,
        }
        if op in bitwise:
            if is_float:
                raise self.error(f"bitwise {op!r} on floating type", expr)
            return self.builder.binop(bitwise[op], lhs, rhs), common
        compare = {
            "==": (ICmpPred.EQ, FCmpPred.OEQ),
            "!=": (ICmpPred.NE, FCmpPred.ONE),
            "<": (ICmpPred.SLT, FCmpPred.OLT),
            "<=": (ICmpPred.SLE, FCmpPred.OLE),
            ">": (ICmpPred.SGT, FCmpPred.OGT),
            ">=": (ICmpPred.SGE, FCmpPred.OGE),
        }
        if op in compare:
            ipred, fpred = compare[op]
            if is_float:
                cmp = self.builder.fcmp(fpred, lhs, rhs)
            else:
                cmp = self.builder.icmp(ipred, lhs, rhs)
            return self.builder.zext(cmp, I32), ast.CType("int")
        raise self.error(f"unknown binary operator {op!r}", expr)

    def gen_logical(self, expr: ast.Binary) -> tuple[Value, ast.CType]:
        """Short-circuit && / || lowered to control flow + phi."""
        is_and = expr.op == "&&"
        rhs_block = self.func.add_block(self.func.fresh_name("logic.rhs."))
        merge_block = self.func.add_block(self.func.fresh_name("logic.end."))

        lhs_cond = self.gen_condition(expr.lhs)
        lhs_exit = self.builder.block
        assert lhs_exit is not None
        if is_and:
            self.builder.condbr(lhs_cond, rhs_block, merge_block)
        else:
            self.builder.condbr(lhs_cond, merge_block, rhs_block)

        self.builder.set_block(rhs_block)
        rhs_cond = self.gen_condition(expr.rhs)
        rhs_exit = self.builder.block
        assert rhs_exit is not None
        self.builder.br(merge_block)

        self.builder.set_block(merge_block)
        phi = self.builder.phi(I1)
        phi.add_incoming(Constant(I1, 0 if is_and else 1), lhs_exit)
        phi.add_incoming(rhs_cond, rhs_exit)
        return self.builder.zext(phi, I32), ast.CType("int")

    def gen_conditional(self, expr: ast.Conditional) -> tuple[Value, ast.CType]:
        cond = self.gen_condition(expr.cond)
        then_block = self.func.add_block(self.func.fresh_name("sel.then."))
        else_block = self.func.add_block(self.func.fresh_name("sel.else."))
        merge_block = self.func.add_block(self.func.fresh_name("sel.end."))
        self.builder.condbr(cond, then_block, else_block)

        self.builder.set_block(then_block)
        tval, ttype = self.gen_expr(expr.if_true)
        then_exit = self.builder.block

        self.builder.set_block(else_block)
        fval, ftype = self.gen_expr(expr.if_false)
        else_exit = self.builder.block

        common = self.common_ctype(ttype, ftype, expr)
        self.builder.set_block(then_exit)
        tval = self.convert(tval, ttype, common, expr)
        then_exit = self.builder.block
        self.builder.br(merge_block)
        self.builder.set_block(else_exit)
        fval = self.convert(fval, ftype, common, expr)
        else_exit = self.builder.block
        self.builder.br(merge_block)

        self.builder.set_block(merge_block)
        phi = self.builder.phi(ir_type(common))
        phi.add_incoming(tval, then_exit)
        phi.add_incoming(fval, else_exit)
        return phi, common

    def gen_assign(self, expr: ast.Assign) -> tuple[Value, ast.CType]:
        addr, target_ctype = self.gen_lvalue(expr.target)
        if expr.op == "=":
            value, vtype = self.gen_expr(expr.value)
            value = self.convert(value, vtype, target_ctype, expr)
        else:
            # Compound assignment desugars to load-op-store.
            binop = ast.Binary(
                expr.line,
                expr.column,
                expr.op[:-1],
                _reload_of(expr.target),
                expr.value,
            )
            value, vtype = self.gen_binary(binop)
            value = self.convert(value, vtype, target_ctype, expr)
        self.builder.store(value, addr)
        return value, target_ctype

    def gen_incdec(self, expr: ast.IncDec) -> tuple[Value, ast.CType]:
        addr, ctype = self.gen_lvalue(expr.target)
        ty = ir_type(ctype)
        old = self.builder.load(ty, addr)
        if ctype.is_pointer:
            elem = ctype.pointee()
            elem_size = 8 if elem.is_pointer else ir_type(elem).size_bytes
            delta = Constant(I64, 1 if expr.op == "++" else -1)
            new = self.builder.gep(old, delta, elem_size)
        elif ty.is_float:
            one = Constant(ty, 1.0)
            new = (
                self.builder.fadd(old, one)
                if expr.op == "++"
                else self.builder.fsub(old, one)
            )
        else:
            one = Constant(ty, 1)
            new = (
                self.builder.add(old, one)
                if expr.op == "++"
                else self.builder.sub(old, one)
            )
        self.builder.store(new, addr)
        return (new if expr.prefix else old), ctype

    def gen_call(self, expr: ast.Call) -> tuple[Value, ast.CType]:
        name = expr.name
        callee = self.module.functions.get(name)
        if callee is not None:
            sig_ctypes = _FUNCTION_SIGNATURES[id(callee)]
            if len(expr.args) != len(sig_ctypes[1]):
                raise self.error(
                    f"{name} expects {len(sig_ctypes[1])} arguments, "
                    f"got {len(expr.args)}",
                    expr,
                )
            args = []
            for arg_expr, target_ctype in zip(expr.args, sig_ctypes[1]):
                value, vtype = self.gen_expr(arg_expr)
                args.append(self.convert(value, vtype, target_ctype, arg_expr))
            result = self.builder.call(callee, args)
            return result, sig_ctypes[0]
        if is_intrinsic(name):
            ret_ty, param_tys = (
                INTRINSICS[name].return_type,
                list(INTRINSICS[name].param_types),
            )
            if len(expr.args) != len(param_tys):
                raise self.error(
                    f"intrinsic {name} expects {len(param_tys)} arguments, "
                    f"got {len(expr.args)}",
                    expr,
                )
            args = []
            for arg_expr, pty in zip(expr.args, param_tys):
                value, vtype = self.gen_expr(arg_expr)
                args.append(self.convert_to_ir(value, vtype, pty, arg_expr))
            result = self.builder.call(name, args)
            return result, _ctype_of_ir(ret_ty)
        raise self.error(f"call to unknown function {name!r}", expr)

    # -- conversions -------------------------------------------------------
    def gen_condition(self, expr: ast.Expr) -> Value:
        """Evaluate an expression as an i1 condition."""
        value, ctype = self.gen_expr(expr)
        return self.to_bool(value, ctype, expr)

    def to_bool(self, value: Value, ctype: ast.CType, node: ast.Node) -> Value:
        ty = PTR if ctype.is_pointer else _SCALAR_IR[ctype.base]
        if ty == I1:
            return value
        if ty.is_float:
            return self.builder.fcmp(FCmpPred.ONE, value, Constant(ty, 0.0))
        return self.builder.icmp(ICmpPred.NE, value, Constant(ty, 0))

    def to_int(self, value: Value, ctype: ast.CType, node: ast.Node) -> Value:
        """Coerce an index/offset expression to a (signed) integer value."""
        if ctype.is_pointer:
            raise self.error("pointer used where an integer is required", node)
        ty = _SCALAR_IR[ctype.base]
        if ty.is_float:
            return self.builder.fptosi(value, I64)
        return value

    def common_ctype(
        self, a: ast.CType, b: ast.CType, node: ast.Node
    ) -> ast.CType:
        if a.is_pointer and b.is_pointer:
            return a
        if a.is_pointer or b.is_pointer:
            raise self.error("cannot mix pointer and scalar operands", node)
        if a.base == "void" or b.base == "void":
            raise self.error("void value in expression", node)
        return a if _RANK[a.base] >= _RANK[b.base] else b

    def usual_conversions(self, lhs, ltype, rhs, rtype, node):
        common = self.common_ctype(ltype, rtype, node)
        lhs = self.convert(lhs, ltype, common, node)
        rhs = self.convert(rhs, rtype, common, node)
        return lhs, rhs, common

    def convert(
        self,
        value: Value,
        src: ast.CType,
        dst: ast.CType,
        node: ast.Node,
        explicit: bool = False,
    ) -> Value:
        if src == dst:
            return value
        if src.is_pointer and dst.is_pointer:
            return value  # all pointers are the same IR type
        if src.is_pointer or dst.is_pointer:
            if explicit and src.base == "long" and dst.is_pointer:
                return value  # long -> ptr (both 64-bit ints at IR level)
            if explicit and src.is_pointer and dst.base == "long":
                return value
            raise self.error(
                f"cannot {'convert' if explicit else 'implicitly convert'} "
                f"{src} to {dst}",
                node,
            )
        return self.convert_to_ir(value, src, ir_type(dst), node)

    def convert_to_ir(
        self, value: Value, src: ast.CType, dst_ty: Type, node: ast.Node
    ) -> Value:
        if src.is_pointer:
            if dst_ty.is_ptr:
                return value
            raise self.error(f"cannot convert pointer to {dst_ty}", node)
        src_ty = _SCALAR_IR[src.base]
        if src_ty == dst_ty:
            return value
        b = self.builder
        if src_ty.is_int and dst_ty.is_int:
            if dst_ty.bits > src_ty.bits:
                return b.sext(value, dst_ty)
            return b.trunc(value, dst_ty)
        if src_ty.is_int and dst_ty.is_float:
            converted = b.sitofp(value, F64 if dst_ty == F64 else F32)
            return converted
        if src_ty.is_float and dst_ty.is_int:
            return b.fptosi(value, dst_ty)
        if src_ty.is_float and dst_ty.is_float:
            return b.fpext(value) if dst_ty == F64 else b.fptrunc(value)
        raise self.error(f"cannot convert {src_ty} to {dst_ty}", node)


def _ctype_of_ir(ty: Type) -> ast.CType:
    if ty.is_ptr:
        return ast.CType("void", 1)
    mapping = {I32: "int", I64: "long", F32: "float", F64: "double", VOID: "void"}
    return ast.CType(mapping[ty])


def _reload_of(target: ast.Expr) -> ast.Expr:
    """AST copy of an lvalue for compound-assignment desugaring.

    Re-evaluating the index expression is acceptable here because MiniC
    expressions are side-effect-free apart from assignments/incdec, which
    cannot appear inside an assignment target in the grammar we accept.
    """
    return target


# Side tables filled by the module-level driver (declared here to keep the
# codegen class free of global state threading).
_GLOBAL_CTYPES: dict[int, ast.CType] = {}
_FUNCTION_SIGNATURES: dict[int, tuple[ast.CType, list[ast.CType]]] = {}


def generate_module(
    programs: list[tuple[ast.Program, str]], module_name: str
) -> Module:
    """Lower one or more parsed translation units into a single module."""
    module = Module(module_name)

    # Pass 1: globals and function signatures (cross-file, order-free).
    for program, filename in programs:
        for gdecl in program.globals:
            if gdecl.ctype.base == "void" and not gdecl.ctype.is_pointer:
                raise CompileError(
                    "cannot declare a void global", gdecl.line, gdecl.column, filename
                )
            elem_ty = ir_type(gdecl.ctype)
            count = gdecl.array_size if gdecl.array_size is not None else 1
            init = None
            if gdecl.init_values is not None:
                if elem_ty.is_float:
                    init = [float(v) for v in gdecl.init_values]
                else:
                    init = [int(v) for v in gdecl.init_values]
            gv = module.add_global(gdecl.name, elem_ty, count, init)
            _GLOBAL_CTYPES[id(gv)] = gdecl.ctype
        for fdef in program.functions:
            arg_types = [(p.name, ir_type(p.ctype)) for p in fdef.params]
            func = module.declare_function(
                fdef.name, ir_type(fdef.return_type), arg_types
            )
            _FUNCTION_SIGNATURES[id(func)] = (
                fdef.return_type,
                [p.ctype for p in fdef.params],
            )

    # Pass 2: bodies.
    for program, filename in programs:
        for fdef in program.functions:
            FunctionCodegen(module, fdef, filename).generate()
    return module
