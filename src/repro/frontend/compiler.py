"""Compiler driver: source text -> verified, optimized IR module.

Measures its own wall-clock time, which feeds the "Compilation to Bitcode /
real" column of Table I (the paper measured llvm-gcc -O3 the same way).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.frontend.codegen import generate_module
from repro.frontend.parser import parse_program
from repro.ir.module import Module
from repro.ir.passes import standard_pipeline
from repro.ir.verifier import verify_module


def count_loc(source: str) -> int:
    """Count non-blank, non-comment-only source lines (paper's LOC metric)."""
    loc = 0
    in_block_comment = False
    for raw in source.splitlines():
        line = raw.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
                continue
            line = line.split("*/", 1)[1].strip()
        if not line or line.startswith("//"):
            continue
        loc += 1
    return loc


@dataclass
class CompilationResult:
    """Outcome of compiling one application."""

    module: Module
    files: int
    loc: int
    compile_seconds: float
    pass_timings: list[tuple[str, float]] = field(default_factory=list)

    @property
    def basic_blocks(self) -> int:
        return self.module.basic_block_count

    @property
    def instructions(self) -> int:
        return self.module.instruction_count


def compile_files(
    sources: list[tuple[str, str]], module_name: str, opt_level: int = 2
) -> CompilationResult:
    """Compile ``[(filename, source), ...]`` into one optimized module."""
    start = time.perf_counter()
    programs = [(parse_program(src, fname), fname) for fname, src in sources]
    module = generate_module(programs, module_name)
    module.source_info = {
        "files": len(sources),
        "loc": sum(count_loc(src) for _, src in sources),
    }
    verify_module(module)
    pipeline = standard_pipeline(opt_level)
    pipeline.run(module)
    verify_module(module)
    elapsed = time.perf_counter() - start
    return CompilationResult(
        module=module,
        files=len(sources),
        loc=module.source_info["loc"],
        compile_seconds=elapsed,
        pass_timings=list(pipeline.timings),
    )


def compile_source(
    source: str, module_name: str = "module", opt_level: int = 2
) -> CompilationResult:
    """Compile a single source string."""
    return compile_files([(f"{module_name}.c", source)], module_name, opt_level)
