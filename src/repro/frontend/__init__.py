"""MiniC frontend: a small C-like language compiled to the IR.

Plays the role of llvm-gcc in the paper's tool flow. The 14 benchmark
applications (:mod:`repro.apps`) are written in MiniC; :func:`compile_source`
lexes, parses, type-checks and lowers them to IR, then runs the standard
optimization pipeline (:func:`repro.ir.passes.standard_pipeline`).

Language summary
----------------
- types: ``int`` (i32), ``long`` (i64), ``float`` (f32), ``double`` (f64),
  ``void``, and pointers ``T*``;
- globals (scalar or array, optionally initialised), local variables and
  fixed-size local arrays;
- functions with recursion; the usual C operators including short-circuit
  ``&&``/``||``, ternary, compound assignment and pre/post increment;
- control flow: ``if``/``else``, ``while``, ``for``, ``break``,
  ``continue``, ``return``;
- intrinsic calls (``sqrt``, ``sin``, ``print_i32``, ``malloc``, ``rand``,
  ...) resolve to VM intrinsics.
"""

from repro.frontend.compiler import CompilationResult, compile_source, compile_files
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import Parser
from repro.frontend import ast

__all__ = [
    "CompilationResult",
    "compile_source",
    "compile_files",
    "CompileError",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "ast",
]
