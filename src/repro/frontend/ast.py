"""MiniC abstract syntax tree node definitions.

The AST is the first stop in the llvm-gcc role this frontend plays in
the paper's Figure 1 tool flow: source -> AST -> IR bitcode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class CType:
    """A MiniC type: a base scalar name plus pointer depth."""

    base: str  # "int" | "long" | "float" | "double" | "void"
    pointer_depth: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    def pointee(self) -> "CType":
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer")
        return CType(self.base, self.pointer_depth - 1)

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointer_depth + 1)

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth


@dataclass
class Node:
    line: int = 0
    column: int = 0


# -- expressions ---------------------------------------------------------------
@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class NameRef(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class Conditional(Expr):
    cond: Expr = None  # type: ignore[assignment]
    if_true: Expr = None  # type: ignore[assignment]
    if_false: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    op: str = "="  # "=", "+=", ...
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IncDec(Expr):
    op: str = "++"
    prefix: bool = True
    target: Expr = None  # type: ignore[assignment]


@dataclass
class Index(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    target_type: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


# -- statements ----------------------------------------------------------------
@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    ctype: CType = None  # type: ignore[assignment]
    name: str = ""
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: Stmt = None  # type: ignore[assignment]
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # VarDecl or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level -----------------------------------------------------------------
@dataclass
class Param(Node):
    ctype: CType = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class FunctionDef(Node):
    return_type: CType = None  # type: ignore[assignment]
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass
class GlobalDecl(Node):
    ctype: CType = None  # type: ignore[assignment]
    name: str = ""
    array_size: Optional[int] = None
    init_values: Optional[list] = None  # literal scalar or list of literals


@dataclass
class Program(Node):
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
