"""MiniC recursive-descent parser with precedence-climbing expressions.

Part of the frontend playing llvm-gcc's role in the paper's Figure 1
tool flow.
"""

from __future__ import annotations

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, TokenKind, tokenize

_TYPE_NAMES = {"int", "long", "float", "double", "void"}

# Binary operator precedence (higher binds tighter).
_BIN_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses one MiniC translation unit into an :class:`ast.Program`."""

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.filename = filename
        self.tokens = tokenize(source, filename)
        self.pos = 0

    # -- token helpers ---------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def error(self, msg: str, tok: Token | None = None) -> CompileError:
        tok = tok or self.current
        return CompileError(msg, tok.line, tok.column, self.filename)

    def expect_punct(self, text: str) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.PUNCT or tok.text != text:
            raise self.error(f"expected {text!r}, found {tok.text!r}")
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        tok = self.current
        if tok.kind is TokenKind.PUNCT and tok.text == text:
            self.advance()
            return True
        return False

    def expect_ident(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.IDENT:
            raise self.error(f"expected identifier, found {tok.text!r}")
        return self.advance()

    # -- types -------------------------------------------------------------
    def at_type(self) -> bool:
        return self.current.kind is TokenKind.KEYWORD and self.current.text in _TYPE_NAMES

    def parse_type(self) -> ast.CType:
        tok = self.current
        if not self.at_type():
            raise self.error(f"expected type name, found {tok.text!r}")
        self.advance()
        depth = 0
        while self.accept_punct("*"):
            depth += 1
        return ast.CType(tok.text, depth)

    # -- top level ---------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1, column=1)
        while self.current.kind is not TokenKind.EOF:
            if not self.at_type():
                raise self.error(
                    f"expected declaration, found {self.current.text!r}"
                )
            start = self.current
            ctype = self.parse_type()
            name_tok = self.expect_ident()
            if self.current.kind is TokenKind.PUNCT and self.current.text == "(":
                program.functions.append(
                    self._parse_function(ctype, name_tok, start)
                )
            else:
                program.globals.append(self._parse_global(ctype, name_tok, start))
        return program

    def _parse_function(
        self, return_type: ast.CType, name_tok: Token, start: Token
    ) -> ast.FunctionDef:
        self.expect_punct("(")
        params: list[ast.Param] = []
        if not self.accept_punct(")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect_ident()
                params.append(
                    ast.Param(pname.line, pname.column, ptype, pname.text)
                )
                if self.accept_punct(")"):
                    break
                self.expect_punct(",")
        body = self.parse_block()
        return ast.FunctionDef(
            start.line, start.column, return_type, name_tok.text, params, body
        )

    def _parse_global(
        self, ctype: ast.CType, name_tok: Token, start: Token
    ) -> ast.GlobalDecl:
        array_size = None
        if self.accept_punct("["):
            size_tok = self.current
            if size_tok.kind is not TokenKind.INT_LIT:
                raise self.error("global array size must be an integer literal")
            self.advance()
            array_size = int(size_tok.value)
            self.expect_punct("]")
        init_values = None
        if self.accept_punct("="):
            if self.accept_punct("{"):
                init_values = []
                if not self.accept_punct("}"):
                    while True:
                        init_values.append(self._parse_literal_value())
                        if self.accept_punct("}"):
                            break
                        self.expect_punct(",")
            else:
                init_values = [self._parse_literal_value()]
        self.expect_punct(";")
        return ast.GlobalDecl(
            start.line, start.column, ctype, name_tok.text, array_size, init_values
        )

    def _parse_literal_value(self):
        negate = False
        if self.accept_punct("-"):
            negate = True
        tok = self.current
        if tok.kind is TokenKind.INT_LIT:
            self.advance()
            return -tok.value if negate else tok.value
        if tok.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return -tok.value if negate else tok.value
        raise self.error("global initializer must be a literal")

    # -- statements ------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        start = self.expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self.accept_punct("}"):
            if self.current.kind is TokenKind.EOF:
                raise self.error("unterminated block")
            stmts.append(self.parse_statement())
        return ast.Block(start.line, start.column, stmts)

    def parse_statement(self) -> ast.Stmt:
        tok = self.current
        if tok.kind is TokenKind.PUNCT and tok.text == "{":
            return self.parse_block()
        if self.at_type():
            return self._parse_var_decl()
        if tok.kind is TokenKind.KEYWORD:
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                self.advance()
                value = None
                if not self.accept_punct(";"):
                    value = self.parse_expression()
                    self.expect_punct(";")
                return ast.Return(tok.line, tok.column, value)
            if tok.text == "break":
                self.advance()
                self.expect_punct(";")
                return ast.Break(tok.line, tok.column)
            if tok.text == "continue":
                self.advance()
                self.expect_punct(";")
                return ast.Continue(tok.line, tok.column)
        expr = self.parse_expression()
        self.expect_punct(";")
        return ast.ExprStmt(tok.line, tok.column, expr)

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self.current
        ctype = self.parse_type()
        name_tok = self.expect_ident()
        array_size = None
        if self.accept_punct("["):
            size_tok = self.current
            if size_tok.kind is not TokenKind.INT_LIT:
                raise self.error("local array size must be an integer literal")
            self.advance()
            array_size = int(size_tok.value)
            self.expect_punct("]")
        init = None
        if self.accept_punct("="):
            if array_size is not None:
                raise self.error("array initializers are not supported for locals")
            init = self.parse_expression()
        self.expect_punct(";")
        return ast.VarDecl(
            start.line, start.column, ctype, name_tok.text, array_size, init
        )

    def _parse_if(self) -> ast.If:
        start = self.advance()  # 'if'
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        then_body = self.parse_statement()
        else_body = None
        if (
            self.current.kind is TokenKind.KEYWORD
            and self.current.text == "else"
        ):
            self.advance()
            else_body = self.parse_statement()
        return ast.If(start.line, start.column, cond, then_body, else_body)

    def _parse_while(self) -> ast.While:
        start = self.advance()  # 'while'
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.While(start.line, start.column, cond, body)

    def _parse_for(self) -> ast.For:
        start = self.advance()  # 'for'
        self.expect_punct("(")
        init: ast.Stmt | None = None
        if not self.accept_punct(";"):
            if self.at_type():
                init = self._parse_var_decl()  # consumes ';'
            else:
                expr = self.parse_expression()
                self.expect_punct(";")
                init = ast.ExprStmt(start.line, start.column, expr)
        cond = None
        if not self.accept_punct(";"):
            cond = self.parse_expression()
            self.expect_punct(";")
        step = None
        if not self.accept_punct(")"):
            step = self.parse_expression()
            self.expect_punct(")")
        body = self.parse_statement()
        return ast.For(start.line, start.column, init, cond, step, body)

    # -- expressions -------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_conditional()
        tok = self.current
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self.advance()
            value = self._parse_assignment()  # right associative
            if not isinstance(lhs, (ast.NameRef, ast.Index)):
                raise self.error("invalid assignment target", tok)
            return ast.Assign(tok.line, tok.column, tok.text, lhs, value)
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.current.kind is TokenKind.PUNCT and self.current.text == "?":
            tok = self.advance()
            if_true = self.parse_expression()
            self.expect_punct(":")
            if_false = self._parse_conditional()
            return ast.Conditional(tok.line, tok.column, cond, if_true, if_false)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self.current
            if tok.kind is not TokenKind.PUNCT:
                return lhs
            prec = _BIN_PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(tok.line, tok.column, tok.text, lhs, rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.PUNCT:
            if tok.text in ("-", "!", "~"):
                self.advance()
                operand = self._parse_unary()
                return ast.Unary(tok.line, tok.column, tok.text, operand)
            if tok.text == "+":
                self.advance()
                return self._parse_unary()
            if tok.text in ("++", "--"):
                self.advance()
                target = self._parse_unary()
                if not isinstance(target, (ast.NameRef, ast.Index)):
                    raise self.error("invalid increment target", tok)
                return ast.IncDec(tok.line, tok.column, tok.text, True, target)
            if tok.text == "(" and self._at_cast():
                self.advance()
                ctype = self.parse_type()
                self.expect_punct(")")
                operand = self._parse_unary()
                return ast.Cast(tok.line, tok.column, ctype, operand)
        return self._parse_postfix()

    def _at_cast(self) -> bool:
        """After '(', is this a cast? True iff next token is a type name."""
        nxt = self.peek(1)
        return nxt.kind is TokenKind.KEYWORD and nxt.text in _TYPE_NAMES

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self.current
            if tok.kind is not TokenKind.PUNCT:
                return expr
            if tok.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.Index(tok.line, tok.column, expr, index)
            elif tok.text in ("++", "--"):
                self.advance()
                if not isinstance(expr, (ast.NameRef, ast.Index)):
                    raise self.error("invalid increment target", tok)
                expr = ast.IncDec(tok.line, tok.column, tok.text, False, expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind is TokenKind.INT_LIT:
            self.advance()
            return ast.IntLiteral(tok.line, tok.column, int(tok.value))
        if tok.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return ast.FloatLiteral(tok.line, tok.column, float(tok.value))
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.accept_punct("("):
                args: list[ast.Expr] = []
                if not self.accept_punct(")"):
                    while True:
                        args.append(self.parse_expression())
                        if self.accept_punct(")"):
                            break
                        self.expect_punct(",")
                return ast.Call(tok.line, tok.column, tok.text, args)
            return ast.NameRef(tok.line, tok.column, tok.text)
        if tok.kind is TokenKind.PUNCT and tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse_program(source: str, filename: str = "<source>") -> ast.Program:
    return Parser(source, filename).parse_program()
