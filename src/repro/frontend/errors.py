"""Frontend diagnostics.

Raised while compiling the MiniC benchmarks — the llvm-gcc stage of the
paper's Figure 1 tool flow.
"""

from __future__ import annotations


class CompileError(Exception):
    """A MiniC compilation error with source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0, filename: str = "") -> None:
        self.message = message
        self.line = line
        self.column = column
        self.filename = filename
        where = f"{filename or '<source>'}:{line}:{column}" if line else (filename or "<source>")
        super().__init__(f"{where}: {message}")
