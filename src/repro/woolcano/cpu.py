"""The PowerPC-405 base CPU of the Woolcano architecture.

The hard processor core of the Woolcano architecture the paper
targets; its cycle cost model produces the software runtimes behind
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.costmodel import CostModel, PPC405_COST_MODEL


@dataclass(frozen=True)
class PowerPC405:
    """The hard PPC405 block of a Virtex-4 FX device.

    A 5-stage in-order scalar core without an FPU; floating point is
    software-emulated, which the cost model encodes.
    """

    clock_hz: float = 300e6
    cost_model: CostModel = field(default_factory=lambda: PPC405_COST_MODEL)

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz

    def seconds_for_cycles(self, cycles: float) -> float:
        return cycles / self.clock_hz
