"""Custom-instruction slot management.

The APU decodes a finite set of user-defined instruction (UDI) opcodes;
each opcode is bound to a fabric region configuration. Loading a new custom
instruction into an occupied machine evicts the least-recently-used slot
(the paper implements all candidates by time-multiplexing configurations;
the slot model makes that cost explicit for the runtime system).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.bitgen import PartialBitstream


class SlotError(Exception):
    """Raised on invalid slot operations."""


@dataclass
class LoadedInstruction:
    """A custom instruction resident in a slot."""

    custom_id: int
    signature: int
    bitstream: PartialBitstream
    use_count: int = 0
    last_use: int = 0


@dataclass
class CustomInstructionSlots:
    """Fixed number of UDI slots with LRU eviction."""

    capacity: int = 8
    _slots: dict[int, LoadedInstruction] = field(default_factory=dict)
    _clock: int = 0
    loads: int = 0
    evictions: int = 0

    def load(
        self, custom_id: int, signature: int, bitstream: PartialBitstream
    ) -> LoadedInstruction | None:
        """Load an instruction; returns the evicted one, if any."""
        if self.capacity < 1:
            raise SlotError("machine has no custom instruction slots")
        if custom_id in self._slots:
            return None
        evicted = None
        if len(self._slots) >= self.capacity:
            victim_id = min(self._slots.values(), key=lambda s: s.last_use).custom_id
            evicted = self._slots.pop(victim_id)
            self.evictions += 1
        self._clock += 1
        self._slots[custom_id] = LoadedInstruction(
            custom_id=custom_id,
            signature=signature,
            bitstream=bitstream,
            last_use=self._clock,
        )
        self.loads += 1
        return evicted

    def is_loaded(self, custom_id: int) -> bool:
        return custom_id in self._slots

    def touch(self, custom_id: int) -> None:
        slot = self._slots.get(custom_id)
        if slot is None:
            raise SlotError(f"custom instruction #{custom_id} is not loaded")
        self._clock += 1
        slot.last_use = self._clock
        slot.use_count += 1

    @property
    def resident(self) -> list[int]:
        return sorted(self._slots)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._slots)
