"""Custom-instruction slot management with contention semantics.

The APU decodes a finite set of user-defined instruction (UDI) opcodes;
each opcode is bound to a fabric region configuration. The paper
implements all candidates by time-multiplexing configurations (Section
II); this module makes the cost of that multiplexing explicit for the
runtime system: a fixed pool of slots under capacity pressure, a
pluggable eviction policy choosing the victim when the pool is full, and
reload accounting (an instruction evicted and needed again pays the ICAP
reconfiguration again — the fleet-level overhead the mix simulator in
:mod:`repro.mix` charges against Table IV's break-even times).

Three eviction policies are modelled:

- ``lru`` — evict the least-recently-used instruction (the original
  single-application behaviour);
- ``lfu`` — evict the least-frequently-used instruction (ties broken by
  recency), protecting instructions that are touched often;
- ``breakeven`` — evict the instruction whose loss hurts the fleet
  break-even least: the victim minimises ``value x (1 + use_count)``,
  where ``value`` is the loader-supplied benefit density (saved cycles
  per invocation per second of ICAP reload cost). High-value, hot
  instructions stay resident; cheap-to-reload, rarely-used ones go.

Observability: every load/evict emits a tracer event carrying the
physical slot index (the per-slot occupancy timeline), ``slots.*``
metrics count loads, reloads, hits and evictions by reason, and a
residency histogram records how many virtual clock ticks each occupant
survived before eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.bitgen import PartialBitstream
from repro.obs import get_metrics, get_tracer

#: The victim-selection policies :class:`CustomInstructionSlots` accepts.
EVICTION_POLICIES = ("lru", "lfu", "breakeven")


class SlotError(Exception):
    """Raised on invalid slot operations."""


@dataclass
class LoadedInstruction:
    """A custom instruction resident in a slot."""

    custom_id: int
    signature: int
    bitstream: PartialBitstream
    use_count: int = 0
    last_use: int = 0
    loaded_at: int = 0
    slot_index: int = 0
    #: Benefit density used by the break-even-aware policy (saved cycles
    #: per invocation, normalised by the ICAP reload cost in seconds).
    value: float = 0.0
    #: Application that loaded the instruction (fleet-mix attribution).
    owner: str | None = None


@dataclass
class CustomInstructionSlots:
    """Fixed number of UDI slots with a pluggable eviction policy."""

    capacity: int = 8
    policy: str = "lru"
    _slots: dict[int, LoadedInstruction] = field(default_factory=dict)
    _clock: int = 0
    loads: int = 0
    evictions: int = 0
    reloads: int = 0
    hits: int = 0
    cross_app_hits: int = 0
    evictions_by_reason: dict[str, int] = field(default_factory=dict)
    _evicted_ids: set[int] = field(default_factory=set)
    _free_indices: list[int] = field(default_factory=list)
    _next_index: int = 0

    def __post_init__(self) -> None:
        if self.policy not in EVICTION_POLICIES:
            raise SlotError(
                f"unknown eviction policy {self.policy!r} "
                f"(expected one of {', '.join(EVICTION_POLICIES)})"
            )

    # -- loading -------------------------------------------------------------
    def load(
        self,
        custom_id: int,
        signature: int,
        bitstream: PartialBitstream,
        *,
        value: float = 0.0,
        owner: str | None = None,
        allow_evict: bool = True,
    ) -> LoadedInstruction | None:
        """Load an instruction; returns the evicted one, if any.

        With ``allow_evict=False`` a full pool raises :class:`SlotError`
        instead of choosing a victim (the caller wants to observe
        capacity pressure, not resolve it).
        """
        if self.capacity < 1:
            raise SlotError("machine has no custom instruction slots")
        if custom_id in self._slots:
            return None
        evicted = None
        if len(self._slots) >= self.capacity:
            if not allow_evict:
                raise SlotError(
                    f"all {self.capacity} slots are occupied and eviction "
                    "is disabled"
                )
            evicted = self._evict(self._victim().custom_id, reason=self.policy)
        self._clock += 1
        reload = custom_id in self._evicted_ids
        if reload:
            self.reloads += 1
        slot_index = (
            self._free_indices.pop() if self._free_indices else self._next_index
        )
        if slot_index == self._next_index:
            self._next_index += 1
        self._slots[custom_id] = LoadedInstruction(
            custom_id=custom_id,
            signature=signature,
            bitstream=bitstream,
            last_use=self._clock,
            loaded_at=self._clock,
            slot_index=slot_index,
            value=value,
            owner=owner,
        )
        self.loads += 1
        registry = get_metrics()
        if registry.enabled:
            registry.counter("slots.loads").inc()
            if reload:
                registry.counter("slots.reloads").inc()
            registry.gauge("slots.occupancy").set(len(self._slots))
        get_tracer().event(
            "slots.load",
            slot=slot_index,
            custom_id=custom_id,
            signature=f"{signature:016x}",
            owner=owner,
            reload=reload,
            tick=self._clock,
        )
        return evicted

    def _victim(self) -> LoadedInstruction:
        """The resident instruction the active policy would evict."""
        residents = self._slots.values()
        if self.policy == "lfu":
            key = lambda s: (s.use_count, s.last_use, s.custom_id)  # noqa: E731
        elif self.policy == "breakeven":
            key = lambda s: (  # noqa: E731
                s.value * (1.0 + s.use_count),
                s.last_use,
                s.custom_id,
            )
        else:  # lru
            key = lambda s: (s.last_use, s.custom_id)  # noqa: E731
        return min(residents, key=key)

    def _evict(self, custom_id: int, reason: str) -> LoadedInstruction:
        evicted = self._slots.pop(custom_id)
        self.evictions += 1
        self.evictions_by_reason[reason] = (
            self.evictions_by_reason.get(reason, 0) + 1
        )
        self._evicted_ids.add(custom_id)
        self._free_indices.append(evicted.slot_index)
        residency = self._clock - evicted.loaded_at
        registry = get_metrics()
        if registry.enabled:
            registry.counter(f"slots.evictions.{reason}").inc()
            registry.histogram("slots.residency_ticks").observe(
                float(residency)
            )
            registry.gauge("slots.occupancy").set(len(self._slots))
        get_tracer().event(
            "slots.evict",
            slot=evicted.slot_index,
            custom_id=custom_id,
            reason=reason,
            owner=evicted.owner,
            resident_ticks=residency,
            use_count=evicted.use_count,
            tick=self._clock,
        )
        return evicted

    def evict(self, custom_id: int) -> LoadedInstruction:
        """Explicitly evict a resident instruction (runtime-system API)."""
        if custom_id not in self._slots:
            raise SlotError(f"custom instruction #{custom_id} is not loaded")
        return self._evict(custom_id, reason="explicit")

    # -- access --------------------------------------------------------------
    def is_loaded(self, custom_id: int) -> bool:
        return custom_id in self._slots

    def was_evicted(self, custom_id: int) -> bool:
        """True if *custom_id* was resident once and has been evicted
        since (a subsequent load is a *reload* paying the ICAP again)."""
        return custom_id in self._evicted_ids

    def touch(self, custom_id: int) -> None:
        slot = self._slots.get(custom_id)
        if slot is None:
            raise SlotError(f"custom instruction #{custom_id} is not loaded")
        self._clock += 1
        slot.last_use = self._clock
        slot.use_count += 1
        self.hits += 1

    @property
    def resident(self) -> list[int]:
        return sorted(self._slots)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._slots)

    def occupancy_pct(self) -> float:
        """Current occupancy as a percentage of capacity."""
        if self.capacity < 1:
            return 0.0
        return 100.0 * len(self._slots) / self.capacity

    def stats(self) -> dict:
        """JSON-safe counters for manifests and the serve stats op."""
        loads = self.loads
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "resident": len(self._slots),
            "occupancy_pct": round(self.occupancy_pct(), 3),
            "loads": loads,
            "reloads": self.reloads,
            "hits": self.hits,
            "evictions": self.evictions,
            "evictions_by_reason": dict(sorted(self.evictions_by_reason.items())),
            "eviction_rate": round(self.evictions / loads, 6) if loads else 0.0,
        }
