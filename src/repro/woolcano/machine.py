"""The Woolcano machine: CPU + custom instructions, and speedup accounting.

Central entry point: :meth:`WoolcanoMachine.speedup` computes the ASIP
ratio of Table I / Table II — the factor by which a profiled application
accelerates when a set of candidates is implemented as custom instructions.
The computation re-costs each basic block: instructions covered by a
candidate are replaced by the candidate's FCB-transfer + datapath cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.pivpav.estimator import CandidateEstimate
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import BlockKey, ExecutionProfile, static_block_costs
from repro.woolcano.cpu import PowerPC405
from repro.woolcano.slots import CustomInstructionSlots


@dataclass(frozen=True)
class WoolcanoCostModel(CostModel):
    """Cost model that additionally prices CUSTOM instructions.

    ``custom_costs`` maps ``custom_id`` to total cycles per execution
    (datapath latency + FCB transfers), as estimated by PivPav or measured
    after place-and-route.
    """

    custom_costs: dict = field(default_factory=dict)

    def cycles_for(self, instr) -> float:  # type: ignore[override]
        if instr.opcode is Opcode.CUSTOM:
            try:
                return float(self.custom_costs[instr.custom_id])
            except KeyError:
                raise KeyError(
                    f"no cost registered for custom instruction "
                    f"#{instr.custom_id}"
                ) from None
        return super().cycles_for(instr)


@dataclass(frozen=True)
class AsipSpeedup:
    """Speedup summary for one application + candidate set."""

    base_cycles: float
    asip_cycles: float
    implemented: int

    @property
    def ratio(self) -> float:
        if self.asip_cycles <= 0:
            return 1.0
        return self.base_cycles / self.asip_cycles


@dataclass
class WoolcanoMachine:
    """A configured Woolcano instance."""

    cpu: PowerPC405 = field(default_factory=PowerPC405)
    slots: CustomInstructionSlots = field(default_factory=CustomInstructionSlots)

    @property
    def cost_model(self) -> CostModel:
        return self.cpu.cost_model

    def speedup(
        self,
        module: Module,
        profile: ExecutionProfile,
        estimates: list[CandidateEstimate],
    ) -> AsipSpeedup:
        """ASIP speedup with *estimates*' candidates moved to hardware.

        Uses the what-if re-costing approach: no re-execution needed; the
        profile's block counts stay valid because candidates replace
        straight-line instruction groups inside existing blocks.
        """
        cm = self.cost_model
        costs = static_block_costs(module, cm)

        # Savings per block: sum over candidates in that block. A candidate
        # whose hardware is slower than software is implemented but never
        # issued (the patched binary keeps the software path), so negative
        # savings clamp to zero — matching the paper's ratio-1.00 rows that
        # still list many implemented candidates.
        saved_per_block: dict[BlockKey, float] = {}
        for est in estimates:
            key = (est.candidate.function, est.candidate.block)
            saved_per_block[key] = saved_per_block.get(key, 0.0) + max(
                0.0, est.sw_cycles - est.hw_cycles
            )

        base = 0.0
        asip = 0.0
        for key, prof in profile.blocks.items():
            cost = costs.get(key)
            if cost is None or prof.count == 0:
                continue
            base += prof.count * cost
            new_cost = cost - saved_per_block.get(key, 0.0)
            # A block cannot cost less than its remaining infeasible part;
            # the estimator guarantees saved <= block cost, but guard anyway.
            asip += prof.count * max(1.0, new_cost)
        return AsipSpeedup(
            base_cycles=base,
            asip_cycles=asip,
            implemented=len(estimates),
        )

    def speedup_with_slots(
        self,
        module: Module,
        profile: ExecutionProfile,
        estimates: list[CandidateEstimate],
        capacity: int | None = None,
    ) -> AsipSpeedup:
        """ASIP speedup under a UDI slot budget.

        The APU decodes a finite number of user-defined instruction opcodes
        (``self.slots.capacity`` by default). When an application has more
        candidates than slots, the runtime pins the ``capacity`` most
        valuable ones (by total cycles saved over the profiled run) and
        leaves the rest in software — cycling configurations per invocation
        would cost milliseconds of reconfiguration against nanoseconds of
        savings.
        """
        if capacity is None:
            capacity = self.slots.capacity
        if capacity < 0:
            raise ValueError("slot capacity must be non-negative")
        ranked = sorted(
            estimates,
            key=lambda e: (
                -max(0.0, e.cycles_saved)
                * profile.count_of(e.candidate.function, e.candidate.block),
                e.candidate.key,
            ),
        )
        return self.speedup(module, profile, ranked[:capacity])

    def seconds(self, cycles: float) -> float:
        return self.cpu.seconds_for_cycles(cycles)
