"""Woolcano reconfigurable ASIP machine model.

Models the architecture of [6]: a PowerPC-405 hard core (the Virtex-4 FX
CPU block) augmented through the Auxiliary Processor Unit (APU) / Fabric
Co-processor Bus (FCB) with user-defined instructions implemented in a
partially reconfigurable fabric region.

The machine model answers the question the paper's ASIP-ratio columns ask:
given a profiled application and a set of implemented custom instructions,
how much faster does the application run than on the plain CPU?
"""

from repro.woolcano.cpu import PowerPC405
from repro.woolcano.apu import FcbInterface, DEFAULT_FCB
from repro.woolcano.slots import (
    EVICTION_POLICIES,
    CustomInstructionSlots,
    LoadedInstruction,
    SlotError,
)
from repro.woolcano.reconfig import IcapModel, ReconfigurationEvent
from repro.woolcano.machine import WoolcanoMachine, WoolcanoCostModel, AsipSpeedup

__all__ = [
    "PowerPC405",
    "FcbInterface",
    "DEFAULT_FCB",
    "CustomInstructionSlots",
    "LoadedInstruction",
    "EVICTION_POLICIES",
    "SlotError",
    "IcapModel",
    "ReconfigurationEvent",
    "WoolcanoMachine",
    "WoolcanoCostModel",
    "AsipSpeedup",
]
