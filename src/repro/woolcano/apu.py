"""APU / Fabric Co-processor Bus interface model.

Woolcano attaches custom instructions to the PPC405 through the Auxiliary
Processor Unit controller: operands are transferred from the register file
over the FCB into the fabric, the datapath executes, and results return to
the write-back stage. The transfer constants here are the authoritative
values used by the PivPav estimator.

These constants ground the hardware-vs-software estimates behind the
paper's ASIP speedup columns (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FcbInterface:
    """FCB transfer characteristics."""

    operands_per_transfer: int = 2  # two register read ports feed the APU
    results_per_transfer: int = 1  # one write-back port
    decode_cycles: int = 1  # APU decode (pipelined with the first transfer)
    # A UDI carries two source operands and one destination through the
    # normal pipeline for free, like any PowerPC instruction; only operands
    # beyond that need explicit FCB transfer cycles.
    free_inputs: int = 2
    free_outputs: int = 1

    def transfer_cycles(self, n_inputs: int, n_outputs: int) -> int:
        """CPU cycles to move operands in and results out of the fabric."""
        import math

        extra_in = max(0, n_inputs - self.free_inputs)
        extra_out = max(0, max(1, n_outputs) - self.free_outputs)
        ins = math.ceil(extra_in / self.operands_per_transfer)
        outs = math.ceil(extra_out / self.results_per_transfer)
        return ins + outs + self.decode_cycles


DEFAULT_FCB = FcbInterface()
