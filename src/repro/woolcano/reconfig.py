"""Partial reconfiguration timing (ICAP model).

Loading a custom instruction writes its partial bitstream through the
Internal Configuration Access Port. On Virtex-4 the ICAP is 32 bits wide at
100 MHz -> ~400 MB/s peak; practical controllers reach a fraction of that.
Reconfiguration time is therefore milliseconds — negligible next to the
minutes-scale CAD flow, but modelled so the runtime accounting is complete.

Reconfiguration cost is part of the specialization overhead the
paper accounts for in its break-even analysis (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.bitgen import PartialBitstream
from repro.obs import get_log, get_metrics, get_tracer


@dataclass(frozen=True)
class ReconfigurationEvent:
    """One completed partial reconfiguration."""

    custom_id: int
    bytes_written: int
    seconds: float


@dataclass(frozen=True)
class IcapModel:
    """ICAP throughput model."""

    bus_width_bytes: int = 4
    clock_hz: float = 100e6
    efficiency: float = 0.6  # controller + frame-address overheads
    setup_seconds: float = 0.0008  # sync word, desync, CRC check

    @property
    def bytes_per_second(self) -> float:
        return self.bus_width_bytes * self.clock_hz * self.efficiency

    def reconfigure(
        self,
        custom_id: int,
        bitstream: PartialBitstream,
        reason: str = "load",
    ) -> ReconfigurationEvent:
        """Write one partial bitstream; *reason* distinguishes a first
        load from a reload forced by a slot eviction (the repeated ICAP
        cost the mix simulator charges against the fleet break-even)."""
        seconds = self.setup_seconds + bitstream.size_bytes / self.bytes_per_second
        span = get_tracer().event(
            "icap.reconfigure",
            custom_id=custom_id,
            bytes=bitstream.size_bytes,
            virtual_seconds=seconds,
            reason=reason,
        )
        log = get_log()
        if log.enabled:
            log.emit(
                "icap.reconfigure",
                span_id=span.span_id or None,
                custom_id=custom_id,
                bytes=bitstream.size_bytes,
                virtual_seconds=round(seconds, 9),
                reason=reason,
            )
        registry = get_metrics()
        if registry.enabled:
            registry.counter("icap.reconfigurations").inc()
            registry.counter("icap.bytes_written").inc(bitstream.size_bytes)
            registry.histogram("icap.seconds").observe(seconds)
            if reason == "reload":
                registry.counter("icap.reloads").inc()
        return ReconfigurationEvent(
            custom_id=custom_id,
            bytes_written=bitstream.size_bytes,
            seconds=seconds,
        )
