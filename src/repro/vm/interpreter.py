"""The IR interpreter.

Executes a module function-by-function with a flat memory, recording a
basic-block execution profile. Arithmetic reuses the constant-folding
evaluators (or inlined equivalents verified against them by property
tests), so interpreter and optimizer semantics cannot drift apart.

Execution time is *not* wall-clock: the profile is converted into PPC-405
cycles (and hence virtual seconds) after the run by
:class:`repro.vm.jitruntime.JitRuntimeModel`. This keeps app runs fast in
Python while making the reported runtimes deterministic.

Implementation note (profiled optimization): each basic block is compiled
once into a list of Python closures with operands resolved at compile time
— constants and global addresses are baked in, SSA values become direct
dict lookups. This removes the per-execution isinstance/dispatch overhead
that dominated the naive tree-walking interpreter (~2.5x faster).

Passing a :class:`repro.vm.profiler.BlockTimeSampler` as ``sampler=``
switches execution to a twin loop that attributes real wall time to
compiled blocks (the dispatch observatory's real clock); without it the
default loop runs unchanged, so the feature costs nothing when off.

Passing a :class:`repro.vm.fusion.FusionPlan` as ``fusion=`` selects the
*fused* twin loops instead: blocks compile to (body, terminator) handler
lists with mined superinstruction sites spliced in as single exec-compiled
handlers, so N dispatches become one call. Block counts and the virtual
clock stay bit-identical to the plain loops — fusion never touches the
module, and step/cycle accounting uses the static block size either way.
See docs/VM.md for the loop matrix and the bit-identity invariant.

This is the execution half of the paper's LLVM JIT VM (Figure 1); the
profiles it records feed the coverage analysis of Section IV-C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, PhiInstruction
from repro.ir.module import Module
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from repro.ir.passes.constfold import (
    ConstantFoldError,
    fold_binary,
    fold_cast,
    fold_fcmp,
    fold_icmp,
)
from repro.ir.types import to_unsigned, wrap_int
from typing import TYPE_CHECKING
from repro.obs import get_metrics, metrics_enabled

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.fusion import FusionPlan
from repro.vm.intrinsics import INTRINSICS
from repro.vm.memory import Memory, MemoryError_
from repro.vm.profiler import BlockTimeSampler, ExecutionProfile


class VMError(Exception):
    """Runtime fault during interpretation (trap, OOM, step limit)."""


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    return_value: object
    profile: ExecutionProfile
    output: list = field(default_factory=list)
    steps: int = 0


# Control-flow sentinels returned by terminator handlers.
_JUMP = 0
_RETURN = 1


class Interpreter:
    """Interprets IR modules.

    One interpreter instance holds one memory image (globals are placed at
    construction), so successive ``run`` calls share global state — matching
    how a VM process would behave. Tests typically build a fresh interpreter
    per run.
    """

    def __init__(
        self,
        module: Module,
        memory_size: int = 1 << 22,
        max_steps: int = 200_000_000,
        dataset_size: int = 0,
        dataset_seed: int = 1,
        sampler: BlockTimeSampler | None = None,
        fusion: "FusionPlan | None" = None,
    ) -> None:
        self.module = module
        self.memory = Memory(memory_size)
        self.memory.place_globals(list(module.globals.values()))
        self.max_steps = max_steps
        self.dataset_size = dataset_size
        self.dataset_seed = dataset_seed
        self.output: list = []
        self.rand_state = 1
        self.cycles_executed = 0  # coarse counter exposed to clock()
        # Real-clock sampler: None by default, in which case _call() runs
        # the unsampled loop and the hot path gains zero added work.
        self.sampler = sampler
        # Superinstruction fusion plan: None by default, in which case the
        # plain/sampled loops run unchanged and blocks compile without
        # fused handlers.
        self.fusion = fusion
        self._steps = 0
        self._profile = ExecutionProfile(module.name)
        # Custom-instruction evaluators installed by the binary patcher:
        # custom_id -> callable(list_of_operand_values) -> value
        self.custom_evaluators: dict[int, object] = {}
        # Compiled-block cache: id(block) -> (phi_plan, body_handlers)
        self._compiled: dict[int, tuple] = {}
        # Fused-block cache: id(block) -> (record, size, phi_plan, body, term)
        self._compiled_fused: dict[int, tuple] = {}
        # Observability: intrinsic-call counts, flushed to the metrics
        # registry once per run (never touched on the hot path unless
        # metrics were enabled when the block was compiled).
        self._intrinsic_counts: dict[str, int] = {}

    # -- public API ----------------------------------------------------------
    def run(self, function_name: str = "main", args: list | None = None) -> ExecutionResult:
        """Execute *function_name* to completion and return its result."""
        func = self.module.function(function_name)
        self._steps = 0
        self._profile = ExecutionProfile(self.module.name)
        if self.sampler is not None:
            self.sampler.begin()
        value = self._call(func, list(args or []))
        registry = get_metrics()
        if registry.enabled:
            # Counters are flushed once per run (sampled, not per step) so
            # metrics collection never slows the interpretation loop.
            registry.counter("vm.runs").inc()
            registry.counter("vm.instructions").inc(self._steps)
            registry.counter("vm.block_executions").inc(
                self._profile.total_block_executions
            )
            for name, count in self._intrinsic_counts.items():
                registry.counter(f"vm.intrinsic.{name}").inc(count)
            self._intrinsic_counts.clear()
        return ExecutionResult(
            return_value=value,
            profile=self._profile,
            output=list(self.output),
            steps=self._steps,
        )

    # -- execution core ------------------------------------------------------
    def _call(self, func: Function, args: list):
        if self.fusion is not None:
            if self.sampler is not None:
                return self._call_fused_sampled(func, args)
            return self._call_fused(func, args)
        if self.sampler is not None:
            return self._call_sampled(func, args)
        if func.is_declaration:
            raise VMError(f"call to undefined function {func.name}")
        if len(args) != len(func.args):
            raise VMError(
                f"{func.name}: expected {len(func.args)} args, got {len(args)}"
            )
        frame_token = self.memory.push_frame()
        env: dict[int, object] = {}
        for formal, actual in zip(func.args, args):
            env[id(formal)] = actual

        block = func.entry
        prev_block_id = 0
        fname = func.name
        profile = self._profile
        compiled = self._compiled
        max_steps = self.max_steps

        try:
            while True:
                plan = compiled.get(id(block))
                if plan is None:
                    plan = self._compile_block(fname, block)
                    compiled[id(block)] = plan
                record, size, phi_plan, handlers = plan

                record(fname)
                self._steps += size
                self.cycles_executed += size
                if self._steps > max_steps:
                    raise VMError(
                        f"step limit exceeded ({self.max_steps}) in {fname}"
                    )

                if phi_plan is not None:
                    keys, tables = phi_plan
                    values = [t[prev_block_id](env) for t in tables]
                    for key, value in zip(keys, values):
                        env[key] = value

                # Straight-line body: only the last handler (the terminator)
                # returns a control tuple.
                for handler in handlers:
                    ctl = handler(env)
                    if ctl is not None:
                        break
                else:  # pragma: no cover - verifier guarantees a terminator
                    raise VMError(f"{fname}/{block.name}: fell off block end")

                kind, payload = ctl
                if kind == _RETURN:
                    return payload
                prev_block_id = id(block)
                block = payload
        except MemoryError_ as exc:
            raise VMError(f"{fname}: {exc}") from None
        finally:
            self.memory.pop_frame(frame_token)

    def _call_sampled(self, func: Function, args: list):
        # Twin of _call with real-clock sampling woven in. Kept as a
        # separate loop (not an `if sampler` branch inside _call) so the
        # default path pays nothing for the feature; any fix to one loop
        # must be mirrored in the other. Nested calls re-enter through
        # _call, which routes back here while self.sampler is set.
        if func.is_declaration:
            raise VMError(f"call to undefined function {func.name}")
        if len(args) != len(func.args):
            raise VMError(
                f"{func.name}: expected {len(func.args)} args, got {len(args)}"
            )
        frame_token = self.memory.push_frame()
        env: dict[int, object] = {}
        for formal, actual in zip(func.args, args):
            env[id(formal)] = actual

        block = func.entry
        prev_block_id = 0
        fname = func.name
        compiled = self._compiled
        max_steps = self.max_steps
        sampler = self.sampler
        interval = sampler.interval
        samples = sampler.samples

        try:
            while True:
                plan = compiled.get(id(block))
                if plan is None:
                    plan = self._compile_block(fname, block)
                    compiled[id(block)] = plan
                record, size, phi_plan, handlers = plan

                record(fname)
                self._steps += size
                self.cycles_executed += size
                if self._steps > max_steps:
                    raise VMError(
                        f"step limit exceeded ({self.max_steps}) in {fname}"
                    )

                # Sampling tick: every `interval` block executions, charge
                # the elapsed wall time to the block running right now.
                sampler.tick += 1
                if sampler.tick >= interval:
                    now = perf_counter()
                    skey = (fname, block.name)
                    samples[skey] = samples.get(skey, 0.0) + now - sampler.last
                    sampler.last = now
                    sampler.tick = 0
                    sampler.sample_count += 1

                if phi_plan is not None:
                    keys, tables = phi_plan
                    values = [t[prev_block_id](env) for t in tables]
                    for key, value in zip(keys, values):
                        env[key] = value

                for handler in handlers:
                    ctl = handler(env)
                    if ctl is not None:
                        break
                else:  # pragma: no cover - verifier guarantees a terminator
                    raise VMError(f"{fname}/{block.name}: fell off block end")

                kind, payload = ctl
                if kind == _RETURN:
                    return payload
                prev_block_id = id(block)
                block = payload
        except MemoryError_ as exc:
            raise VMError(f"{fname}: {exc}") from None
        finally:
            self.memory.pop_frame(frame_token)

    def _call_fused(self, func: Function, args: list):
        # Fused twin of _call: blocks compile to (body, terminator) handler
        # lists with superinstruction sites spliced in as single handlers.
        # Accounting is identical to the plain loop — record() and the
        # static block size don't change — so block counts and the virtual
        # clock are bit-identical by construction; only the number of
        # Python-level handler calls (the real clock) drops.
        if func.is_declaration:
            raise VMError(f"call to undefined function {func.name}")
        if len(args) != len(func.args):
            raise VMError(
                f"{func.name}: expected {len(func.args)} args, got {len(args)}"
            )
        frame_token = self.memory.push_frame()
        env: dict[int, object] = {}
        for formal, actual in zip(func.args, args):
            env[id(formal)] = actual

        block = func.entry
        prev_block_id = 0
        fname = func.name
        compiled = self._compiled_fused
        max_steps = self.max_steps

        try:
            while True:
                plan = compiled.get(id(block))
                if plan is None:
                    plan = self._compile_block_fused(fname, block)
                    compiled[id(block)] = plan
                record, size, phi_plan, body, term = plan

                record(fname)
                self._steps += size
                self.cycles_executed += size
                if self._steps > max_steps:
                    raise VMError(
                        f"step limit exceeded ({self.max_steps}) in {fname}"
                    )

                if phi_plan is not None:
                    keys, tables = phi_plan
                    values = [t[prev_block_id](env) for t in tables]
                    for key, value in zip(keys, values):
                        env[key] = value

                # Straight-line body, then the terminator: the verifier
                # guarantees exactly one terminator, last in the block, so
                # the per-handler control check of the plain loop vanishes.
                for handler in body:
                    handler(env)
                kind, payload = term(env)
                if kind == _RETURN:
                    return payload
                prev_block_id = id(block)
                block = payload
        except MemoryError_ as exc:
            raise VMError(f"{fname}: {exc}") from None
        finally:
            self.memory.pop_frame(frame_token)

    def _call_fused_sampled(self, func: Function, args: list):
        # Fused twin of _call_sampled: sampling ticks at block entry, so a
        # fused sequence executing when the tick fires is attributed to its
        # block exactly as the unfused handlers would be.
        if func.is_declaration:
            raise VMError(f"call to undefined function {func.name}")
        if len(args) != len(func.args):
            raise VMError(
                f"{func.name}: expected {len(func.args)} args, got {len(args)}"
            )
        frame_token = self.memory.push_frame()
        env: dict[int, object] = {}
        for formal, actual in zip(func.args, args):
            env[id(formal)] = actual

        block = func.entry
        prev_block_id = 0
        fname = func.name
        compiled = self._compiled_fused
        max_steps = self.max_steps
        sampler = self.sampler
        interval = sampler.interval
        samples = sampler.samples

        try:
            while True:
                plan = compiled.get(id(block))
                if plan is None:
                    plan = self._compile_block_fused(fname, block)
                    compiled[id(block)] = plan
                record, size, phi_plan, body, term = plan

                record(fname)
                self._steps += size
                self.cycles_executed += size
                if self._steps > max_steps:
                    raise VMError(
                        f"step limit exceeded ({self.max_steps}) in {fname}"
                    )

                sampler.tick += 1
                if sampler.tick >= interval:
                    now = perf_counter()
                    skey = (fname, block.name)
                    samples[skey] = samples.get(skey, 0.0) + now - sampler.last
                    sampler.last = now
                    sampler.tick = 0
                    sampler.sample_count += 1

                if phi_plan is not None:
                    keys, tables = phi_plan
                    values = [t[prev_block_id](env) for t in tables]
                    for key, value in zip(keys, values):
                        env[key] = value

                for handler in body:
                    handler(env)
                kind, payload = term(env)
                if kind == _RETURN:
                    return payload
                prev_block_id = id(block)
                block = payload
        except MemoryError_ as exc:
            raise VMError(f"{fname}: {exc}") from None
        finally:
            self.memory.pop_frame(frame_token)

    # -- block compilation -----------------------------------------------------
    def _compile_block(self, fname: str, block: BasicBlock):
        phis = block.phis()
        phi_plan = None
        if phis:
            keys = [id(p) for p in phis]
            tables = []
            for phi in phis:
                table: dict[int, object] = {}
                for value, inc_block in phi.incoming:
                    table[id(inc_block)] = self._getter(value)
                tables.append(table)
            phi_plan = (keys, tables)

        handlers = [
            self._compile_instr(fname, instr)
            for instr in block.instructions[len(phis) :]
        ]

        size = len(block.instructions)
        block_name = block.name
        profile = self._profile

        def record(function_name: str, _size=size, _name=block_name) -> None:
            # self._profile is replaced per run(); resolve dynamically.
            self._profile.record(function_name, _name, _size)

        return (record, size, phi_plan, handlers)

    def _compile_block_fused(self, fname: str, block: BasicBlock):
        """Compile *block* with fused-site handlers spliced into the body.

        Returns ``(record, size, phi_plan, body, terminator)``: the body is
        a tuple of handlers where each fused site contributes exactly one,
        and the terminator handler is kept separate so the fused loops can
        skip the per-handler control check. ``size`` stays the static
        instruction count of the *unfused* block — that is the bit-identity
        invariant: fusion changes how many Python calls execute a block,
        never how the block is accounted.
        """
        phis = block.phis()
        phi_plan = None
        if phis:
            keys = [id(p) for p in phis]
            tables = []
            for phi in phis:
                table: dict[int, object] = {}
                for value, inc_block in phi.incoming:
                    table[id(inc_block)] = self._getter(value)
                tables.append(table)
            phi_plan = (keys, tables)

        instrs = block.instructions
        last = len(instrs) - 1
        sites = {site.start: site for site in self.fusion.sites_for(block)}
        body = []
        i = len(phis)
        while i < last:
            site = sites.get(i)
            if site is not None and i + site.length <= last:
                body.append(site.bind(self))
                i += site.length
            else:
                body.append(self._compile_instr(fname, instrs[i]))
                i += 1
        terminator = self._compile_instr(fname, instrs[last])

        size = len(instrs)
        block_name = block.name

        def record(function_name: str, _size=size, _name=block_name) -> None:
            # self._profile is replaced per run(); resolve dynamically.
            self._profile.record(function_name, _name, _size)

        return (record, size, phi_plan, tuple(body), terminator)

    def _getter(self, value: Value):
        """Compile an operand into a zero-branch accessor."""
        if isinstance(value, Constant):
            v = value.value
            return lambda env, _v=v: _v
        if isinstance(value, GlobalVariable):
            if value.address is None:
                raise VMError(f"global @{value.name} has no address")
            addr = value.address
            return lambda env, _a=addr: _a
        if isinstance(value, UndefValue):
            v = 0.0 if value.type.is_float else 0
            return lambda env, _v=v: _v
        key = id(value)

        def get(env, _k=key):
            try:
                return env[_k]
            except KeyError:
                name = getattr(value, "name", "?")
                raise VMError(f"use of undefined value %{name}") from None

        return get

    # -- instruction compilation ---------------------------------------------
    def _compile_instr(self, fname: str, instr: Instruction):
        op = instr.opcode
        key = id(instr)
        operands = instr.operands
        getters = [self._getter(o) for o in operands]

        # ---- integer binary ops with inlined wrapping --------------------
        if op in _INT_FAST_OPS and instr.type.is_int:
            g0, g1 = getters
            bits = instr.type.bits
            mask = (1 << bits) - 1
            half = 1 << (bits - 1) if bits > 1 else 1
            size = 1 << bits
            kind = op

            if kind is Opcode.ADD:

                def h(env):
                    v = (g0(env) + g1(env)) & mask
                    env[key] = v - size if v >= half else v

            elif kind is Opcode.SUB:

                def h(env):
                    v = (g0(env) - g1(env)) & mask
                    env[key] = v - size if v >= half else v

            elif kind is Opcode.MUL:

                def h(env):
                    v = (g0(env) * g1(env)) & mask
                    env[key] = v - size if v >= half else v

            elif kind is Opcode.AND:

                def h(env):
                    env[key] = g0(env) & g1(env)

            elif kind is Opcode.OR:

                def h(env):
                    env[key] = g0(env) | g1(env)

            else:  # XOR

                def h(env):
                    env[key] = g0(env) ^ g1(env)

            return h

        # ---- float binary ops --------------------------------------------
        if op in _FLOAT_FAST_OPS:
            g0, g1 = getters
            if op is Opcode.FADD:

                def h(env):
                    env[key] = g0(env) + g1(env)

            elif op is Opcode.FSUB:

                def h(env):
                    env[key] = g0(env) - g1(env)

            elif op is Opcode.FMUL:

                def h(env):
                    env[key] = g0(env) * g1(env)

            else:  # FDIV

                def h(env):
                    b = g1(env)
                    a = g0(env)
                    if b == 0.0:
                        env[key] = (
                            math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
                        )
                    else:
                        env[key] = a / b

            return h

        # ---- remaining binary ops via the shared fold evaluators ---------
        from repro.ir.opcodes import BINARY_OPS, CAST_OPS

        if op in BINARY_OPS:
            g0, g1 = getters
            ty = instr.type

            def h(env):
                try:
                    env[key] = fold_binary(op, ty, g0(env), g1(env))
                except ConstantFoldError as exc:
                    raise VMError(f"{fname}: {exc}") from None

            return h

        if op is Opcode.ICMP:
            g0, g1 = getters
            pred = instr.pred
            oty = operands[0].type
            if pred is ICmpPred.SLT:
                return lambda env: env.__setitem__(key, 1 if g0(env) < g1(env) else 0)
            if pred is ICmpPred.SGT:
                return lambda env: env.__setitem__(key, 1 if g0(env) > g1(env) else 0)
            if pred is ICmpPred.SLE:
                return lambda env: env.__setitem__(key, 1 if g0(env) <= g1(env) else 0)
            if pred is ICmpPred.SGE:
                return lambda env: env.__setitem__(key, 1 if g0(env) >= g1(env) else 0)
            if pred is ICmpPred.EQ:
                return lambda env: env.__setitem__(key, 1 if g0(env) == g1(env) else 0)
            if pred is ICmpPred.NE:
                return lambda env: env.__setitem__(key, 1 if g0(env) != g1(env) else 0)

            def h(env):
                env[key] = fold_icmp(pred, oty, g0(env), g1(env))

            return h

        if op is Opcode.FCMP:
            g0, g1 = getters
            pred = instr.pred

            def h(env):
                env[key] = fold_fcmp(pred, g0(env), g1(env))

            return h

        if op in CAST_OPS:
            g0 = getters[0]
            src_ty = operands[0].type
            dst_ty = instr.type

            def h(env):
                env[key] = fold_cast(op, src_ty, dst_ty, g0(env))

            return h

        if op is Opcode.SELECT:
            gc, gt, gf = getters

            def h(env):
                env[key] = gt(env) if gc(env) else gf(env)

            return h

        if op is Opcode.FNEG:
            g0 = getters[0]

            def h(env):
                env[key] = -g0(env)

            return h

        # ---- memory ----------------------------------------------------------
        if op is Opcode.LOAD:
            g0 = getters[0]
            load = self.memory.load
            ty = instr.type

            def h(env):
                env[key] = load(g0(env), ty)

            return h

        if op is Opcode.STORE:
            gv, gp = getters
            store = self.memory.store
            ty = operands[0].type

            def h(env):
                store(gp(env), ty, gv(env))

            return h

        if op is Opcode.GEP:
            gp, gi = getters
            scale = instr.elem_size

            def h(env):
                env[key] = gp(env) + gi(env) * scale

            return h

        if op is Opcode.ALLOCA:
            nbytes = instr.elem_size * instr.alloc_count
            alloca = self.memory.alloca

            def h(env):
                env[key] = alloca(nbytes)

            return h

        # ---- calls -----------------------------------------------------------
        if op is Opcode.CALL:
            callee = instr.callee
            has_result = instr.has_result
            if isinstance(callee, str):
                intr = INTRINSICS.get(callee)
                if intr is None:
                    raise VMError(f"unknown intrinsic {callee!r}")
                fn = intr.fn

                # Intrinsic-call counting is baked in at block-compile time:
                # with metrics disabled (the default) the handlers below are
                # count-free, so observability costs the hot loop nothing.
                if metrics_enabled():
                    counts = self._intrinsic_counts
                    name = callee

                    if has_result:

                        def h(env):
                            counts[name] = counts.get(name, 0) + 1
                            env[key] = fn(self, *[g(env) for g in getters])

                    else:

                        def h(env):
                            counts[name] = counts.get(name, 0) + 1
                            fn(self, *[g(env) for g in getters])

                    return h

                if has_result:

                    def h(env):
                        env[key] = fn(self, *[g(env) for g in getters])

                else:

                    def h(env):
                        fn(self, *[g(env) for g in getters])

                return h

            call = self._call

            if has_result:

                def h(env):
                    env[key] = call(callee, [g(env) for g in getters])

            else:

                def h(env):
                    call(callee, [g(env) for g in getters])

            return h

        if op is Opcode.CUSTOM:
            custom_id = instr.custom_id
            evaluators = self.custom_evaluators

            def h(env):
                evaluator = evaluators.get(custom_id)
                if evaluator is None:
                    raise VMError(
                        f"no evaluator for custom instruction #{custom_id}"
                    )
                env[key] = evaluator([g(env) for g in getters])

            return h

        # ---- terminators -----------------------------------------------------
        if op is Opcode.BR:
            target = instr.targets[0]
            ctl = (_JUMP, target)
            return lambda env, _c=ctl: _c

        if op is Opcode.CONDBR:
            g0 = getters[0]
            ctl_true = (_JUMP, instr.targets[0])
            ctl_false = (_JUMP, instr.targets[1])
            return lambda env: ctl_true if g0(env) else ctl_false

        if op is Opcode.RET:
            if getters:
                g0 = getters[0]
                return lambda env: (_RETURN, g0(env))
            none_ctl = (_RETURN, None)
            return lambda env, _c=none_ctl: _c

        raise VMError(f"cannot interpret opcode {op}")  # pragma: no cover


_INT_FAST_OPS = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR}
)
_FLOAT_FAST_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
)
