"""Superinstruction fusion: splice mined opcode sequences into one handler.

This is the VM-side answer to the paper's JIT-ISE loop (Section V): the
dispatch observatory (:mod:`repro.obs.vmprof`) mines hot straight-line
opcode n-grams exactly the way the paper's candidate search mines dataflow
subgraphs; this module compiles each mined sequence *site* into a single
Python function whose body inlines the constituent operations, and the
interpreter's fused dispatch loop (:meth:`Interpreter._call_fused`) then
executes N instructions behind one handler call — a "software Woolcano".

Correctness argument (same as :mod:`repro.vm.patcher` makes for CUSTOM
instructions): every inlined operation is either the interpreter's own
fast-path expression copied verbatim (masked integer wrap, fdiv
zero-check, fast icmp predicates) or a call into the shared constant-fold
evaluators (``fold_binary``/``fold_icmp``/``fold_fcmp``/``fold_cast``)
that both the optimizer and the plain dispatch path already use — so the
fused path cannot drift from plain-path semantics. Every SSA result is
still stored into ``env`` (later blocks, phis and un-fused neighbours
read it), so fusion is observationally invisible: same outputs, same
block counts, and — because the virtual PPC405 clock is derived post-hoc
from the *unmodified* module's static block composition — a bit-identical
virtual clock. A fused handler therefore "charges" the summed cycles of
its constituents automatically; only the real clock drops, because N
handler dispatches (closure call + operand-getter calls + loop bookkeeping)
collapse into one call with operands resolved to locals and literals.

Pipeline::

    plain run ──▶ ExecutionProfile ──▶ mine_superinsns (obs/vmprof)
                                           │ top-K ranked sequences
                                           ▼
    build_fusion_plan(module, sequences)   (once per CompiledApp)
      · match non-overlapping sites per block (CUSTOM/CALL/phi barriers)
      · exec-compile one factory per site (operands baked in)
                                           ▼
    Interpreter(fusion=plan) ──▶ _call_fused: body handlers + terminator

The *plan* (matching + code generation + ``compile()``) is interpreter
independent and built once per :class:`~repro.apps.base.CompiledApp`;
binding a site to a concrete interpreter (memory functions, resolved
global addresses) is a cheap tuple-unpack done at block-compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.opcodes import BINARY_OPS, CAST_OPS, ICmpPred, Opcode
from repro.ir.values import Constant, GlobalVariable, UndefValue, Value

#: Opcodes that terminate a fusible straight-line region: calls and CUSTOM
#: hide arbitrary work (including nested dispatch) behind one handler,
#: phis are resolved at block entry, and terminators end the block.
#: The vmprof miner and the site matcher share this single definition, so
#: a mined sequence is fusible by construction.
FUSION_EXCLUDED = frozenset({"call", "custom", "phi", "br", "condbr", "ret"})

#: Candidate sequence lengths (straight-line opcode n-grams).
MIN_SEQ_LEN = 2
MAX_SEQ_LEN = 4

#: Default number of top-ranked mined sequences spliced in by ``--fuse``
#: (measured sweet spot on the four-app macro benchmark; see EXPERIMENTS.md).
DEFAULT_FUSE_TOP = 12

# Binding descriptor kinds, resolved when a site is bound to an interpreter.
_STATIC = "static"  # payload used as-is (types, predicates, evaluators)
_GLOBAL = "global"  # payload: GlobalVariable -> resolved address
_MEMFN = "memfn"  # payload: Memory method name ("load"/"store"/"alloca")

_INT_FAST = {Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*"}
_INT_BITWISE = {Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^"}
_FLOAT_FAST = {Opcode.FADD: "+", Opcode.FSUB: "-", Opcode.FMUL: "*"}
_ICMP_FAST = {
    ICmpPred.SLT: "<",
    ICmpPred.SGT: ">",
    ICmpPred.SLE: "<=",
    ICmpPred.SGE: ">=",
    ICmpPred.EQ: "==",
    ICmpPred.NE: "!=",
}


class FusionError(Exception):
    """A sequence cannot be compiled into a fused handler."""


@dataclass(frozen=True)
class FusedSite:
    """One fusible occurrence of a mined sequence inside a basic block.

    ``start`` indexes ``block.instructions`` (phis included); the
    interpreter's fused block compiler converts it to a handler slot.
    ``factory`` is the exec-compiled site factory: called with the
    resolved binding tuple it returns the fused handler ``env -> None``.
    """

    function: str
    block: str
    start: int
    length: int
    sequence: tuple[str, ...]
    factory: object
    bindings: tuple

    @property
    def name(self) -> str:
        return "+".join(self.sequence)

    def bind(self, interpreter) -> object:
        """Resolve bindings against *interpreter* and build the handler."""
        from repro.vm.interpreter import VMError

        values = []
        for kind, payload in self.bindings:
            if kind == _STATIC:
                values.append(payload)
            elif kind == _GLOBAL:
                if payload.address is None:
                    raise VMError(f"global @{payload.name} has no address")
                values.append(payload.address)
            else:  # _MEMFN
                values.append(getattr(interpreter.memory, payload))
        return self.factory(tuple(values))


@dataclass
class FusionPlan:
    """All fused sites for one module, built once per CompiledApp."""

    module: Module
    sequences: tuple[tuple[str, ...], ...]
    sites_by_block: dict[int, tuple[FusedSite, ...]] = field(
        default_factory=dict
    )

    @property
    def site_count(self) -> int:
        return sum(len(sites) for sites in self.sites_by_block.values())

    @property
    def fused_instructions(self) -> int:
        """Static instructions covered by fused sites."""
        return sum(
            site.length
            for sites in self.sites_by_block.values()
            for site in sites
        )

    def sites_for(self, block: BasicBlock) -> tuple[FusedSite, ...]:
        return self.sites_by_block.get(id(block), ())

    def all_sites(self) -> list[FusedSite]:
        """Deterministic (function, block, start) order."""
        sites = [
            site for group in self.sites_by_block.values() for site in group
        ]
        sites.sort(key=lambda s: (s.function, s.block, s.start))
        return sites

    def dispatches_removed(self, profile) -> int:
        """Dynamic handler dispatches eliminated under *profile*'s counts.

        A length-k site replaces k handler calls with 1 on every execution
        of its block, so each contributes ``count x (k-1)``.
        """
        total = 0
        for site in self.all_sites():
            block_prof = profile.blocks.get((site.function, site.block))
            if block_prof is not None:
                total += block_prof.count * (site.length - 1)
        return total

    def describe(self) -> dict:
        """Deterministic manifest block (counts only, no wall time)."""
        sequences: dict[str, dict] = {}
        for site in self.all_sites():
            entry = sequences.setdefault(
                site.name, {"length": site.length, "sites": 0}
            )
            entry["sites"] += 1
        return {
            "top": len(self.sequences),
            "sites": self.site_count,
            "fused_instructions": self.fused_instructions,
            "sequences": dict(sorted(sequences.items())),
        }


# -- plan construction -------------------------------------------------------
def build_fusion_plan(
    module: Module, sequences: list[tuple[str, ...]]
) -> FusionPlan:
    """Match *sequences* (ranked best-first) against every block of *module*.

    Matching is greedy in rank order and non-overlapping: once a higher
    ranked sequence claims instructions, lower-ranked ones flow around it.
    Sequences containing excluded opcodes are dropped (belt and braces —
    the miner never emits them), so a site can never span a CUSTOM
    instruction, a call, a phi, or the terminator.
    """
    normalized: list[tuple[str, ...]] = []
    for seq in sequences:
        seq = tuple(seq)
        if len(seq) < 2 or any(op in FUSION_EXCLUDED for op in seq):
            continue
        if seq not in normalized:
            normalized.append(seq)

    plan = FusionPlan(module=module, sequences=tuple(normalized))
    if not normalized:
        return plan
    for func in module.defined_functions():
        for block in func.blocks:
            sites = _match_block(func.name, block, normalized)
            if sites:
                plan.sites_by_block[id(block)] = tuple(sites)
    return plan


def plan_from_candidates(module: Module, candidates, top: int) -> FusionPlan:
    """Build a plan from ranked miner candidates (anything with .sequence)."""
    return build_fusion_plan(
        module, [c.sequence for c in candidates[: max(0, top)]]
    )


def _match_block(
    fname: str, block: BasicBlock, sequences: list[tuple[str, ...]]
) -> list[FusedSite]:
    instrs = block.instructions
    ops = [i.opcode.value for i in instrs]
    n = len(ops)
    taken = [False] * n
    sites: list[FusedSite] = []
    for seq in sequences:
        length = len(seq)
        start = 0
        while start <= n - length:
            window = tuple(ops[start : start + length])
            if window != seq or any(taken[start : start + length]):
                start += 1
                continue
            site = _compile_site(
                fname, block, start, instrs[start : start + length]
            )
            sites.append(site)
            for i in range(start, start + length):
                taken[i] = True
            start += length
    sites.sort(key=lambda s: s.start)
    return sites


# -- per-site code generation ------------------------------------------------
class _SiteCodegen:
    """Generates one fused handler's source plus its binding descriptors."""

    def __init__(self, fname: str, seq_name: str) -> None:
        self.fname = fname
        self.seq_name = seq_name
        self.lines: list[str] = []
        self.bindings: list[tuple[str, object]] = []  # (kind, payload)
        self._names: list[str] = []
        self._bound: dict[tuple, str] = {}
        self._locals: dict[int, str] = {}  # id(instr) -> local var

    # -- bindings ----------------------------------------------------------
    def bind(self, kind: str, payload: object) -> str:
        key = (kind, id(payload))
        name = self._bound.get(key)
        if name is None:
            name = f"_b{len(self.bindings)}"
            self._bound[key] = name
            self.bindings.append((kind, payload))
            self._names.append(name)
        return name

    def operand(self, value: Value) -> str:
        """Expression for one operand, mirroring Interpreter._getter."""
        local = self._locals.get(id(value))
        if local is not None:
            return local
        if isinstance(value, Constant):
            v = value.value
            if type(v) is int:
                return repr(v)
            return self.bind(_STATIC, v)
        if isinstance(value, GlobalVariable):
            return self.bind(_GLOBAL, value)
        if isinstance(value, UndefValue):
            return "0.0" if value.type.is_float else "0"
        return f"env[{id(value)}]"

    # -- emission ----------------------------------------------------------
    def emit(self, index: int, instr: Instruction) -> None:
        op = instr.opcode
        key = id(instr)
        res = f"v{index}"
        operands = instr.operands
        L = self.lines.append

        if op in _INT_FAST and instr.type.is_int:
            a, b = (self.operand(o) for o in operands)
            bits = instr.type.bits
            mask = (1 << bits) - 1
            half = 1 << (bits - 1) if bits > 1 else 1
            size = 1 << bits
            L(f"{res} = ({a} {_INT_FAST[op]} {b}) & {mask}")
            L(f"{res} = {res} - {size} if {res} >= {half} else {res}")
        elif op in _INT_BITWISE and instr.type.is_int:
            a, b = (self.operand(o) for o in operands)
            L(f"{res} = {a} {_INT_BITWISE[op]} {b}")
        elif op in _FLOAT_FAST:
            a, b = (self.operand(o) for o in operands)
            L(f"{res} = {a} {_FLOAT_FAST[op]} {b}")
        elif op is Opcode.FDIV:
            import math

            a, b = (self.operand(o) for o in operands)
            inf = self.bind(_STATIC, math.inf)
            nan = self.bind(_STATIC, math.nan)
            L(f"_den = {b}")
            L(f"_num = {a}")
            L("if _den == 0.0:")
            L(
                f"    {res} = {inf} if _num > 0 else"
                f" (-{inf} if _num < 0 else {nan})"
            )
            L("else:")
            L(f"    {res} = _num / _den")
        elif op in BINARY_OPS:
            from repro.ir.passes.constfold import (
                ConstantFoldError,
                fold_binary,
            )

            a, b = (self.operand(o) for o in operands)
            fb = self.bind(_STATIC, fold_binary)
            opc = self.bind(_STATIC, op)
            ty = self.bind(_STATIC, instr.type)
            cfe = self.bind(_STATIC, ConstantFoldError)
            from repro.vm.interpreter import VMError

            vme = self.bind(_STATIC, VMError)
            L("try:")
            L(f"    {res} = {fb}({opc}, {ty}, {a}, {b})")
            L(f"except {cfe} as exc:")
            L(f'    raise {vme}(f"{self.fname}: {{exc}}") from None')
        elif op is Opcode.ICMP:
            a, b = (self.operand(o) for o in operands)
            sym = _ICMP_FAST.get(instr.pred)
            if sym is not None:
                L(f"{res} = 1 if {a} {sym} {b} else 0")
            else:
                from repro.ir.passes.constfold import fold_icmp

                fi = self.bind(_STATIC, fold_icmp)
                pred = self.bind(_STATIC, instr.pred)
                oty = self.bind(_STATIC, operands[0].type)
                L(f"{res} = {fi}({pred}, {oty}, {a}, {b})")
        elif op is Opcode.FCMP:
            from repro.ir.passes.constfold import fold_fcmp

            a, b = (self.operand(o) for o in operands)
            ff = self.bind(_STATIC, fold_fcmp)
            pred = self.bind(_STATIC, instr.pred)
            L(f"{res} = {ff}({pred}, {a}, {b})")
        elif op in CAST_OPS:
            from repro.ir.passes.constfold import fold_cast

            a = self.operand(operands[0])
            fc = self.bind(_STATIC, fold_cast)
            opc = self.bind(_STATIC, op)
            src = self.bind(_STATIC, operands[0].type)
            dst = self.bind(_STATIC, instr.type)
            L(f"{res} = {fc}({opc}, {src}, {dst}, {a})")
        elif op is Opcode.SELECT:
            c, t, f = (self.operand(o) for o in operands)
            L(f"{res} = {t} if {c} else {f}")
        elif op is Opcode.FNEG:
            L(f"{res} = -{self.operand(operands[0])}")
        elif op is Opcode.LOAD:
            a = self.operand(operands[0])
            load = self.bind(_MEMFN, "load")
            ty = self.bind(_STATIC, instr.type)
            L(f"{res} = {load}({a}, {ty})")
        elif op is Opcode.STORE:
            v, p = (self.operand(o) for o in operands)
            store = self.bind(_MEMFN, "store")
            ty = self.bind(_STATIC, operands[0].type)
            L(f"{store}({p}, {ty}, {v})")
            return  # no result
        elif op is Opcode.GEP:
            p, i = (self.operand(o) for o in operands)
            L(f"{res} = {p} + {i} * {instr.elem_size}")
        elif op is Opcode.ALLOCA:
            alloca = self.bind(_MEMFN, "alloca")
            L(f"{res} = {alloca}({instr.elem_size * instr.alloc_count})")
        else:
            raise FusionError(
                f"opcode {op.value!r} is not fusible"
            )  # pragma: no cover - matcher filters these

        # Every result is still published to env: later blocks, phis and
        # un-fused neighbours read SSA values there. This is what keeps
        # fusion observationally invisible.
        L(f"env[{key}] = {res}")
        self._locals[key] = res

    def source(self) -> str:
        body = "\n".join(f"            {line}" for line in self.lines)
        unpack = ""
        if self._names:
            unpack = f"    ({', '.join(self._names)},) = _B\n"
        return (
            f"def _make(_B):\n"
            f"{unpack}"
            f"    def _fused(env):\n"
            f"        try:\n"
            f"{body}\n"
            f"        except KeyError:\n"
            f"            raise _VME(\n"
            f'                "{self.fname}: use of undefined value in '
            f'fused {self.seq_name}"\n'
            f"            ) from None\n"
            f"    return _fused\n"
        )


def _compile_site(
    fname: str, block: BasicBlock, start: int, instrs: list[Instruction]
) -> FusedSite:
    sequence = tuple(i.opcode.value for i in instrs)
    gen = _SiteCodegen(fname, "+".join(sequence))
    for index, instr in enumerate(instrs):
        gen.emit(index, instr)
    source = gen.source()
    from repro.vm.interpreter import VMError

    namespace: dict = {"_VME": VMError}
    code = compile(
        source,
        f"<fused {fname}/{block.name}@{start}: {'+'.join(sequence)}>",
        "exec",
    )
    exec(code, namespace)
    return FusedSite(
        function=fname,
        block=block.name,
        start=start,
        length=len(instrs),
        sequence=sequence,
        factory=namespace["_make"],
        bindings=tuple(gen.bindings),
    )
