"""Real-clock dispatch-cost calibration for the interpreter.

The PPC405 model in :mod:`repro.vm.costmodel` prices the *virtual* clock;
this module measures the *real* one — what each opcode class costs the
CPython dispatch loop per executed instruction. The two disagree wildly
(soft-float ops are 18-85 virtual cycles but a Python ``+`` is nearly
free; a virtual 1-cycle integer add still pays the full closure-dispatch
overhead), and that divergence is exactly what the dispatch-optimization
work must attack. The related microarchitecture-aware custom-instruction
papers (see PAPERS.md) make the same argument for hardware: candidate
selection must rank by *measured* cost on the actual machine, not by the
abstract cycle model — here the "machine" is the interpreter itself, the
stand-in for the paper's Figure 1 JIT VM.

Method: for each opcode class, build a synthetic IR kernel — a counted
loop whose body holds ``width`` instructions of that class — interpret it
for ``iters`` iterations, and subtract an empty-body baseline loop timed
the same way.  ``cost = (t_class - t_baseline) / (iters * width)``.  The
baseline loop (phi + add + icmp + condbr per iteration) also yields the
control-flow class by subtracting the already-measured add and icmp
costs. Timings take the min over ``repeats`` after a warm-up run, so
block-compilation cost is excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.opcodes import FCmpPred, ICmpPred, Opcode
from repro.ir.types import F64, I32, I64
from repro.vm.interpreter import Interpreter

#: Opcode mnemonic -> calibration class. Every opcode maps somewhere, so
#: a profile's full opcode mix can be priced in real seconds.
CLASS_OF_OPCODE: dict[str, str] = {
    "add": "int_alu", "sub": "int_alu", "and": "int_alu", "or": "int_alu",
    "xor": "int_alu", "shl": "int_alu", "lshr": "int_alu", "ashr": "int_alu",
    "alloca": "int_alu",
    "mul": "int_mul",
    "sdiv": "int_div", "udiv": "int_div", "srem": "int_div", "urem": "int_div",
    "fadd": "fp_arith", "fsub": "fp_arith", "fmul": "fp_arith",
    "fneg": "fp_arith",
    "fdiv": "fp_div", "frem": "fp_div",
    "icmp": "icmp",
    "fcmp": "fcmp",
    "zext": "cast", "sext": "cast", "trunc": "cast", "fptosi": "cast",
    "sitofp": "cast", "fpext": "cast", "fptrunc": "cast", "bitcast": "cast",
    "select": "select",
    "load": "load",
    "store": "store",
    "gep": "gep",
    "call": "call", "custom": "call",
    "br": "control", "condbr": "control", "ret": "control", "phi": "control",
}

#: Classes measured directly by a payload kernel ("control" is derived
#: from the baseline loop instead).
MEASURED_CLASSES = (
    "int_alu", "int_mul", "int_div", "fp_arith", "fp_div",
    "icmp", "fcmp", "cast", "select", "load", "store", "gep", "call",
)


@dataclass
class DispatchCostTable:
    """Measured per-dispatch real-clock cost of each opcode class.

    ``class_seconds`` maps class name -> seconds per executed instruction;
    ``baseline_seconds`` is the per-iteration cost of the empty counted
    loop (the four-dispatch skeleton the payload costs were measured
    against).
    """

    class_seconds: dict[str, float] = field(default_factory=dict)
    baseline_seconds: float = 0.0
    iters: int = 0
    width: int = 0
    repeats: int = 0

    def seconds_for(self, opcode: "Opcode | str") -> float:
        """Seconds one dynamic dispatch of *opcode* costs the host."""
        mnemonic = opcode.value if isinstance(opcode, Opcode) else opcode
        cls = CLASS_OF_OPCODE.get(mnemonic)
        if cls is None:
            raise KeyError(f"no dispatch class for opcode {mnemonic!r}")
        return self.class_seconds.get(cls, 0.0)

    @property
    def dispatch_overhead_seconds(self) -> float:
        """Floor cost of one dispatched handler (the int-ALU class).

        An integer add does near-zero arithmetic work in Python, so its
        measured cost *is* the closure-call + env-store dispatch overhead —
        the per-instruction saving a fused superinstruction realizes.
        """
        return self.class_seconds.get("int_alu", 0.0)

    def to_dict(self) -> dict:
        return {
            "classes_ns": {
                name: self.class_seconds[name] * 1e9
                for name in sorted(self.class_seconds)
            },
            "baseline_ns_per_iter": self.baseline_seconds * 1e9,
            "iters": self.iters,
            "width": self.width,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DispatchCostTable":
        return cls(
            class_seconds={
                name: ns / 1e9
                for name, ns in (data.get("classes_ns") or {}).items()
            },
            baseline_seconds=(data.get("baseline_ns_per_iter") or 0.0) / 1e9,
            iters=int(data.get("iters") or 0),
            width=int(data.get("width") or 0),
            repeats=int(data.get("repeats") or 0),
        )


# -- kernel construction -----------------------------------------------------
def _build_kernel(class_name: str, width: int) -> Module:
    """A counted loop with *width* instructions of *class_name* per pass."""
    module = Module(f"calib_{class_name}")
    if class_name == "call":
        leaf = module.declare_function("leaf", I32, [("x", I32)])
        lb = IRBuilder(leaf.add_block("entry"))
        lb.ret(leaf.args[0])
    if class_name in ("load", "store", "gep"):
        module.add_global("buf", I32, 8, [0, 1, 2, 3, 4, 5, 6, 7])

    func = module.declare_function("kernel", I32, [("n", I32)])
    (n,) = func.args
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    done = func.add_block("done")

    b = IRBuilder(entry)
    # Loop-invariant operands prepared in the preheader, so the loop body
    # holds only the instructions under measurement.
    fval = None
    cond = None
    if class_name in ("fp_arith", "fp_div", "fcmp"):
        fval = b.sitofp(b.i32(3), F64)
    if class_name == "select":
        cond = b.icmp(ICmpPred.SLT, b.i32(1), b.i32(2))
    b.br(loop)

    b.set_block(loop)
    i = b.phi(I32, "i")
    _emit_payload(b, module, class_name, width, i, fval, cond)
    i_next = b.add(i, b.i32(1))
    exit_cond = b.icmp(ICmpPred.SLT, i_next, n)
    b.condbr(exit_cond, loop, done)
    i.add_incoming(b.i32(0), entry)
    i.add_incoming(i_next, loop)

    b.set_block(done)
    b.ret(i_next)
    return module


def _emit_payload(b, module, class_name, width, i, fval, cond) -> None:
    if class_name == "baseline":
        return
    if class_name == "int_alu":
        x = i
        for _ in range(width):
            x = b.add(x, b.i32(1))
    elif class_name == "int_mul":
        x = i
        for _ in range(width):
            x = b.mul(x, b.i32(3))
    elif class_name == "int_div":
        x = i
        for _ in range(width):
            x = b.sdiv(x, b.i32(3))
    elif class_name == "fp_arith":
        x = fval
        for _ in range(width):
            x = b.fadd(x, b.f64(1.0))
    elif class_name == "fp_div":
        x = fval
        for _ in range(width):
            x = b.fdiv(x, b.f64(1.0000001))
    elif class_name == "icmp":
        for _ in range(width):
            b.icmp(ICmpPred.SLT, i, b.i32(7))
    elif class_name == "fcmp":
        for _ in range(width):
            b.fcmp(FCmpPred.OLT, fval, b.f64(7.0))
    elif class_name == "cast":
        x = i
        for j in range(width):
            if j % 2 == 0:
                wide = b.zext(x, I64)
            else:
                x = b.trunc(wide, I32)
    elif class_name == "select":
        for _ in range(width):
            b.select(cond, i, b.i32(9))
    elif class_name == "load":
        buf = module.globals["buf"]
        for _ in range(width):
            b.load(I32, buf)
    elif class_name == "store":
        buf = module.globals["buf"]
        for _ in range(width):
            b.store(b.i32(7), buf)
    elif class_name == "gep":
        buf = module.globals["buf"]
        for _ in range(width):
            b.gep(buf, i, 4)
    elif class_name == "call":
        leaf = module.functions["leaf"]
        for _ in range(width):
            b.call(leaf, [i])
    else:  # pragma: no cover - class list is closed
        raise ValueError(f"unknown calibration class {class_name!r}")


# -- measurement -------------------------------------------------------------
def _time_kernel(module: Module, iters: int, repeats: int) -> float:
    """Best-of-*repeats* wall seconds for one kernel run (post warm-up)."""
    interp = Interpreter(module, max_steps=2_000_000_000)
    interp.run("kernel", [2])  # warm-up: compile blocks off the clock
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = perf_counter()
        interp.run("kernel", [iters])
        best = min(best, perf_counter() - start)
    return best


def measure_dispatch_costs(
    iters: int = 6000, width: int = 12, repeats: int = 3
) -> DispatchCostTable:
    """Calibrate per-dispatch real-clock costs on this host.

    Costs are clamped at zero: on a noisy host a cheap class can time
    marginally below the baseline loop; a negative dispatch cost is
    meaningless downstream.
    """
    baseline = _time_kernel(_build_kernel("baseline", 0), iters, repeats)
    base_per_iter = baseline / iters

    class_seconds: dict[str, float] = {}
    for class_name in MEASURED_CLASSES:
        # The call class is an order of magnitude slower per instruction
        # (full frame push/pop); a narrower payload keeps its runtime in
        # line with the others without hurting resolution.
        w = max(2, width // 4) if class_name == "call" else width
        elapsed = _time_kernel(_build_kernel(class_name, w), iters, repeats)
        per_dispatch = (elapsed - baseline) / (iters * w)
        class_seconds[class_name] = max(per_dispatch, 0.0)

    # The baseline loop is phi + add + icmp + condbr; after removing the
    # measured add and icmp shares, split the remainder over the two
    # control dispatches (phi resolution + conditional branch).
    residual = base_per_iter - class_seconds["int_alu"] - class_seconds["icmp"]
    class_seconds["control"] = max(residual, 0.0) / 2.0

    return DispatchCostTable(
        class_seconds=class_seconds,
        baseline_seconds=base_per_iter,
        iters=iters,
        width=width,
        repeats=repeats,
    )
