"""Execution profiles: per-basic-block dynamic execution counts.

The paper's methodology rests on block-level profiles: they drive the
live/dead/const code-coverage classification (Table I), the kernel-size
analysis, the pruning filters, the speedup estimates, and the break-even
model. A profile here is a mapping ``(function_name, block_name) -> count``
plus enough static information to convert counts into cycles under any cost
model *after* the run (so ASIP what-if analyses never need to re-execute).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.vm.costmodel import CostModel

BlockKey = tuple[str, str]


@dataclass
class BlockProfile:
    """Profile data of one basic block."""

    function: str
    block: str
    count: int = 0
    static_instructions: int = 0

    @property
    def key(self) -> BlockKey:
        return (self.function, self.block)

    @property
    def dynamic_instructions(self) -> int:
        return self.count * self.static_instructions


@dataclass
class ExecutionProfile:
    """Block-level profile of one program execution."""

    module_name: str = ""
    blocks: dict[BlockKey, BlockProfile] = field(default_factory=dict)

    def record(self, function: str, block: str, static_instructions: int) -> None:
        key = (function, block)
        prof = self.blocks.get(key)
        if prof is None:
            prof = BlockProfile(function, block, 0, static_instructions)
            self.blocks[key] = prof
        prof.count += 1

    def count_of(self, function: str, block: str) -> int:
        prof = self.blocks.get((function, block))
        return prof.count if prof else 0

    @property
    def total_block_executions(self) -> int:
        return sum(p.count for p in self.blocks.values())

    @property
    def total_dynamic_instructions(self) -> int:
        return sum(p.dynamic_instructions for p in self.blocks.values())

    # -- cycle accounting ------------------------------------------------------
    def total_cycles(
        self,
        module: Module,
        cost_model: CostModel,
        block_cost_override=None,
    ) -> float:
        """Total CPU cycles of the profiled run under *cost_model*.

        ``block_cost_override(func_name, block) -> float | None`` lets the
        Woolcano machine model substitute per-block costs where custom
        instructions replace part of the block.
        """
        total = 0.0
        costs = static_block_costs(module, cost_model)
        for key, prof in self.blocks.items():
            if prof.count == 0:
                continue
            cost = None
            if block_cost_override is not None:
                cost = block_cost_override(*key)
            if cost is None:
                cost = costs.get(key)
            if cost is None:
                continue  # block disappeared (e.g. different module version)
            total += prof.count * cost
        return total

    def block_cycles(
        self, module: Module, cost_model: CostModel
    ) -> dict[BlockKey, float]:
        """Total cycles spent in each profiled block (count x static cost)."""
        costs = static_block_costs(module, cost_model)
        return {
            key: prof.count * costs.get(key, 0.0)
            for key, prof in self.blocks.items()
        }

    def block_time_shares(
        self, module: Module, cost_model: CostModel
    ) -> dict[BlockKey, float]:
        """Fraction of total execution time spent in each block."""
        per_block = self.block_cycles(module, cost_model)
        total = sum(per_block.values())
        if total <= 0:
            return {key: 0.0 for key in per_block}
        return {key: v / total for key, v in per_block.items()}

    def merged_with(self, other: "ExecutionProfile") -> "ExecutionProfile":
        merged = ExecutionProfile(self.module_name)
        for src in (self, other):
            for key, prof in src.blocks.items():
                if key in merged.blocks:
                    merged.blocks[key].count += prof.count
                else:
                    merged.blocks[key] = BlockProfile(
                        prof.function, prof.block, prof.count, prof.static_instructions
                    )
        return merged


def static_block_costs(
    module: Module, cost_model: CostModel
) -> dict[BlockKey, float]:
    """Static per-execution cycle cost of every block in *module*.

    A block's cost is the sum of its instructions' costs; call instructions
    contribute only call overhead (the callee's body is accounted in the
    callee's own blocks).
    """
    costs: dict[BlockKey, float] = {}
    for func in module.defined_functions():
        for block in func.blocks:
            total = 0.0
            for instr in block.instructions:
                # CUSTOM instructions are priced only by WoolcanoCostModel;
                # the base model raises ValueError, which is the right
                # failure mode for un-patched accounting paths.
                total += cost_model.cycles_for(instr)
            costs[(func.name, block.name)] = total
    return costs
