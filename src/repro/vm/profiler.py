"""Execution profiles: per-basic-block dynamic execution counts.

The paper's methodology rests on block-level profiles: they drive the
live/dead/const code-coverage classification (Table I), the kernel-size
analysis, the pruning filters, the speedup estimates, and the break-even
model. A profile here is a mapping ``(function_name, block_name) -> count``
plus enough static information to convert counts into cycles under any cost
model *after* the run (so ASIP what-if analyses never need to re-execute).

The same post-hoc trick yields opcode-level observability for free: dynamic
per-opcode counts and opcode-digram (adjacent-pair) counts are derived from
the static block composition multiplied by the block counts, so the
interpreter never pays a per-instruction hook. :class:`BlockTimeSampler`
adds the one thing counts cannot give — *real*-clock attribution per block —
as an opt-in sampler the candidate-mining layer (Section V) uses to rank
dispatch-bound blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.vm.costmodel import CostModel

BlockKey = tuple[str, str]


@dataclass
class BlockProfile:
    """Profile data of one basic block."""

    function: str
    block: str
    count: int = 0
    static_instructions: int = 0

    @property
    def key(self) -> BlockKey:
        return (self.function, self.block)

    @property
    def dynamic_instructions(self) -> int:
        return self.count * self.static_instructions


@dataclass
class ExecutionProfile:
    """Block-level profile of one program execution."""

    module_name: str = ""
    blocks: dict[BlockKey, BlockProfile] = field(default_factory=dict)

    def record(self, function: str, block: str, static_instructions: int) -> None:
        key = (function, block)
        prof = self.blocks.get(key)
        if prof is None:
            prof = BlockProfile(function, block, 0, static_instructions)
            self.blocks[key] = prof
        prof.count += 1

    def count_of(self, function: str, block: str) -> int:
        prof = self.blocks.get((function, block))
        return prof.count if prof else 0

    @property
    def total_block_executions(self) -> int:
        return sum(p.count for p in self.blocks.values())

    @property
    def total_dynamic_instructions(self) -> int:
        return sum(p.dynamic_instructions for p in self.blocks.values())

    # -- cycle accounting ------------------------------------------------------
    def total_cycles(
        self,
        module: Module,
        cost_model: CostModel,
        block_cost_override=None,
    ) -> float:
        """Total CPU cycles of the profiled run under *cost_model*.

        ``block_cost_override(func_name, block) -> float | None`` lets the
        Woolcano machine model substitute per-block costs where custom
        instructions replace part of the block.
        """
        total = 0.0
        costs = static_block_costs(module, cost_model)
        for key, prof in self.blocks.items():
            if prof.count == 0:
                continue
            cost = None
            if block_cost_override is not None:
                cost = block_cost_override(*key)
            if cost is None:
                cost = costs.get(key)
            if cost is None:
                continue  # block disappeared (e.g. different module version)
            total += prof.count * cost
        return total

    def block_cycles(
        self, module: Module, cost_model: CostModel
    ) -> dict[BlockKey, float]:
        """Total cycles spent in each profiled block (count x static cost)."""
        costs = static_block_costs(module, cost_model)
        return {
            key: prof.count * costs.get(key, 0.0)
            for key, prof in self.blocks.items()
        }

    def block_time_shares(
        self, module: Module, cost_model: CostModel
    ) -> dict[BlockKey, float]:
        """Fraction of total execution time spent in each block."""
        per_block = self.block_cycles(module, cost_model)
        total = sum(per_block.values())
        if total <= 0:
            return {key: 0.0 for key in per_block}
        return {key: v / total for key, v in per_block.items()}

    # -- opcode accounting (derived, zero runtime overhead) --------------------
    def opcode_counts(self, module: Module) -> dict[str, int]:
        """Dynamic per-opcode execution counts (mnemonic -> count).

        Derived post-hoc as static block composition x block count, so the
        hot loop never maintains per-instruction counters.
        """
        composition = static_block_opcodes(module)
        totals: dict[str, int] = {}
        for key, prof in self.blocks.items():
            if prof.count == 0:
                continue
            for mnemonic in composition.get(key, ()):
                totals[mnemonic] = totals.get(mnemonic, 0) + prof.count
        return totals

    def digram_counts(self, module: Module) -> dict[tuple[str, str], int]:
        """Dynamic adjacent-opcode-pair counts within basic blocks.

        Pairs never span a block boundary: the successor of a terminator is
        control-dependent, so a cross-block pair is not a straight-line
        fusion opportunity.
        """
        composition = static_block_opcodes(module)
        totals: dict[tuple[str, str], int] = {}
        for key, prof in self.blocks.items():
            if prof.count == 0:
                continue
            ops = composition.get(key, ())
            for first, second in zip(ops, ops[1:]):
                pair = (first, second)
                totals[pair] = totals.get(pair, 0) + prof.count
        return totals

    def opcode_cycles(
        self, module: Module, cost_model: CostModel
    ) -> dict[str, float]:
        """Virtual cycles attributed to each opcode (mnemonic -> cycles)."""
        per_block: dict[BlockKey, dict[str, float]] = {}
        for func in module.defined_functions():
            for block in func.blocks:
                acc: dict[str, float] = {}
                for instr in block.instructions:
                    mnemonic = instr.opcode.value
                    acc[mnemonic] = acc.get(mnemonic, 0.0) + cost_model.cycles_for(
                        instr
                    )
                per_block[(func.name, block.name)] = acc
        totals: dict[str, float] = {}
        for key, prof in self.blocks.items():
            if prof.count == 0:
                continue
            for mnemonic, cycles in per_block.get(key, {}).items():
                totals[mnemonic] = totals.get(mnemonic, 0.0) + prof.count * cycles
        return totals

    def merged_with(self, other: "ExecutionProfile") -> "ExecutionProfile":
        merged = ExecutionProfile(self.module_name)
        for src in (self, other):
            for key, prof in src.blocks.items():
                if key in merged.blocks:
                    merged.blocks[key].count += prof.count
                else:
                    merged.blocks[key] = BlockProfile(
                        prof.function, prof.block, prof.count, prof.static_instructions
                    )
        return merged


def static_block_costs(
    module: Module, cost_model: CostModel
) -> dict[BlockKey, float]:
    """Static per-execution cycle cost of every block in *module*.

    A block's cost is the sum of its instructions' costs; call instructions
    contribute only call overhead (the callee's body is accounted in the
    callee's own blocks).
    """
    costs: dict[BlockKey, float] = {}
    for func in module.defined_functions():
        for block in func.blocks:
            total = 0.0
            for instr in block.instructions:
                # CUSTOM instructions are priced only by WoolcanoCostModel;
                # the base model raises ValueError, which is the right
                # failure mode for un-patched accounting paths.
                total += cost_model.cycles_for(instr)
            costs[(func.name, block.name)] = total
    return costs


def static_block_opcodes(module: Module) -> dict[BlockKey, tuple[str, ...]]:
    """Opcode mnemonics of every block, in instruction order."""
    return {
        (func.name, block.name): tuple(
            instr.opcode.value for instr in block.instructions
        )
        for func in module.defined_functions()
        for block in func.blocks
    }


@dataclass
class BlockTimeSampler:
    """Opt-in real-clock sampler attributing wall time to compiled blocks.

    Every ``interval`` block executions the interpreter's sampled loop reads
    ``perf_counter`` and charges the elapsed delta to the block that was
    running when the tick fired. At the default interval the added work is
    one integer increment + compare per *block* (not per instruction), which
    keeps measured overhead well under the 5% budget on the embedded suite
    while still resolving the hot blocks the paper's Section IV profiling
    identifies.

    ``samples`` accumulates seconds per ``(function, block)`` key; passing
    the same sampler to several runs aggregates them.
    """

    interval: int = 64
    samples: dict[BlockKey, float] = field(default_factory=dict)
    sample_count: int = 0
    tick: int = 0
    last: float = 0.0

    def begin(self) -> None:
        """Reset the tick phase at run start (samples are kept)."""
        self.tick = 0
        self.last = perf_counter()

    @property
    def sampled_seconds(self) -> float:
        """Total wall time attributed so far."""
        return sum(self.samples.values())

    def shares(self) -> dict[BlockKey, float]:
        """Fraction of sampled wall time attributed to each block."""
        total = self.sampled_seconds
        if total <= 0:
            return {key: 0.0 for key in self.samples}
        return {key: v / total for key, v in self.samples.items()}
