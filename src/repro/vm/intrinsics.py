"""VM intrinsic functions callable from IR.

Intrinsics model the C library calls that remain external in the paper's
bitcode: math routines, minimal I/O, heap allocation and a PRNG. The ISE
feasibility analysis treats intrinsic calls like any other call: they cannot
be absorbed into custom instructions.

Each intrinsic has a typed signature (checked by the IR builder) and a CPU
cycle cost (used by the cost model; math routines are expensive on the
FPU-less PowerPC-405).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.ir.types import F64, I32, I64, PTR, Type, VOID, wrap_int


@dataclass(frozen=True)
class Intrinsic:
    """An intrinsic: signature, evaluator and CPU cost in cycles."""

    name: str
    return_type: Type
    param_types: tuple[Type, ...]
    cycles: int
    # fn(vm_state, *args) -> value
    fn: Callable


def _clamped_exp(x: float) -> float:
    if x > 700.0:
        return math.inf
    return math.exp(x)


def _safe_log(x: float) -> float:
    if x <= 0.0:
        return -math.inf if x == 0.0 else math.nan
    return math.log(x)


def _safe_sqrt(x: float) -> float:
    return math.sqrt(x) if x >= 0.0 else math.nan

def _safe_pow(x: float, y: float) -> float:
    try:
        r = math.pow(x, y)
    except (OverflowError, ValueError):
        return math.nan if x < 0 else math.inf
    return r


INTRINSICS: dict[str, Intrinsic] = {}


def _register(name, ret, params, cycles, fn):
    INTRINSICS[name] = Intrinsic(name, ret, tuple(params), cycles, fn)


# Math (soft-float library calls on a PowerPC-405; costs are rough
# emulation-library cycle counts).
_register("sin", F64, [F64], 160, lambda vm, x: math.sin(x))
_register("cos", F64, [F64], 160, lambda vm, x: math.cos(x))
_register("tan", F64, [F64], 180, lambda vm, x: math.tan(x))
_register("atan", F64, [F64], 175, lambda vm, x: math.atan(x))
_register("exp", F64, [F64], 170, lambda vm, x: _clamped_exp(x))
_register("log", F64, [F64], 170, lambda vm, x: _safe_log(x))
_register("sqrt", F64, [F64], 70, lambda vm, x: _safe_sqrt(x))
_register("pow", F64, [F64, F64], 210, lambda vm, x, y: _safe_pow(x, y))
_register("fabs", F64, [F64], 6, lambda vm, x: abs(x))
_register("floor", F64, [F64], 15, lambda vm, x: float(math.floor(x)))
_register("ceil", F64, [F64], 15, lambda vm, x: float(math.ceil(x)))
_register("fmin", F64, [F64, F64], 8, lambda vm, x, y: min(x, y))
_register("fmax", F64, [F64, F64], 8, lambda vm, x, y: max(x, y))

# Integer helpers
_register("abs", I32, [I32], 3, lambda vm, x: wrap_int(abs(x), I32))
_register("min", I32, [I32, I32], 3, lambda vm, x, y: min(x, y))
_register("max", I32, [I32, I32], 3, lambda vm, x, y: max(x, y))

# Heap allocation (bump allocator in the VM memory).
_register("malloc", PTR, [I64], 120, lambda vm, size: vm.memory.malloc(int(size)))
_register("free", VOID, [PTR], 60, lambda vm, ptr: None)

# Deterministic PRNG: linear congruential, state in the VM so programs are
# reproducible regardless of host RNG.
def _rand(vm) -> int:
    vm.rand_state = (vm.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
    return wrap_int(vm.rand_state, I32)


_register("rand", I32, [], 40, _rand)
_register("srand", VOID, [I32], 6, lambda vm, seed: setattr(vm, "rand_state", seed & 0x7FFFFFFF))

# Minimal output: values are recorded on the VM's output channel (tests use
# this to check program behaviour); cost models a buffered putc-level call.
_register("print_i32", VOID, [I32], 250, lambda vm, x: vm.output.append(int(x)))
_register("print_i64", VOID, [I64], 280, lambda vm, x: vm.output.append(int(x)))
_register("print_f64", VOID, [F64], 320, lambda vm, x: vm.output.append(float(x)))

# Wall-clock substitute: returns the VM's virtual cycle counter (i32,
# truncated), so benchmark self-timing inside apps is deterministic.
_register("clock", I64, [], 30, lambda vm: wrap_int(vm.cycles_executed, I64))

# Input-data interface: benchmark applications read their problem size and
# data seed from the VM environment (models argv/input files), so the same
# compiled module can be profiled under several data sets — required by the
# live/dead/const coverage methodology of Section IV-C.
_register("dataset_size", I32, [], 30, lambda vm: wrap_int(vm.dataset_size, I32))
_register("dataset_seed", I32, [], 30, lambda vm: wrap_int(vm.dataset_seed, I32))


def intrinsic_signature(name: str) -> tuple[Type, list[Type]]:
    """Return (return_type, param_types) for a named intrinsic."""
    try:
        intr = INTRINSICS[name]
    except KeyError:
        raise KeyError(f"unknown intrinsic {name!r}") from None
    return intr.return_type, list(intr.param_types)


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS
