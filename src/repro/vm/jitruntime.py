"""Virtual-machine runtime model: VM vs. native execution time.

Table I of the paper compares each application's runtime on the LLVM VM
(just-in-time translation) against a statically compiled native binary. The
observed pattern: embedded applications pay ~1 % VM overhead, scientific
ones ~14 % on average, and a couple of applications (179.art, 473.astar) run
*faster* under the VM because runtime optimization beats static code.

We model both runtimes from the same block profile:

- **native**: every block executes at static code quality (factor 1.0);
- **VM**: each function pays a translation cost on first call
  (``translation_cycles_per_instr`` × static size), each block executes at
  ``baseline_quality`` (>1) until it has run ``hot_threshold`` times, after
  which the JIT's profile-guided re-optimization brings it to
  ``optimized_quality`` (slightly <1: the VM can exploit runtime knowledge).

The embedded/scientific contrast is then *emergent*: compact hot kernels
amortize translation immediately and spend virtually all time in re-optimized
code, while large flat programs keep paying translation and baseline-quality
execution across their warm code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.module import Module
from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.profiler import ExecutionProfile, static_block_costs


@dataclass(frozen=True)
class RuntimeEstimate:
    """VM and native runtimes (virtual seconds) for one profiled run."""

    native_seconds: float
    vm_seconds: float

    @property
    def ratio(self) -> float:
        """VM/native ratio as reported in Table I ("Ratio" column)."""
        if self.native_seconds <= 0:
            return 1.0
        return self.vm_seconds / self.native_seconds


@dataclass(frozen=True)
class JitRuntimeModel:
    """Parameters of the VM execution-time model."""

    cost_model: CostModel = PPC405_COST_MODEL
    translation_cycles_per_instr: float = 800.0
    baseline_quality: float = 1.25
    optimized_quality: float = 0.95
    hot_threshold: int = 256
    # Static binaries still pay OS load time; the VM additionally parses
    # bitcode. Small constants so tiny programs are not dominated by them.
    native_startup_seconds: float = 0.002
    vm_startup_seconds: float = 0.003

    def estimate(self, module: Module, profile: ExecutionProfile) -> RuntimeEstimate:
        costs = static_block_costs(module, self.cost_model)

        native_cycles = 0.0
        vm_exec_cycles = 0.0
        for key, prof in profile.blocks.items():
            cost = costs.get(key)
            if cost is None or prof.count == 0:
                continue
            native_cycles += prof.count * cost
            cold = min(prof.count, self.hot_threshold)
            hot = prof.count - cold
            vm_exec_cycles += cost * (
                cold * self.baseline_quality + hot * self.optimized_quality
            )

        # Translation: every function that actually ran is translated once.
        executed_functions = {key[0] for key, p in profile.blocks.items() if p.count}
        translation_cycles = 0.0
        for func in module.defined_functions():
            if func.name in executed_functions:
                translation_cycles += (
                    func.instruction_count * self.translation_cycles_per_instr
                )

        cm = self.cost_model
        native = self.native_startup_seconds + cm.seconds(native_cycles)
        vm = self.vm_startup_seconds + cm.seconds(vm_exec_cycles + translation_cycles)
        return RuntimeEstimate(native_seconds=native, vm_seconds=vm)

    def native_seconds(self, module: Module, profile: ExecutionProfile) -> float:
        return self.estimate(module, profile).native_seconds

    def vm_seconds(self, module: Module, profile: ExecutionProfile) -> float:
        return self.estimate(module, profile).vm_seconds
