"""CPU cycle cost model (PowerPC-405 flavoured).

The Woolcano base CPU is the PowerPC-405 hard core of a Virtex-4 FX: a
simple 5-stage in-order scalar with **no FPU**. Floating-point arithmetic is
performed by a software emulation library, which is why FP operations cost
tens of cycles while integer ALU operations cost one. This asymmetry is the
single most important constant in the reproduction: the paper's large
custom-instruction speedups for compact FP kernels (fft, sor, whetstone)
exist precisely because an FPGA datapath collapses a multi-hundred-cycle
soft-float expression tree into a few fabric cycles.

Costs are approximate PPC-405 figures (integer ALU ops single-cycle; mul
4; div 35; loads 2 assuming on-chip SRAM timing; soft-float library call
costs per operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode


# Integer op costs (cycles).
_INT_COSTS = {
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 4,
    Opcode.SDIV: 35,
    Opcode.UDIV: 35,
    Opcode.SREM: 35,
    Opcode.UREM: 35,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.SHL: 1,
    Opcode.LSHR: 1,
    Opcode.ASHR: 1,
    Opcode.ICMP: 1,
    Opcode.SELECT: 2,
    Opcode.ZEXT: 1,
    Opcode.SEXT: 1,
    Opcode.TRUNC: 1,
    Opcode.BITCAST: 1,
    Opcode.GEP: 1,
}

# FP emulation costs (cycles) for f64; f32 is ~0.6x. These model a tuned
# soft-float library (the numbers a hard FPU-less PPC405 achieves with the
# fastest emulation paths); a fully naive emulation would be 3-4x worse,
# which ablation A3 explores via `soft_float_scale`.
_SOFT_FLOAT_COSTS = {
    Opcode.FADD: 18,
    Opcode.FSUB: 18,
    Opcode.FMUL: 22,
    Opcode.FDIV: 60,
    Opcode.FREM: 85,
    Opcode.FNEG: 3,
    Opcode.FCMP: 9,
    Opcode.FPTOSI: 15,
    Opcode.SITOFP: 15,
    Opcode.FPEXT: 6,
    Opcode.FPTRUNC: 7,
}

_OTHER_COSTS = {
    Opcode.LOAD: 2,
    Opcode.STORE: 2,
    Opcode.ALLOCA: 1,
    Opcode.BR: 2,
    Opcode.CONDBR: 3,
    Opcode.RET: 4,
    Opcode.PHI: 0,  # resolved by register allocation; free at runtime
}

CALL_OVERHEAD_CYCLES = 12  # prologue/epilogue + branch-and-link


@dataclass(frozen=True)
class CostModel:
    """Maps instructions to CPU cycle costs and cycles to virtual seconds."""

    name: str = "ppc405"
    clock_hz: float = 300e6  # PPC405 block in a -10 speed grade V4FX
    int_costs: dict = field(default_factory=lambda: dict(_INT_COSTS))
    float_costs: dict = field(default_factory=lambda: dict(_SOFT_FLOAT_COSTS))
    other_costs: dict = field(default_factory=lambda: dict(_OTHER_COSTS))
    f32_factor: float = 0.6
    call_overhead: int = CALL_OVERHEAD_CYCLES
    # Multiplier applied to FP costs; ablation A3 sweeps this.
    soft_float_scale: float = 1.0

    def cycles_for(self, instr: Instruction) -> float:
        """Cycle cost of one dynamic execution of *instr* (call body excluded)."""
        op = instr.opcode
        if op is Opcode.CALL:
            callee = instr.callee
            if isinstance(callee, str):
                from repro.vm.intrinsics import INTRINSICS

                base = INTRINSICS[callee].cycles
                # Math intrinsics are soft-float library code: scale with FP.
                if INTRINSICS[callee].return_type.is_float or any(
                    t.is_float for t in INTRINSICS[callee].param_types
                ):
                    return base * self.soft_float_scale
                return base
            return self.call_overhead
        if op is Opcode.CUSTOM:
            # Filled in by the Woolcano machine model; standalone CPU model
            # should never execute CUSTOM.
            raise ValueError("CUSTOM instruction cost requires a Woolcano model")
        if op in self.float_costs or (
            op in (Opcode.FPTOSI, Opcode.SITOFP) and True
        ):
            base = float(self.float_costs.get(op, 0.0))
            is_f32 = (instr.type.is_float and instr.type.bits == 32) or any(
                o.type.is_float and o.type.bits == 32 for o in instr.operands
            )
            if is_f32:
                base *= self.f32_factor
            return base * self.soft_float_scale
        if op in self.int_costs:
            return float(self.int_costs[op])
        if op in self.other_costs:
            return float(self.other_costs[op])
        raise KeyError(f"no cost for opcode {op}")  # pragma: no cover

    def seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def with_soft_float_scale(self, scale: float) -> "CostModel":
        """Derived model with scaled FP emulation cost (ablation A3)."""
        return replace(self, soft_float_scale=scale)


PPC405_COST_MODEL = CostModel()
