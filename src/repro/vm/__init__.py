"""Virtual machine: profiling interpreter + execution-time models.

This package plays the role of the LLVM JIT VM in the paper's Figure 1.
It interprets IR modules (:class:`~repro.vm.interpreter.Interpreter`),
collects basic-block execution profiles
(:class:`~repro.vm.profiler.ExecutionProfile`), and converts instruction
counts into *virtual seconds* using a PowerPC-405 cycle cost model
(:mod:`repro.vm.costmodel`), including the VM's own just-in-time
translation overhead (:mod:`repro.vm.jitruntime`).

The reported "VM" and "Native" runtimes of Table I both come from these
models; the difference is the JIT translation overhead and the VM's
hot-block re-optimization.
"""

from repro.vm.costmodel import CostModel, PPC405_COST_MODEL
from repro.vm.interpreter import ExecutionResult, Interpreter, VMError
from repro.vm.profiler import BlockProfile, ExecutionProfile
from repro.vm.jitruntime import JitRuntimeModel, RuntimeEstimate
from repro.vm.memory import Memory

__all__ = [
    "CostModel",
    "PPC405_COST_MODEL",
    "ExecutionResult",
    "Interpreter",
    "VMError",
    "BlockProfile",
    "ExecutionProfile",
    "JitRuntimeModel",
    "RuntimeEstimate",
    "Memory",
]
