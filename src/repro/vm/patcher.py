"""Binary patcher: rewrite bitcode to use custom instructions.

The adaptation phase of the paper's Figure 1: once a candidate's bitstream
is loaded, "the application binary is modified such that the newly
available custom instructions are used".

For each (single-output) candidate, the patcher:

1. assigns a ``custom_id``;
2. builds an *evaluator* — a closure that computes the candidate's DFG from
   its input values (this is the functional model of the fabric datapath,
   reusing the constant-folding evaluators so semantics match the CPU
   exactly);
3. replaces the candidate's instructions in the block with a single
   ``CUSTOM`` instruction whose operands are the candidate's external
   inputs, and redirects all uses of the candidate's output to it.

Patched modules still verify and interpret; tests assert output equality
between original and patched programs — the end-to-end correctness argument
for the whole ASIP specialization process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.opcodes import BINARY_OPS, CAST_OPS, Opcode
from repro.ir.passes.constfold import (
    ConstantFoldError,
    fold_binary,
    fold_cast,
    fold_fcmp,
    fold_icmp,
)
from repro.ir.values import Constant, Value
from repro.ise.candidate import Candidate


class PatchError(Exception):
    """Raised when a candidate cannot be patched."""


@dataclass
class PatchedInstruction:
    """Record of one applied patch."""

    custom_id: int
    candidate: Candidate
    evaluator: object  # callable(list) -> value


@dataclass
class BinaryPatcher:
    """Applies candidates to a module as CUSTOM instructions."""

    next_custom_id: int = 0
    patches: list[PatchedInstruction] = field(default_factory=list)

    def patch_module(
        self, module: Module, candidates: list[Candidate]
    ) -> list[PatchedInstruction]:
        """Patch all *candidates* into *module*; returns the patch records."""
        applied = []
        for cand in candidates:
            applied.append(self.patch_candidate(module, cand))
        return applied

    def patch_candidate(self, module: Module, candidate: Candidate) -> PatchedInstruction:
        outputs = candidate.outputs
        if len(outputs) != 1:
            raise PatchError(
                f"patcher supports single-output candidates; got "
                f"{len(outputs)} outputs (multi-output candidates need "
                f"result-register sequencing)"
            )
        output = outputs[0]
        func = module.function(candidate.function)
        block = func.block_named(candidate.block)

        node_ids = {id(n) for n in candidate.nodes}
        for instr in candidate.nodes:
            if instr.parent is not block:
                raise PatchError(
                    f"candidate node {instr.name} not in block "
                    f"{candidate.block} (module already modified?)"
                )

        inputs = candidate.inputs
        custom_id = self.next_custom_id
        self.next_custom_id += 1
        evaluator = build_evaluator(candidate)

        custom = Instruction(
            Opcode.CUSTOM,
            output.type,
            list(inputs),
            name=func.fresh_name(f"ci{custom_id}_"),
            custom_id=custom_id,
        )

        # Insert at the output node's position, then remove covered nodes.
        position = block.instructions.index(output)
        block.insert(position, custom)
        for instr in list(block.instructions):
            if id(instr) in node_ids:
                block.remove(instr)

        # Redirect all uses of the output (convexity + single-output
        # guarantee no other candidate value is referenced externally).
        for blk in func.blocks:
            for instr in blk.instructions:
                instr.replace_operand(output, custom)

        record = PatchedInstruction(
            custom_id=custom_id, candidate=candidate, evaluator=evaluator
        )
        self.patches.append(record)
        return record

    def install(self, interpreter) -> None:
        """Register all patch evaluators with an interpreter."""
        for patch in self.patches:
            interpreter.custom_evaluators[patch.custom_id] = patch.evaluator


def build_evaluator(candidate: Candidate):
    """Build the functional model of a candidate datapath.

    Returns ``fn(input_values: list) -> output_value``. Input order matches
    ``candidate.inputs``; evaluation follows the DFG's topological order
    using the same scalar evaluators as the interpreter and the constant
    folder, so hardware and software semantics agree bit-for-bit.
    """
    nodes = candidate.dfg.topological_order(set(candidate.nodes))
    outputs = candidate.outputs
    if len(outputs) != 1:
        raise PatchError("evaluator requires a single-output candidate")
    output = outputs[0]
    inputs = candidate.inputs
    input_pos = {id(v): i for i, v in enumerate(inputs)}
    node_ids = {id(n) for n in nodes}

    def evaluate(args: list):
        if len(args) != len(inputs):
            raise PatchError(
                f"custom instruction expects {len(inputs)} operands, "
                f"got {len(args)}"
            )
        env: dict[int, object] = {}

        def value_of(operand: Value):
            if isinstance(operand, Constant):
                return operand.value
            if id(operand) in env:
                return env[id(operand)]
            return args[input_pos[id(operand)]]

        result = None
        for node in nodes:
            op = node.opcode
            if op in BINARY_OPS:
                try:
                    out = fold_binary(
                        op, node.type, value_of(node.operands[0]), value_of(node.operands[1])
                    )
                except ConstantFoldError as exc:
                    raise PatchError(f"datapath trap: {exc}") from None
            elif op is Opcode.ICMP:
                out = fold_icmp(
                    node.pred,
                    node.operands[0].type,
                    value_of(node.operands[0]),
                    value_of(node.operands[1]),
                )
            elif op is Opcode.FCMP:
                out = fold_fcmp(
                    node.pred, value_of(node.operands[0]), value_of(node.operands[1])
                )
            elif op in CAST_OPS:
                out = fold_cast(
                    op, node.operands[0].type, node.type, value_of(node.operands[0])
                )
            elif op is Opcode.SELECT:
                out = (
                    value_of(node.operands[1])
                    if value_of(node.operands[0])
                    else value_of(node.operands[2])
                )
            elif op is Opcode.FNEG:
                out = -value_of(node.operands[0])
            elif op is Opcode.GEP:
                out = int(value_of(node.operands[0])) + int(
                    value_of(node.operands[1])
                ) * node.elem_size
            else:  # pragma: no cover - feasibility filter prevents this
                raise PatchError(f"opcode {op} not implementable in datapath")
            env[id(node)] = out
            if node is output:
                result = out
        return result

    return evaluate
